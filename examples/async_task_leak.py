#!/usr/bin/env python
"""The classic AsyncTask-after-onDestroy bug, written like Android code.

An activity kicks off an ``AsyncTask`` that loads data on a worker
thread and publishes it back to the UI looper in ``onPostExecute``.
If the user backs out of the activity while the task is in flight,
``onDestroy`` nulls the adapter the callback is about to use — a
use-free race between the posted callback event and the lifecycle
event.  CAFA reports it from a trace of the *benign* interleaving, and
the witness generator prints the schedule that crashes.

Run with:  python examples/async_task_leak.py
"""

from repro.analysis import build_witness
from repro.detect import UseFreeDetector
from repro.runtime import AndroidSystem, AsyncTask, ExternalSource, Handler


def main() -> None:
    system = AndroidSystem(seed=9)
    app = system.process("gallery")
    main_looper = app.looper("main")
    ui = Handler(main_looper, name="ui")

    activity = app.heap.new("GalleryActivity")
    activity.fields["adapter"] = app.heap.new("ThumbnailAdapter")

    def load_thumbnails(ctx):
        yield from ctx.sleep(15)  # disk I/O on the worker thread
        return ["img1", "img2"]

    def publish(ctx, thumbnails):
        adapter = ctx.use_field(activity, "adapter")  # the racy use
        ctx.compute(len(thumbnails))

    task = AsyncTask("loadThumbnails", load_thumbnails, publish)
    app.thread("onCreate", lambda ctx: task.execute(ctx, ui))

    def on_destroy(ctx):
        ctx.put_field(activity, "adapter", None)  # the free

    user = ExternalSource("user")
    user.at(60, main_looper, on_destroy, "onDestroy")
    user.attach(system, app)

    system.run(max_ms=1000)
    trace = system.trace()
    print(f"benign run finished: {len(system.violations)} violations observed")

    detector = UseFreeDetector(trace)
    result = detector.detect()
    print(f"CAFA reports: {result.report_count()} use-free race(s)")
    for report in result.reports:
        print(f"  {report}")
        witness = build_witness(trace, detector.hb, report)
        print(witness.format())


if __name__ == "__main__":
    main()
