#!/usr/bin/env python
"""A guided tour of the causality model's event-queue rules (Figure 4).

Each scenario below is one panel of the paper's Figure 4, written as a
literal trace.  The script builds the happens-before relation for each
and prints which event orderings the model derives, plus the rule path
that justifies one of them.

Run with:  python examples/queue_rules_tour.py
"""

from repro import build_happens_before
from repro.testing import TraceBuilder


def relation(hb, a: str, b: str) -> str:
    if hb.event_ordered(a, b):
        return f"{a} happens-before {b}"
    if hb.event_ordered(b, a):
        return f"{b} happens-before {a}"
    return f"{a} and {b} are concurrent"


def fig4a():
    """Atomicity: fork(A,T) < perform(B,L) lifts to A < B."""
    b = TraceBuilder()
    b.looper("L"); b.thread("S1"); b.thread("S2"); b.thread("T")
    b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("S1"); b.send("S1", "A"); b.end("S1")
    b.begin("S2"); b.send("S2", "B"); b.end("S2")
    b.begin("A"); b.fork("A", "T"); b.end("A")
    b.begin("T"); b.register("T", "listener"); b.end("T")
    b.begin("B"); b.perform("B", "listener"); b.end("B")
    return b.build()


def fig4b():
    """Queue rule 1: ordered sends, equal delays."""
    b = TraceBuilder()
    b.looper("L"); b.thread("T")
    b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("T"); b.send("T", "A", delay=1); b.send("T", "B", delay=1); b.end("T")
    b.begin("A"); b.end("A")
    b.begin("B"); b.end("B")
    return b.build()


def fig4c():
    """No rule: the earlier send has the larger delay."""
    b = TraceBuilder()
    b.looper("L"); b.thread("T")
    b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("T"); b.send("T", "A", delay=5); b.send("T", "B", delay=0); b.end("T")
    b.begin("B"); b.end("B")
    b.begin("A"); b.end("A")
    return b.build()


def fig4d():
    """Queue rule 2 via the fixpoint: C sends A, then sendAtFronts B."""
    b = TraceBuilder()
    b.looper("L"); b.thread("S")
    b.event("C", looper="L"); b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("S"); b.send("S", "C"); b.end("S")
    b.begin("C"); b.send("C", "A"); b.send_at_front("C", "B"); b.end("C")
    b.begin("B"); b.end("B")
    b.begin("A"); b.end("A")
    return b.build()


def fig4e():
    """No rule: send then sendAtFront from a regular thread."""
    b = TraceBuilder()
    b.looper("L"); b.thread("T")
    b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("T"); b.send("T", "A"); b.send_at_front("T", "B"); b.end("T")
    b.begin("B"); b.end("B")
    b.begin("A"); b.end("A")
    return b.build()


def fig4f():
    """No rule: the sendAtFront comes from an unrelated event."""
    b = TraceBuilder()
    b.looper("L"); b.thread("T"); b.thread("U")
    b.event("E", looper="L"); b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("U"); b.send("U", "E"); b.end("U")
    b.begin("T"); b.send("T", "A"); b.end("T")
    b.begin("E"); b.send_at_front("E", "B"); b.end("E")
    b.begin("B"); b.end("B")
    b.begin("A"); b.end("A")
    return b.build()


def main() -> None:
    scenarios = [
        ("Figure 4a (atomicity rule)", fig4a, "expect A happens-before B"),
        ("Figure 4b (queue rule 1)", fig4b, "expect A happens-before B"),
        ("Figure 4c (delay mismatch)", fig4c, "expect concurrent"),
        ("Figure 4d (queue rule 2)", fig4d, "expect B happens-before A"),
        ("Figure 4e (no guarantee)", fig4e, "expect concurrent"),
        ("Figure 4f (no guarantee)", fig4f, "expect concurrent"),
    ]
    for title, make, expectation in scenarios:
        trace = make()
        hb = build_happens_before(trace)
        print(f"{title}: {relation(hb, 'A', 'B')}   [{expectation}]")
        if hb.event_ordered("A", "B") or hb.event_ordered("B", "A"):
            first, second = ("A", "B") if hb.event_ordered("A", "B") else ("B", "A")
            end_first = hb.task_bounds(first)[1]
            begin_second = hb.task_bounds(second)[0]
            steps = hb.explain(end_first, begin_second)
            if steps:
                chain = " -> ".join(rule for _, rule in steps[1:])
                print(f"    derivation: {chain}")
        print(f"    fixpoint rounds: {hb.iterations}, derived edges: {hb.derived_edges}")


if __name__ == "__main__":
    main()
