#!/usr/bin/env python
"""Commutative events and the false-positive heuristics (Figs. 2 & 5).

Three pairs of racing events, all *correct programs*:

1. Figure 2 (ConnectBot): ``onPause`` writes ``resizeAllowed`` while
   ``onLayout`` reads it — a read-write conflict, but event atomicity
   makes both orders correct.  The low-level baseline reports it; the
   use-free detector never considers it.
2. Figure 5 onFocus/onPause: a *null-guarded* use racing a free — the
   if-guard check filters it.
3. Figure 5 onResume/onPause: the using event re-allocates the pointer
   before using it — the intra-event-allocation check filters it.

The script also re-runs the detector with the heuristics disabled to
show exactly which false positives each one is responsible for.

Run with:  python examples/commutative_events.py
"""

from repro.detect import (
    DetectorOptions,
    UseFreeDetector,
    detect_low_level_races,
)
from repro.runtime import AndroidSystem, ExternalSource


def build() -> AndroidSystem:
    system = AndroidSystem(seed=11)
    app = system.process("connectbot")
    main = app.looper("main")

    # --- Figure 2: commutative read-write on resizeAllowed -------------
    app.store["resizeAllowed"] = True

    def on_layout(ctx):
        if ctx.read("resizeAllowed"):
            ctx.write("columns", 80)
            ctx.write("rows", 24)

    def on_pause(ctx):
        ctx.write("resizeAllowed", False)

    # --- Figure 5: guarded use and realloc-before-use ----------------
    terminal = app.heap.new("TerminalView")
    terminal.fields["handler"] = app.heap.new("Handler")

    def on_focus(ctx):
        ctx.guarded_use(terminal, "handler")  # if (handler != null) handler.run()

    def on_resume(ctx):
        fresh = ctx.new_object("Handler")
        ctx.put_field(terminal, "handler", fresh)  # handler = new Handler()
        ctx.use_field(terminal, "handler")  # handler.run()

    def on_pause_free(ctx):
        ctx.put_field(terminal, "handler", None)  # handler = null

    def worker(ctx):
        yield from ctx.sleep(10)
        ctx.post(main, on_layout, label="onLayout")
        yield from ctx.sleep(10)
        ctx.post(main, on_focus, label="onFocus")
        yield from ctx.sleep(10)
        ctx.post(main, on_resume, label="onResume")

    app.thread("worker", worker)
    user = ExternalSource("user")
    user.at(60, main, on_pause, "onPause")
    user.at(70, main, on_pause_free, "onPauseFree")
    user.attach(system, app)
    return system


def main() -> None:
    system = build()
    system.run(max_ms=1000)
    trace = system.trace()

    low = detect_low_level_races(trace)
    print(f"low-level detector: {low.race_count()} conflicting-access races")
    for race in low.races:
        print(f"  {race.var_class}: {race.site_a} vs {race.site_b}")

    print()
    result = UseFreeDetector(trace).detect()
    print(f"CAFA: {result.report_count()} use-free races reported "
          f"(all three patterns are commutative)")
    for report in result.filtered_reports:
        print(f"  filtered: {report.key}  [{report.witnesses[0].filtered_by}]")

    print()
    no_heuristics = DetectorOptions(if_guard=False, intra_event_allocation=False)
    raw = UseFreeDetector(trace, no_heuristics).detect()
    print(f"without the heuristics the detector would report "
          f"{raw.report_count()} false positives:")
    for report in raw.reports:
        print(f"  {report.key}")


if __name__ == "__main__":
    main()
