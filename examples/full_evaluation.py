#!/usr/bin/env python
"""Reproduce the paper's full evaluation (Section 6).

Runs all ten application workloads through the pipeline and prints:

* Table 1 — races reported, true races (a)/(b)/(c), false positives
  I/II/III, per app and overall, next to the published numbers;
* the Section 4.1 motivation — the low-level baseline's race count on
  ConnectBot versus CAFA's;
* Figure 8 — the per-app tracing slowdown.

Usage:  python examples/full_evaluation.py [scale]

``scale`` controls the background event load; 1.0 approximates the
paper's event counts (minutes of analysis), the default 0.1 finishes
in seconds.
"""

import sys

from repro.analysis import (
    format_slowdowns,
    format_table1,
    paper_table1_rows,
    reproduce_figure8,
    reproduce_table1,
)
from repro.apps import ConnectBotApp
from repro.detect import detect_low_level_races, detect_use_free_races


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"workload scale: {scale} (1.0 approximates the paper's event counts)")
    print()

    table = reproduce_table1(scale=scale, seed=1)
    print(format_table1(table, paper_table1_rows()))
    print()

    print("Section 4.1 motivation (ConnectBot):")
    run = ConnectBotApp(scale=scale, seed=1).run()
    low = detect_low_level_races(run.trace)
    cafa = detect_use_free_races(run.trace)
    print(
        f"  conventional low-level definition: {low.race_count()} races "
        f"(paper: 1,664 in a 30-second trace)"
    )
    print(f"  CAFA use-free reports: {cafa.report_count()} (paper: 3)")
    print()

    print(format_slowdowns(reproduce_figure8(scale=scale, seed=1)))


if __name__ == "__main__":
    main()
