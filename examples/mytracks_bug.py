#!/usr/bin/env python
"""The MyTracks bug of Figure 1, end to end.

Part 1 replays the *correct* execution (Figure 1a): the user resumes
the app, the RPC to the TrackRecordingService completes, the
``onServiceConnected`` event uses ``providerUtils``, and only later does
``onDestroy`` free it.  CAFA still reports the use-free race — the two
events are logically concurrent.

Part 2 replays the *incorrect* interleaving (Figure 1b): the service
responds slowly, the user quits quickly, and ``onDestroy`` runs first.
The dereference of the freed pointer raises the simulated
NullPointerException that crashes the real app.

Run with:  python examples/mytracks_bug.py
"""

from repro.detect import detect_use_free_races
from repro.runtime import AndroidSystem, ExternalSource


def build(service_delay_ms: float, destroy_at_ms: float) -> AndroidSystem:
    system = AndroidSystem(seed=7)
    app = system.process("mytracks")
    main = app.looper("main")
    service_proc = system.process("trackrecording")

    activity = app.heap.new("MyTracksActivity")
    activity.fields["providerUtils"] = app.heap.new("MyTracksProviderUtils")

    def on_service_connected(ctx):
        track = ctx.new_object("Track")
        ctx.use_field(activity, "providerUtils")  # providerUtils.updateTrack(track)

    def on_bind(ctx, reply_looper):
        yield from ctx.sleep(service_delay_ms)
        ctx.post(reply_looper, on_service_connected, label="onServiceConnected")
        return "bound"

    system.add_service("TrackRecordingService", service_proc, {"bind": on_bind})

    def on_resume(ctx):
        yield from ctx.binder_call("TrackRecordingService", "bind", main)

    def on_destroy(ctx):
        ctx.put_field(activity, "providerUtils", None)

    user = ExternalSource("user")
    user.at(10, main, on_resume, "onResume")
    user.at(destroy_at_ms, main, on_destroy, "onDestroy")
    user.attach(system, app)
    return system


def main() -> None:
    print("=== Part 1: the correct execution (Figure 1a) ===")
    system = build(service_delay_ms=5, destroy_at_ms=100)
    system.run(max_ms=1000)
    print(f"runtime violations observed: {len(system.violations)} (none — benign run)")
    result = detect_use_free_races(system.trace())
    print(f"CAFA reports {result.report_count()} use-free race(s) anyway:")
    for report in result.reports:
        print(f"  {report}")

    print()
    print("=== Part 2: the incorrect execution (Figure 1b) ===")
    system = build(service_delay_ms=80, destroy_at_ms=30)
    system.run(max_ms=1000)
    if system.violations:
        v = system.violations[0]
        print("the app crashed with a NullPointerException:")
        print(f"  in event {v.task!r} ({v.label}), method {v.method} pc {v.pc}")
    else:
        print("unexpected: no violation manifested")
    print("— exactly the exception Figure 1b shows thrown to the user.")


if __name__ == "__main__":
    main()
