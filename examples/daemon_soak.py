#!/usr/bin/env python
"""Daemon soak: drive `repro serve` over a Unix socket end to end.

Spawns the sharded daemon as a subprocess listening on a socket,
uploads three synthetic sessions concurrently (each its own
connection, each wrapped in the cafa-mux session envelope), sends a
FINISH frame, and checks the drained report: three sessions, no
errors, every per-session report set identical to a single-process
``StreamAnalyzer`` run of the same bytes.

This is the CI smoke for the serve path; it exits non-zero on any
divergence.

Run with:  PYTHONPATH=src python examples/daemon_soak.py
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time

from repro.apps import make_app
from repro.stream import StreamAnalyzer
from repro.trace import (
    dumps_trace_bytes,
    encode_finish_frame,
    encode_mux_header,
    encode_session,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
SESSIONS = 3
SHARDS = 2


def upload(path: str, sid: str, payload: bytes, finish: bool) -> None:
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.connect(path)
    try:
        client.sendall(encode_mux_header())
        if payload:
            for frame in encode_session(sid, payload, chunk_size=4096):
                client.sendall(frame)
        if finish:
            client.sendall(encode_finish_frame())
    finally:
        client.close()


def main() -> int:
    trace = make_app("connectbot", scale=SCALE, seed=1).run().trace
    payload = dumps_trace_bytes(trace)

    analyzer = StreamAnalyzer()
    analyzer.feed(payload)
    expected = [str(r) for r in analyzer.finish()]

    with tempfile.TemporaryDirectory() as tmp:
        sock_path = os.path.join(tmp, "cafa.sock")
        json_path = os.path.join(tmp, "daemon.json")
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", sock_path,
                "--shards", str(SHARDS),
                "--json", json_path,
            ],
        )
        try:
            for _ in range(100):
                if os.path.exists(sock_path):
                    break
                time.sleep(0.1)
            else:
                raise RuntimeError("daemon never opened its socket")

            # Concurrent uploaders, then one more connection whose
            # FINISH frame asks the daemon to drain.
            threads = [
                threading.Thread(
                    target=upload,
                    args=(sock_path, f"soak-{k}", payload, False),
                )
                for k in range(SESSIONS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            upload(sock_path, "soak-finisher", b"", True)

            rc = daemon.wait(timeout=300)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        if rc != 0:
            print(f"soak: daemon exited {rc}", file=sys.stderr)
            return 1
        with open(json_path, "r", encoding="utf-8") as fp:
            report = json.load(fp)

    sessions = report["sessions"]
    uploads = {f"soak-{k}" for k in range(SESSIONS)}
    missing = uploads - set(sessions)
    if missing:
        print(f"soak: sessions lost in the drain: {sorted(missing)}",
              file=sys.stderr)
        return 1
    failures = 0
    for sid in sorted(uploads):
        session = sessions[sid]
        if session["error"] or not session["ended"]:
            print(f"soak: {sid} did not close cleanly: {session['error']}",
                  file=sys.stderr)
            failures += 1
        elif session["reports"] != expected:
            print(f"soak: {sid} reports diverge from single-process run",
                  file=sys.stderr)
            failures += 1
    if failures:
        return 1
    print(
        f"soak OK: {SESSIONS} concurrent sessions over {SHARDS} shards, "
        f"{len(expected)} reports each, clean drain"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
