#!/usr/bin/env python
"""Daemon soak: drive `repro serve` over a Unix socket end to end.

Spawns the sharded daemon as a subprocess listening on a socket with
its ``--metrics-port`` endpoint up, uploads three synthetic sessions
concurrently (each its own connection, each wrapped in the cafa-mux
session envelope), scrapes ``/status.json`` mid-soak until the
session counters settle, sends a FINISH frame, and checks the drained
report: three sessions, no errors, every per-session report set
identical to a single-process ``StreamAnalyzer`` run of the same
bytes, and the scraped session/ops counters equal to what the final
``DaemonReport`` records.

This is the CI smoke for the serve path; it exits non-zero on any
divergence.

Run with:  PYTHONPATH=src python examples/daemon_soak.py
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

from repro.apps import make_app
from repro.stream import StreamAnalyzer
from repro.trace import (
    dumps_trace_bytes,
    encode_finish_frame,
    encode_mux_header,
    encode_session,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
SESSIONS = 3
SHARDS = 2


def free_port() -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def scrape_status(port: int) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/status.json", timeout=10
    ) as response:
        return json.loads(response.read().decode("utf-8"))


def counter_total(doc: dict, name: str) -> float:
    """Sum a counter family across its shard-labeled samples."""
    return sum(
        value
        for key, value in doc.get("counters", {}).items()
        if key.split("{", 1)[0] == name
    )


def upload(path: str, sid: str, payload: bytes, finish: bool) -> None:
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.connect(path)
    try:
        client.sendall(encode_mux_header())
        if payload:
            for frame in encode_session(sid, payload, chunk_size=4096):
                client.sendall(frame)
        if finish:
            client.sendall(encode_finish_frame())
    finally:
        client.close()


def main() -> int:
    trace = make_app("connectbot", scale=SCALE, seed=1).run().trace
    payload = dumps_trace_bytes(trace)

    analyzer = StreamAnalyzer()
    analyzer.feed(payload)
    expected = [str(r) for r in analyzer.finish()]

    with tempfile.TemporaryDirectory() as tmp:
        sock_path = os.path.join(tmp, "cafa.sock")
        json_path = os.path.join(tmp, "daemon.json")
        metrics_port = free_port()
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", sock_path,
                "--shards", str(SHARDS),
                "--json", json_path,
                "--metrics-port", str(metrics_port),
            ],
        )
        try:
            for _ in range(100):
                if os.path.exists(sock_path):
                    break
                time.sleep(0.1)
            else:
                raise RuntimeError("daemon never opened its socket")

            # Concurrent uploaders, then one more connection whose
            # FINISH frame asks the daemon to drain.
            threads = [
                threading.Thread(
                    target=upload,
                    args=(sock_path, f"soak-{k}", payload, False),
                )
                for k in range(SESSIONS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            # Mid-soak scrape: every upload is in the daemon; poll the
            # live endpoint until the per-shard finished counter settles
            # at the session count, then keep that last scrape to check
            # against the final DaemonReport after the drain.
            deadline = time.monotonic() + 120
            while True:
                status = scrape_status(metrics_port)
                if counter_total(
                    status, "repro_shard_sessions_finished_total"
                ) >= SESSIONS:
                    break
                if time.monotonic() > deadline:
                    print("soak: session counters never settled; last "
                          f"scrape: {status.get('counters')}",
                          file=sys.stderr)
                    return 1
                time.sleep(0.2)

            upload(sock_path, "soak-finisher", b"", True)

            rc = daemon.wait(timeout=300)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        if rc != 0:
            print(f"soak: daemon exited {rc}", file=sys.stderr)
            return 1
        with open(json_path, "r", encoding="utf-8") as fp:
            report = json.load(fp)

    sessions = report["sessions"]
    uploads = {f"soak-{k}" for k in range(SESSIONS)}
    missing = uploads - set(sessions)
    if missing:
        print(f"soak: sessions lost in the drain: {sorted(missing)}",
              file=sys.stderr)
        return 1
    failures = 0
    for sid in sorted(uploads):
        session = sessions[sid]
        if session["error"] or not session["ended"]:
            print(f"soak: {sid} did not close cleanly: {session['error']}",
                  file=sys.stderr)
            failures += 1
        elif session["reports"] != expected:
            print(f"soak: {sid} reports diverge from single-process run",
                  file=sys.stderr)
            failures += 1
    if failures:
        return 1

    # The mid-soak scrape must agree with the drained report: same
    # session count, same total ops ingested, and the queue gauges of
    # every shard were being exported with their configured bound.
    scraped_finished = counter_total(
        status, "repro_shard_sessions_finished_total"
    )
    ended_sessions = sum(1 for s in sessions.values() if s["ended"])
    if scraped_finished != ended_sessions:
        print(f"soak: scraped finished counter {scraped_finished:.0f} != "
              f"{ended_sessions} ended sessions in the drained report",
              file=sys.stderr)
        return 1
    scraped_ops = counter_total(status, "repro_shard_ops_ingested_total")
    report_ops = sum(s["ops"] for s in sessions.values())
    if scraped_ops != report_ops:
        print(f"soak: scraped ops counter {scraped_ops:.0f} != "
              f"{report_ops} ops in the drained report", file=sys.stderr)
        return 1
    bounds = [
        value
        for key, value in status.get("gauges", {}).items()
        if key.split("{", 1)[0] == "repro_shard_queue_bound"
    ]
    if len(bounds) != SHARDS or any(bound <= 0 for bound in bounds):
        print(f"soak: expected {SHARDS} positive queue-bound gauges, "
              f"got {bounds}", file=sys.stderr)
        return 1

    print(
        f"soak OK: {SESSIONS} concurrent sessions over {SHARDS} shards, "
        f"{len(expected)} reports each, clean drain; mid-soak scrape "
        f"matched the drained report ({scraped_ops:.0f} ops)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
