#!/usr/bin/env python
"""Quickstart: build a tiny event-driven app, trace it, find the race.

The app has one looper (the UI thread), a background worker, and a
lifecycle event.  The worker posts an event that uses a pointer; the
lifecycle event frees it.  Nothing orders them, so CAFA reports a
use-free race — even though the two events executed sequentially on
the same looper thread.

Run with:  python examples/quickstart.py
"""

from repro.detect import detect_use_free_races
from repro.runtime import AndroidSystem, ExternalSource


def main() -> None:
    system = AndroidSystem(seed=42)
    app = system.process("quickstart")
    main_looper = app.looper("main")

    # Shared state: an activity holding a session pointer.
    activity = app.heap.new("Activity")
    activity.fields["session"] = app.heap.new("Session")

    def on_data_ready(ctx):
        # The use: read the pointer, then dereference it.
        ctx.use_field(activity, "session")

    def worker(ctx):
        yield from ctx.sleep(20)  # fetch something...
        ctx.post(main_looper, on_data_ready, label="onDataReady")

    app.thread("worker", worker)

    def on_destroy(ctx):
        # The free: a lifecycle clean-up nulls the pointer.
        ctx.put_field(activity, "session", None)

    user = ExternalSource("user")
    user.at(50, main_looper, on_destroy, "onDestroy")
    user.attach(system, app)

    # Execute and collect the trace.
    system.run(max_ms=1000)
    trace = system.trace()
    print(f"trace: {len(trace)} operations, {len(trace.events())} events")

    # Offline analysis: happens-before graph + use-free race detection.
    result = detect_use_free_races(trace)
    print(f"use-free races reported: {result.report_count()}")
    for report in result.reports:
        print(f"  {report}")
        witness = report.witness()
        use_op = trace[witness.use.read_index]
        free_op = trace[witness.free.index]
        print(f"    use : task {use_op.task!r} at t={use_op.time}")
        print(f"    free: task {free_op.task!r} at t={free_op.time}")
        ordered = result.hb.concurrent(witness.use.read_index, witness.free.index)
        print(f"    concurrent under the event-driven causality model: {ordered}")


if __name__ == "__main__":
    main()
