"""Experiment F8 — Figure 8: the slowdown of trace collection.

Each application runs twice — instrumented (tracer enabled) and stock
(tracer disabled) — and the slowdown is the ratio of total virtual CPU
time.  The paper reports 2x–6x across the ten apps; the per-app value
emerges from the app's density of instrumented operations relative to
its plain computation, so the *shape* (which apps are cheap/expensive
to trace) is the assertion target, not exact figures.
"""

import pytest

from repro.analysis import bench_scale, measure_slowdown
from repro.apps import ALL_APPS, FirefoxApp, MusicApp

SCALE = bench_scale()


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=[a.name for a in ALL_APPS])
def test_tracing_slowdown(benchmark, app_cls):
    result = benchmark.pedantic(
        lambda: measure_slowdown(app_cls, scale=SCALE, seed=1),
        rounds=1,
        iterations=1,
    )
    # Paper: "The slowdown is between 2x to 6x".
    assert 2.0 <= result.slowdown <= 6.0, (
        f"{app_cls.name}: slowdown {result.slowdown:.2f}x outside the "
        "paper's 2x-6x envelope"
    )
    # Within the envelope, track the paper's per-app shape loosely.
    assert abs(result.slowdown - app_cls.paper_slowdown) <= 1.0, (
        f"{app_cls.name}: slowdown {result.slowdown:.2f}x too far from "
        f"the paper's ~{app_cls.paper_slowdown}x"
    )


def test_slowdown_ordering_music_heaviest(benchmark):
    """Music is the most instrumentation-dense app, Firefox the least."""

    def measure_extremes():
        return (
            measure_slowdown(MusicApp, scale=SCALE, seed=1).slowdown,
            measure_slowdown(FirefoxApp, scale=SCALE, seed=1).slowdown,
        )

    music, firefox = benchmark.pedantic(measure_extremes, rounds=1, iterations=1)
    assert music > firefox
