"""Experiment M1 — the Section 4.1 motivation.

"There are 1,664 such races in a 30-second trace of ConnectBot, and
most of them are not harmful bugs" — versus the 3 use-free races CAFA
reports on the same app.  The benchmark runs both detectors on one
ConnectBot trace and asserts the contrast: the low-level count is
orders of magnitude above CAFA's, which stays at the paper's 3.

Note the low-level count grows with the background event load, so the
assertion is magnitude-based at small scales; at scale 1.0 it lands
near the paper's 1,664 (see EXPERIMENTS.md).
"""

from repro.analysis import bench_scale
from repro.apps import ConnectBotApp
from repro.detect import LowLevelDetector, UseFreeDetector

SCALE = bench_scale()


def _run_connectbot():
    return ConnectBotApp(scale=SCALE, seed=1).run()


def test_low_level_vs_cafa(benchmark):
    run = _run_connectbot()

    def detect_both():
        detector = UseFreeDetector(run.trace)
        cafa = detector.detect()
        low = LowLevelDetector(run.trace, hb=detector.hb).detect()
        return cafa, low

    cafa, low = benchmark.pedantic(detect_both, rounds=1, iterations=1)
    assert cafa.report_count() == 3  # the paper's ConnectBot row
    assert low.race_count() >= 30 * cafa.report_count(), (
        "the low-level baseline should report orders of magnitude more "
        f"races than CAFA (got {low.race_count()} vs {cafa.report_count()})"
    )


def test_figure2_pattern_not_reported(benchmark):
    """The commutative resizeAllowed conflict is a low-level race but
    never a use-free report."""
    run = _run_connectbot()
    detector = UseFreeDetector(run.trace)
    result = benchmark.pedantic(detector.detect, rounds=1, iterations=1)
    assert not any("resizeAllowed" in str(r.key) for r in result.reports)
    low = LowLevelDetector(run.trace, hb=detector.hb).detect()
    assert any("resizeAllowed" in r.var_class for r in low.races)
