"""Ablation benches for the design decisions DESIGN.md calls out.

Each ablation flips one modelling decision of Section 3 and measures
its effect on detection, demonstrating *why* the paper's model makes
that choice:

1. total event order per looper (the conventional baseline) hides the
   intra-thread and inter-thread violations;
2. unlock->lock happens-before edges hide true races behind incidental
   lock operations (the model uses lockset checking instead);
3. dropping the event-queue rules (a WebRacer-style model) fabricates
   races between events the queue demonstrably orders;
4. disabling the two commutativity heuristics floods the report list
   with the Figure 5 false positives;
5. the online vector-clock algorithm under-approximates the graph
   ordering exactly on traces that need the atomicity/queue rules.
"""

import pytest

from repro import CAFA_MODEL, CONVENTIONAL_MODEL, NO_QUEUE_MODEL, build_happens_before
from repro.analysis import bench_scale
from repro.apps import FBReaderApp, MyTracksApp
from repro.detect import DetectorOptions, UseFreeDetector
from repro.hb import ModelConfig, VectorClockAnalysis
from repro.testing import TraceBuilder

SCALE = bench_scale(default=0.05)


def test_ablation_sequential_events_misses_races(benchmark):
    """Conventional total event order: only column (c) races survive."""
    run = MyTracksApp(scale=SCALE, seed=1).run()

    def detect_both():
        cafa = UseFreeDetector(run.trace).detect()
        conventional = UseFreeDetector(
            run.trace, DetectorOptions(model=CONVENTIONAL_MODEL)
        ).detect()
        return cafa, conventional

    cafa, conventional = benchmark.pedantic(detect_both, rounds=1, iterations=1)
    # MyTracks: 1 intra-thread + 3 inter-thread harmful races exist;
    # the conventional model cannot see any of them.
    assert cafa.report_count() == 8
    assert conventional.report_count() < cafa.report_count()
    missed = cafa.report_count() - conventional.report_count()
    assert missed >= 4


def test_ablation_lock_edges_hide_true_race(benchmark):
    """An unlock->lock edge orders an unrelated use before a free."""
    b = TraceBuilder()
    b.thread("t1")
    b.thread("t2")
    b.begin("t1")
    b.begin("t2")
    b.acquire("t1", "L")
    use_read = b.ptr_read("t1", ("obj", 1, "p"), object_id=5, method="worker", pc=0)
    b.deref("t1", object_id=5, method="worker", pc=1)
    b.release("t1", "L")
    b.acquire("t2", "L")
    b.release("t2", "L")
    free = b.ptr_write("t2", ("obj", 1, "p"), value=None, container=1, method="cleanup", pc=0)
    b.end("t1")
    b.end("t2")
    trace = b.build()

    def detect_both():
        with_edges = UseFreeDetector(
            trace, DetectorOptions(model=ModelConfig(lock_edges=True))
        ).detect()
        without_edges = UseFreeDetector(trace).detect()
        return with_edges, without_edges

    with_edges, without_edges = benchmark.pedantic(detect_both, rounds=1, iterations=1)
    assert without_edges.report_count() == 1  # CAFA finds the race
    assert with_edges.report_count() == 0  # lock edges hide it


def test_ablation_no_queue_rules_fabricates_races(benchmark):
    """Without the queue rules, rule-1-ordered events look racy."""
    b = TraceBuilder()
    b.looper("L")
    b.thread("T")
    b.event("E_use", looper="L")
    b.event("E_free", looper="L")
    b.begin("T")
    b.send("T", "E_use", delay=1)
    b.send("T", "E_free", delay=1)
    b.end("T")
    b.begin("E_use")
    b.ptr_read("E_use", ("obj", 1, "p"), object_id=5, method="onUse", pc=0)
    b.deref("E_use", object_id=5, method="onUse", pc=1)
    b.end("E_use")
    b.begin("E_free")
    b.ptr_write("E_free", ("obj", 1, "p"), value=None, container=1, method="onFree", pc=0)
    b.end("E_free")
    trace = b.build()

    def detect_both():
        cafa = UseFreeDetector(trace).detect()
        no_queue = UseFreeDetector(
            trace, DetectorOptions(model=NO_QUEUE_MODEL)
        ).detect()
        return cafa, no_queue

    cafa, no_queue = benchmark.pedantic(detect_both, rounds=1, iterations=1)
    assert cafa.report_count() == 0  # queue rule 1 orders use before free
    assert no_queue.report_count() == 1  # WebRacer-style model reports it


def test_ablation_heuristics_off_adds_false_positives(benchmark):
    """Disabling if-guard + intra-event-allocation floods the output."""
    run = FBReaderApp(scale=SCALE, seed=1).run()

    def detect_both():
        full = UseFreeDetector(run.trace).detect()
        raw = UseFreeDetector(
            run.trace,
            DetectorOptions(if_guard=False, intra_event_allocation=False),
        ).detect()
        return full, raw

    full, raw = benchmark.pedantic(detect_both, rounds=1, iterations=1)
    # Every app carries the two Figure 5 commutative patterns; without
    # the heuristics both become (false) reports.
    assert raw.report_count() == full.report_count() + 2
    assert len(full.filtered_reports) == 2


def test_ablation_vector_clocks_underapproximate(benchmark):
    """§4.2's argument, made executable: VC ordering misses exactly the
    atomicity/queue-derived orderings."""
    b = TraceBuilder()
    b.looper("L")
    b.thread("S1")
    b.thread("S2")
    b.thread("T")
    b.event("A", looper="L")
    b.event("B", looper="L")
    b.begin("S1"); b.send("S1", "A"); b.end("S1")
    b.begin("S2"); b.send("S2", "B"); b.end("S2")
    b.begin("A"); b.fork("A", "T"); b.end("A")
    b.begin("T"); b.register("T", "Lst"); b.end("T")
    b.begin("B"); b.perform("B", "Lst"); b.end("B")
    trace = b.build()

    def analyze():
        hb = build_happens_before(trace, CAFA_MODEL)
        vc = VectorClockAnalysis(trace)
        return hb, vc

    hb, vc = benchmark.pedantic(analyze, rounds=1, iterations=1)
    n = len(trace)
    graph_pairs = {(i, j) for i in range(n) for j in range(n) if hb.ordered(i, j)}
    vc_pairs = {(i, j) for i in range(n) for j in range(n) if vc.ordered(i, j)}
    # Soundness: everything the VC derives, the graph derives.
    assert vc_pairs <= graph_pairs
    # Strictness: the atomicity conclusion (end(A) < begin(B)) is
    # invisible to the online algorithm.
    assert vc_pairs != graph_pairs
    end_a = hb.task_bounds("A")[1]
    begin_b = hb.task_bounds("B")[0]
    assert (end_a, begin_b) in graph_pairs
    assert (end_a, begin_b) not in vc_pairs
