"""Experiment P9 — telemetry instrumentation overhead.

The same 24-session fleet as the sharding benchmark (``bounds_pr8``)
is ingested through a sharded :class:`~repro.stream.SessionRouter`
twice: once with metrics + span tracing fully enabled (per-shard
telemetry shipping, feed-latency stamping, span recording) and once
with telemetry off.  Two gates, recorded in ``bounds_pr9.json``:

* **Overhead bound.**  Enabled-mode ingest throughput must be at
  least ``min_throughput_ratio`` (0.9x) of disabled-mode throughput.
  Each config takes the best of ``runs_per_config`` runs so a single
  scheduler hiccup on a small runner cannot fail the gate; the ratio
  compares two runs on the same machine, so the gate arms everywhere.

* **Fidelity.**  The per-session reports from the enabled and
  disabled runs must be identical — telemetry observes the pipeline,
  it never participates in it.  Exact, machine-independent, always
  runs.
"""

import json
import time
from pathlib import Path

from repro.analysis import bench_scale
from repro.apps import make_app
from repro.obs import disable_tracing, enable_tracing
from repro.stream import SessionRouter, concat_sessions
from repro.trace import dumps_trace_bytes, encode_mux_header, encode_session

BOUNDS = json.loads(
    (Path(__file__).parent / "bounds_pr9.json").read_text(encoding="utf-8")
)

STREAM_SCALE = bench_scale(default=0.02)


def _fleet_stream(bounds):
    trace = make_app(
        bounds["app"], scale=STREAM_SCALE, seed=bounds["seed"]
    ).run().trace
    payload = dumps_trace_bytes(
        concat_sessions(trace, bounds["copies_per_session"])
    )
    frame_lists = [
        encode_session(f"device-{k}", payload, chunk_size=1 << 14)
        for k in range(bounds["sessions"])
    ]
    buf = bytearray(encode_mux_header())
    for i in range(max(len(frames) for frames in frame_lists)):
        for frames in frame_lists:
            if i < len(frames):
                buf += frames[i]
    return bytes(buf), len(payload) * bounds["sessions"]


def _ingest(stream, shards, metrics):
    if metrics:
        enable_tracing()
    try:
        router = SessionRouter(shards, metrics=metrics)
        start = time.perf_counter()
        for i in range(0, len(stream), 1 << 16):
            router.feed(stream[i : i + (1 << 16)])
        if metrics:
            # Exercise the scrape path the live endpoints would drive.
            router.metrics_snapshot()
        report = router.drain()
        seconds = time.perf_counter() - start
    finally:
        disable_tracing()
    return report, seconds


def _fingerprint(report):
    return {
        sid: (session.reports, session.ops, session.ended)
        for sid, session in report.sessions.items()
    }


def test_telemetry_overhead_is_bounded(benchmark):
    bounds = BOUNDS["instrumentation_overhead"]
    stream, payload_bytes = _fleet_stream(bounds)

    results = {}

    def run():
        for metrics in (False, True):
            runs = [
                _ingest(stream, bounds["shards"], metrics)
                for _ in range(bounds["runs_per_config"])
            ]
            results[metrics] = (
                runs[0][0],
                min(seconds for _report, seconds in runs),
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Fidelity gate: telemetry is invisible in the analysis output.
    baseline = _fingerprint(results[False][0])
    assert len(baseline) == bounds["sessions"]
    assert _fingerprint(results[True][0]) == baseline, (
        "session reports diverged between telemetry-on and telemetry-off"
    )

    throughput = {
        metrics: payload_bytes / seconds
        for metrics, (_report, seconds) in results.items()
    }
    ratio = throughput[True] / throughput[False]
    benchmark.extra_info["payload_bytes"] = payload_bytes
    benchmark.extra_info["throughput_bytes_per_s"] = {
        "disabled": round(throughput[False]),
        "enabled": round(throughput[True]),
    }
    benchmark.extra_info["enabled_over_disabled_ratio"] = round(ratio, 3)

    assert ratio >= bounds["min_throughput_ratio"], (
        f"telemetry-enabled ingest throughput is {ratio:.2f}x the "
        f"disabled baseline (bound: {bounds['min_throughput_ratio']}x; "
        f"{benchmark.extra_info['throughput_bytes_per_s']}); "
        "instrumentation is no longer near-zero-cost"
    )
