"""The columnar trace store vs. the legacy object list — memory,
build/serialize/load timings, and the streaming-reader guarantee.

Run with ``--benchmark-json=BENCH_pr3.json`` (CI uploads the result
next to ``BENCH_pr2.json``).  The memory comparisons use the
:class:`~repro.trace.store.TraceProfile` accounting, which deliberately
*undercounts* the object backend (per-instance cost only, payload
references excluded), so every ratio asserted here favors the legacy
path; the columnar store must clear the 2x bar anyway.
"""

import time
import tracemalloc

from repro.analysis import bench_scale, reproduce_table1
from repro.apps import MusicApp
from repro.trace import load_trace_file, save_trace_file

BASE = bench_scale(default=0.05)

#: the memory and streaming measurements run at least at this scale —
#: below it the columnar store's fixed overhead (one bucket per
#: occurring kind) distorts the bytes/op amortization
MEMORY_SCALE = max(bench_scale(default=0.1), 0.1)


def record(scale, columnar=True):
    return MusicApp(scale=scale, seed=1).run(columnar=columnar).trace


def test_columnar_store_halves_memory_per_op(benchmark):
    """The struct-of-arrays layout must hold the same operations in
    less than half the bytes/op of the object list (exact, deterministic
    accounting on both sides)."""

    def both():
        return record(MEMORY_SCALE).profile(), record(
            MEMORY_SCALE, columnar=False
        ).profile()

    columnar, legacy = benchmark.pedantic(both, rounds=1, iterations=1)
    assert columnar.backend == "columnar" and legacy.backend == "object"
    assert columnar.ops == legacy.ops
    ratio = legacy.bytes_per_op / columnar.bytes_per_op
    benchmark.extra_info["columnar_bytes_per_op"] = round(columnar.bytes_per_op, 1)
    benchmark.extra_info["object_bytes_per_op"] = round(legacy.bytes_per_op, 1)
    benchmark.extra_info["memory_ratio"] = round(ratio, 2)
    assert ratio >= 2.0


def test_trace_build_and_serialize_timings(benchmark, tmp_path):
    """One build/dump/load cycle per backend and format version, with
    the wall-clock split recorded for the artifact.  v2 must be the
    smaller wire format."""

    def cycle():
        timings = {}
        t0 = time.perf_counter()
        trace = record(BASE)
        timings["build_columnar_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        record(BASE, columnar=False)
        timings["build_object_s"] = time.perf_counter() - t0
        paths = {
            "v1": (tmp_path / "t.v1.jsonl", 1),
            "v2": (tmp_path / "t.v2.jsonl", 2),
            "v2_gz": (tmp_path / "t.v2.jsonl.gz", 2),
        }
        sizes = {}
        for name, (path, version) in paths.items():
            t0 = time.perf_counter()
            save_trace_file(trace, path, version=version)
            timings[f"dump_{name}_s"] = time.perf_counter() - t0
            sizes[name] = path.stat().st_size
            t0 = time.perf_counter()
            back = load_trace_file(path)
            timings[f"load_{name}_s"] = time.perf_counter() - t0
            assert len(back) == len(trace)
        return timings, sizes

    timings, sizes = benchmark.pedantic(cycle, rounds=1, iterations=1)
    for key, value in timings.items():
        benchmark.extra_info[key] = round(value, 4)
    for name, size in sizes.items():
        benchmark.extra_info[f"size_{name}_bytes"] = size
    assert sizes["v2"] < sizes["v1"]
    assert sizes["v2_gz"] < sizes["v2"]


def test_table1_end_to_end_no_slower_on_columnar(benchmark):
    """The whole reproduce_table1 pipeline on the columnar backend must
    not be slower than on the object backend (1.25x tolerance for timer
    noise; in practice the two run at parity while the columnar store
    holds the trace in less than half the memory)."""

    def both():
        t0 = time.perf_counter()
        columnar = reproduce_table1(scale=BASE, seed=0, columnar=True)
        columnar_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        legacy = reproduce_table1(scale=BASE, seed=0, columnar=False)
        object_s = time.perf_counter() - t0
        rows = [e.row() for e in columnar.evaluations]
        assert rows == [e.row() for e in legacy.evaluations]
        return columnar_s, object_s

    columnar_s, object_s = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["table1_columnar_s"] = round(columnar_s, 3)
    benchmark.extra_info["table1_object_s"] = round(object_s, 3)
    benchmark.extra_info["table1_ratio"] = round(columnar_s / object_s, 3)
    assert columnar_s <= object_s * 1.25


def test_v2_reader_streams_in_constant_transient_memory(benchmark, tmp_path):
    """The v2 reader's transient allocation (peak minus the resident
    trace it returns) must grow sub-linearly with trace length — the
    streaming contract: live reader state is the line buffer plus the
    interning tables, which grow with *distinct* symbols only."""

    def load_transient(scale):
        trace = record(scale)
        path = tmp_path / f"t_{scale}.jsonl"
        save_trace_file(trace, path)
        tracemalloc.start()
        back = load_trace_file(path)
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return len(back), peak - current

    def sweep():
        small_scale, large_scale = MEMORY_SCALE, MEMORY_SCALE * 4
        return load_transient(small_scale), load_transient(large_scale)

    (small_ops, small_transient), (large_ops, large_transient) = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    ops_ratio = large_ops / small_ops
    transient_ratio = large_transient / max(small_transient, 1)
    benchmark.extra_info["ops_ratio"] = round(ops_ratio, 2)
    benchmark.extra_info["transient_ratio"] = round(transient_ratio, 2)
    assert ops_ratio > 2  # the sweep really scaled the trace
    # Sub-linear: transient growth stays well under the op-count growth.
    assert transient_ratio <= ops_ratio * 0.75
