"""Experiment P7 — the v3 binary columnar trace format.

Three claims, each pinned by a recorded bound in ``bounds_pr7.json``:

* **Parse speed.**  Decoding the v3 framed binary (batch column
  adoption straight into the store's typed arrays) must beat decoding
  the same trace from v2 JSONL text by ``min_parse_speedup``.  The
  recorded win is ~2.9x; the bound is 2x so a regression to
  row-by-row decoding fails while machine jitter does not.

* **Wire density.**  The v3 encoding must stay under
  ``max_size_ratio`` of the v2 text size and under
  ``max_v3_bytes_per_op`` — deterministic byte counts, exact.

* **Column-sparse access.**  A :class:`SegmentReader` scanning one
  global column and one per-kind column through the footer directory
  must read at most ``max_sparse_read_fraction`` of the file's bytes
  — the mmap path's whole point is *not* deserializing the corpus.

The fidelity gate (decoded traces and race reports byte-identical
across v1/v2/v3) lives in ``tests/test_trace_v3_binary.py``; these
benchmarks only pin the performance envelope.
"""

import io
import json
import time
from pathlib import Path

from repro.analysis import bench_scale
from repro.apps import make_app
from repro.trace import (
    OpKind,
    SegmentReader,
    dumps_trace_bytes,
    loads_trace,
    save_trace_file,
)

BOUNDS = json.loads(
    (Path(__file__).parent / "bounds_pr7.json").read_text(encoding="utf-8")
)

SCALE = bench_scale(default=0.05)


def _workload():
    bounds = BOUNDS["format"]
    trace = make_app(bounds["app"], scale=SCALE, seed=bounds["seed"]).run().trace
    return trace, dumps_trace_bytes(trace, version=2), dumps_trace_bytes(
        trace, version=3
    )


def _best_of(fn, rounds=5):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_v3_parses_faster_than_v2(benchmark):
    """Column adoption must beat per-line JSON decode by the recorded
    multiple on the same trace."""
    bounds = BOUNDS["format"]
    trace, v2_blob, v3_blob = _workload()

    def run():
        t2 = _best_of(lambda: loads_trace(v2_blob))
        t3 = _best_of(lambda: loads_trace(v3_blob))
        return t2, t3

    t2, t3 = benchmark.pedantic(run, rounds=1, iterations=1)
    # fidelity first: the fast path decodes the same trace
    assert loads_trace(v3_blob).ops == trace.ops
    speedup = t2 / t3
    assert speedup >= bounds["min_parse_speedup"], (
        f"v3 parse is only {speedup:.2f}x faster than v2 "
        f"({t3 * 1e3:.2f}ms vs {t2 * 1e3:.2f}ms); the batch column "
        "adoption path has regressed toward row-by-row decoding"
    )


def test_v3_wire_density(benchmark):
    """v3 must stay denser than v2 by the recorded (exact) ratios."""
    bounds = BOUNDS["format"]

    def run():
        return _workload()

    trace, v2_blob, v3_blob = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = len(v3_blob) / len(v2_blob)
    per_op = len(v3_blob) / len(trace)
    assert ratio <= bounds["max_size_ratio"], (
        f"v3 is {ratio:.3f}x the v2 size "
        f"(bound {bounds['max_size_ratio']}); the adaptive column "
        "widths or interning have regressed"
    )
    assert per_op <= bounds["max_v3_bytes_per_op"], (
        f"v3 spends {per_op:.1f} bytes/op "
        f"(bound {bounds['max_v3_bytes_per_op']})"
    )


def test_sparse_scan_reads_fraction_of_file(benchmark, tmp_path):
    """Touching two columns through the footer directory must leave
    the bulk of the file unread."""
    bounds = BOUNDS["format"]
    trace, _v2_blob, _v3_blob = _workload()
    path = tmp_path / "t.v3"
    save_trace_file(trace, path, version=3)

    def run():
        with SegmentReader(path) as reader:
            kinds = reader.global_column("kinds")
            events = reader.column(OpKind.SEND, "event")
            return reader.stats(), kinds, events

    stats, kinds, events = benchmark.pedantic(run, rounds=1, iterations=1)
    # fidelity: the sparse columns match the store's
    assert bytes(kinds) == bytes(trace.store.kinds)
    assert list(events) == list(trace.store.column(OpKind.SEND, "event")[1])
    total = stats.bytes_read + stats.bytes_skipped
    fraction = stats.bytes_read / total
    assert fraction <= bounds["max_sparse_read_fraction"], (
        f"sparse scan read {stats.bytes_read} of {total} bytes "
        f"({fraction:.3f}; bound {bounds['max_sparse_read_fraction']}); "
        "column access is no longer skipping unrequested sections"
    )
