"""Experiment T1 — Table 1: races reported by CAFA on the ten apps.

For each §6.1 application the benchmark runs the full pipeline
(simulate the session -> collect the trace -> build happens-before ->
detect use-free races -> classify -> join ground truth) and checks the
measured row against the published one: races reported, true races
split (a)/(b)/(c), false positives split I/II/III.

The background event load is scaled by ``REPRO_BENCH_SCALE`` (default
0.1); the race-site structure — and hence the Table 1 row — is
scale-invariant, only the event column shrinks.
"""

import pytest

from repro.analysis import bench_scale, evaluate_run
from repro.apps import ALL_APPS

SCALE = bench_scale()


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=[a.name for a in ALL_APPS])
def test_table1_row(benchmark, app_cls):
    def pipeline():
        run = app_cls(scale=SCALE, seed=1).run()
        return evaluate_run(run)

    evaluation = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    measured = evaluation.row()
    paper = app_cls.paper_row

    # The exact Table 1 cells must reproduce.
    assert measured.reported == paper.reported
    assert (measured.a, measured.b, measured.c) == (paper.a, paper.b, paper.c)
    assert (measured.fp1, measured.fp2, measured.fp3) == (
        paper.fp1,
        paper.fp2,
        paper.fp3,
    )
    # Every report is accounted for by ground truth, and vice versa.
    assert not evaluation.unmatched
    assert not evaluation.missed


def test_table1_overall(benchmark):
    """The overall row: 115 reported, 69 harmful, 60% precision."""
    from repro.analysis import reproduce_table1

    table = benchmark.pedantic(
        lambda: reproduce_table1(scale=SCALE, seed=1), rounds=1, iterations=1
    )
    totals = table.totals()
    assert totals.reported == 115
    assert (totals.a, totals.b, totals.c) == (13, 25, 31)
    assert totals.true_races == 69
    assert (totals.fp1, totals.fp2, totals.fp3) == (9, 32, 5)
    assert abs(table.overall_precision - 0.60) < 0.01
