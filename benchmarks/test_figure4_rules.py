"""Experiment F4 — Figure 4: the derived causal relations.

Benchmarks happens-before construction on each Figure 4 scenario and
asserts the derived event orderings match the paper's panels.
"""

import pytest

from repro import build_happens_before
from repro.testing import TraceBuilder


def fig4a():
    b = TraceBuilder()
    b.looper("L"); b.thread("S1"); b.thread("S2"); b.thread("T")
    b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("S1"); b.send("S1", "A"); b.end("S1")
    b.begin("S2"); b.send("S2", "B"); b.end("S2")
    b.begin("A"); b.fork("A", "T"); b.end("A")
    b.begin("T"); b.register("T", "Lst"); b.end("T")
    b.begin("B"); b.perform("B", "Lst"); b.end("B")
    return b.build()


def fig4b():
    b = TraceBuilder()
    b.looper("L"); b.thread("T")
    b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("T"); b.send("T", "A", delay=1); b.send("T", "B", delay=1); b.end("T")
    b.begin("A"); b.end("A")
    b.begin("B"); b.end("B")
    return b.build()


def fig4c():
    b = TraceBuilder()
    b.looper("L"); b.thread("T")
    b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("T"); b.send("T", "A", delay=5); b.send("T", "B", delay=0); b.end("T")
    b.begin("B"); b.end("B")
    b.begin("A"); b.end("A")
    return b.build()


def fig4d():
    b = TraceBuilder()
    b.looper("L"); b.thread("S")
    b.event("C", looper="L"); b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("S"); b.send("S", "C"); b.end("S")
    b.begin("C"); b.send("C", "A"); b.send_at_front("C", "B"); b.end("C")
    b.begin("B"); b.end("B")
    b.begin("A"); b.end("A")
    return b.build()


def fig4e():
    b = TraceBuilder()
    b.looper("L"); b.thread("T")
    b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("T"); b.send("T", "A"); b.send_at_front("T", "B"); b.end("T")
    b.begin("B"); b.end("B")
    b.begin("A"); b.end("A")
    return b.build()


def fig4f():
    b = TraceBuilder()
    b.looper("L"); b.thread("T"); b.thread("U")
    b.event("E", looper="L"); b.event("A", looper="L"); b.event("B", looper="L")
    b.begin("U"); b.send("U", "E"); b.end("U")
    b.begin("T"); b.send("T", "A"); b.end("T")
    b.begin("E"); b.send_at_front("E", "B"); b.end("E")
    b.begin("B"); b.end("B")
    b.begin("A"); b.end("A")
    return b.build()


SCENARIOS = {
    "fig4a": (fig4a, "A<B"),
    "fig4b": (fig4b, "A<B"),
    "fig4c": (fig4c, "concurrent"),
    "fig4d": (fig4d, "B<A"),
    "fig4e": (fig4e, "concurrent"),
    "fig4f": (fig4f, "concurrent"),
}


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_figure4_scenario(benchmark, name):
    make, expectation = SCENARIOS[name]
    trace = make()
    hb = benchmark(lambda: build_happens_before(trace))
    a_before_b = hb.event_ordered("A", "B")
    b_before_a = hb.event_ordered("B", "A")
    if expectation == "A<B":
        assert a_before_b and not b_before_a
    elif expectation == "B<A":
        assert b_before_a and not a_before_b
    else:
        assert not a_before_b and not b_before_a
