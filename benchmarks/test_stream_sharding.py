"""Experiment P8 — sharded daemon throughput scaling.

A sessions x shards ingest matrix: the same 24-session fleet (one
enveloped mux stream, consistent-hashed across shards) is driven
through :class:`~repro.stream.SessionRouter` at 1, 2, and 4 shards.

Two gates, recorded in ``bounds_pr8.json``:

* **Fidelity at every shard count.**  The per-session reports must be
  identical across all shard counts (and to the 1-shard run) — the
  consistent-hash router never splits a session across processes, so
  shard count must be invisible in the output.  This is exact and
  machine-independent; it always runs.

* **Near-linear scaling.**  Aggregate ingest throughput at 4 shards
  must be at least ``min_speedup_at_4_shards`` (2.5x) the 1-shard
  throughput.  Speedup needs real cores, so this gate only arms on
  machines with at least ``min_cpus_for_speedup_gate`` CPUs (CI
  runners have 4); the measured matrix is recorded in the benchmark
  JSON either way.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis import bench_scale
from repro.apps import make_app
from repro.stream import SessionRouter, concat_sessions
from repro.trace import dumps_trace_bytes, encode_mux_header, encode_session

BOUNDS = json.loads(
    (Path(__file__).parent / "bounds_pr8.json").read_text(encoding="utf-8")
)

STREAM_SCALE = bench_scale(default=0.02)


def _fleet_stream(bounds):
    """One mux stream: ``sessions`` interleaved sessions (v3
    payloads), each under its own session id.  Every session is a
    ``copies_per_session``-long synthetic soak so per-session analysis
    work dominates routing and worker-startup overheads."""
    trace = make_app(
        bounds["app"], scale=STREAM_SCALE, seed=bounds["seed"]
    ).run().trace
    payload = dumps_trace_bytes(
        concat_sessions(trace, bounds["copies_per_session"])
    )
    frame_lists = [
        encode_session(f"device-{k}", payload, chunk_size=1 << 14)
        for k in range(bounds["sessions"])
    ]
    buf = bytearray(encode_mux_header())
    for i in range(max(len(frames) for frames in frame_lists)):
        for frames in frame_lists:
            if i < len(frames):
                buf += frames[i]
    return bytes(buf), len(payload) * bounds["sessions"]


def _ingest(stream, shards):
    # The pool spawns in the constructor, before the clock starts:
    # throughput measures steady-state ingest, not process startup.
    router = SessionRouter(shards)
    start = time.perf_counter()
    for i in range(0, len(stream), 1 << 16):
        router.feed(stream[i : i + (1 << 16)])
    report = router.drain()
    seconds = time.perf_counter() - start
    return report, seconds


def test_sharding_scales_ingest_throughput(benchmark):
    bounds = BOUNDS["throughput_scaling"]
    stream, payload_bytes = _fleet_stream(bounds)

    matrix = {}

    def run():
        for shards in bounds["shard_counts"]:
            matrix[shards] = _ingest(stream, shards)
        return matrix

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Fidelity gate: shard count is invisible in the per-session
    # output — identical sessions, reports, and op counts everywhere.
    baseline_report, _baseline_seconds = matrix[bounds["shard_counts"][0]]
    fingerprint = {
        sid: (session.reports, session.ops, session.ended)
        for sid, session in baseline_report.sessions.items()
    }
    assert len(fingerprint) == bounds["sessions"]
    for shards, (report, _seconds) in matrix.items():
        assert {
            sid: (s.reports, s.ops, s.ended)
            for sid, s in report.sessions.items()
        } == fingerprint, f"reports diverged at {shards} shard(s)"

    throughput = {
        shards: payload_bytes / seconds
        for shards, (_report, seconds) in matrix.items()
    }
    benchmark.extra_info["cpus"] = os.cpu_count()
    benchmark.extra_info["payload_bytes"] = payload_bytes
    benchmark.extra_info["throughput_bytes_per_s"] = {
        str(shards): round(rate) for shards, rate in throughput.items()
    }
    speedups = {
        shards: throughput[shards] / throughput[bounds["shard_counts"][0]]
        for shards in bounds["shard_counts"]
    }
    benchmark.extra_info["speedup_vs_1_shard"] = {
        str(shards): round(value, 3) for shards, value in speedups.items()
    }

    # Scaling gate: only meaningful with real cores under the shards.
    cpus = os.cpu_count() or 1
    if cpus >= bounds["min_cpus_for_speedup_gate"]:
        top = max(bounds["shard_counts"])
        assert speedups[top] >= bounds["min_speedup_at_4_shards"], (
            f"aggregate ingest throughput at {top} shards is only "
            f"{speedups[top]:.2f}x the 1-shard baseline "
            f"(bound: {bounds['min_speedup_at_4_shards']}x; "
            f"matrix: {benchmark.extra_info['throughput_bytes_per_s']}); "
            "sharding is no longer scaling near-linearly"
        )
