"""Experiment P10 — sampled triage throughput and fidelity.

The sampled detector (``repro triage``) is the corpus-throughput
answer: a budgeted no-closure screen decides per trace whether the
happens-before closure is worth building at all.  Three gates,
recorded in ``bounds_pr10.json``:

* **Speedup bound.**  Screen-mode triage of the ten stock apps at the
  recorded budget must be at least ``min_speedup`` (5x) faster than
  full detection of the same traces.  Both sides take the best of
  ``runs_per_config`` runs on the same machine, so the gate arms on
  any runner.

* **Recall / subset fidelity.**  At the recorded budget every racy
  app must be flagged (recall 1.0) and confirm-mode sampling must
  never report a race full detection does not report.  Exact and
  machine-independent.

* **Recorded curve.**  The precision/recall-vs-budget sweep committed
  in the bounds file (and tabulated in ``docs/sampling.md``) must be
  reproduced column for column — the fidelity columns are
  deterministic in (scale, seed, sample seed, budget).

The gates run at the *recorded* scale regardless of
``REPRO_BENCH_SCALE``: the fidelity columns are only meaningful
against the traces they were recorded on (the pinned-floor idiom of
``test_analysis_scaling``).
"""

import json
import time
from pathlib import Path

from repro.analysis import budget_curve
from repro.apps import ALL_APPS
from repro.detect import SamplerOptions, UseFreeDetector, detect_sampled

BOUNDS = json.loads(
    (Path(__file__).parent / "bounds_pr10.json").read_text(encoding="utf-8")
)

_TRACES = None


def recorded_traces():
    global _TRACES
    if _TRACES is None:
        _TRACES = {
            app.name: app(
                scale=BOUNDS["scale"], seed=BOUNDS["app_seed"]
            ).run().trace
            for app in ALL_APPS
        }
    return _TRACES


def screen_options():
    return SamplerOptions(
        budget=BOUNDS["recorded_budget"], seed=BOUNDS["sample_seed"]
    )


def test_triage_speedup_gate(benchmark):
    traces = recorded_traces()
    options = screen_options()

    def triage_pass():
        return [detect_sampled(trace, options) for trace in traces.values()]

    def full_pass():
        return [UseFreeDetector(trace).detect() for trace in traces.values()]

    def best_of(fn):
        best = float("inf")
        for _ in range(BOUNDS["runs_per_config"]):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    triage_seconds = best_of(triage_pass)
    full_seconds = best_of(full_pass)
    benchmark.pedantic(triage_pass, rounds=1, iterations=1)

    speedup = full_seconds / triage_seconds
    benchmark.extra_info["scale"] = BOUNDS["scale"]
    benchmark.extra_info["budget"] = BOUNDS["recorded_budget"]
    benchmark.extra_info["triage_seconds"] = triage_seconds
    benchmark.extra_info["full_seconds"] = full_seconds
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= BOUNDS["min_speedup"], (
        f"triage speedup {speedup:.1f}x fell below the "
        f"{BOUNDS['min_speedup']}x gate "
        f"(triage {triage_seconds:.3f}s, full {full_seconds:.3f}s)"
    )


def test_recall_and_subset_at_recorded_budget():
    confirm = SamplerOptions(
        budget=BOUNDS["recorded_budget"],
        seed=BOUNDS["sample_seed"],
        confirm=True,
    )
    for name, trace in recorded_traces().items():
        full_keys = {r.key for r in UseFreeDetector(trace).detect().reports}
        screen = detect_sampled(trace, screen_options())
        if full_keys:
            assert screen.flagged, f"{name}: racy app not flagged (recall)"
        confirmed = detect_sampled(trace, confirm)
        sampled_keys = {r.key for r in confirmed.races}
        assert sampled_keys <= full_keys, (
            f"{name}: sampled races are not a subset of full detection"
        )
        if confirmed.profile.exhaustive:
            assert sampled_keys == full_keys, name


def test_recorded_curve_is_reproduced(benchmark):
    def sweep():
        return budget_curve(
            budgets=BOUNDS["budgets"],
            scale=BOUNDS["scale"],
            seed=BOUNDS["app_seed"],
            sample_seed=BOUNDS["sample_seed"],
        )

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fidelity = [
        {
            "budget": p.budget,
            "racy_apps": p.racy_apps,
            "flagged_apps": p.flagged_apps,
            "flagged_racy": p.flagged_racy,
            "recall": round(p.recall, 4),
            "trace_precision": round(p.trace_precision, 4),
            "pairs_sampled": p.pairs_sampled,
            "suspects": p.suspects,
            "confirmed": p.confirmed,
            "pair_precision": round(p.pair_precision, 4),
        }
        for p in curve.points
    ]
    assert fidelity == BOUNDS["curve"], (
        "the recorded precision/recall-vs-budget curve no longer "
        "reproduces; update bounds_pr10.json and docs/sampling.md "
        "together if the detector or the apps changed"
    )
    benchmark.extra_info["speedups"] = [
        round(p.speedup, 2) for p in curve.points
    ]
