"""Experiment P5 — the chunked sparse-bitset closure engine.

Two before/after claims, each pinned by a recorded bound in
``bounds_pr5.json``:

* **Memory.**  On the largest scaling workload (music at scale 0.5 or
  above), the chunked sparse representation must hold the transitive
  closure in at least ``min_closure_bytes_ratio`` times fewer bytes
  than the dense big-int representation — the copy-on-write chunk
  sharing between a node and its widest successor is where the win
  comes from, so the ratio also guards the sharing discipline.

* **Repropagation.**  On a single-looper trace dense with events (the
  shape that made per-group dirty tracking coarse: every derived-rule
  group lives on the one looper, so one changed node used to re-read
  every group member), the per-event dirty sets must re-examine
  strictly fewer premises than group granularity would have, and no
  more than the recorded count.  The trace is hand-built, so the
  counters are deterministic by construction and the bound is exact.

Both claims are asserted against a differential run: the two
representations must produce the identical relation before any
performance number means anything.
"""

import json
from pathlib import Path

from repro.analysis import bench_scale
from repro.apps import MusicApp
from repro.hb import build_happens_before
from repro.testing import TraceBuilder

BOUNDS = json.loads(
    (Path(__file__).parent / "bounds_pr5.json").read_text(encoding="utf-8")
)

#: the memory benchmark runs the largest catalog app at this scale
#: (the acceptance floor, regardless of REPRO_BENCH_SCALE)
MEMORY_SCALE = max(bench_scale(default=0.5), 0.5)


def huge_looper_trace(n_events: int):
    """One looper, ``n_events`` externally-sent events: every queue
    group of the derived-rule fixpoint lands on the same looper."""
    b = TraceBuilder()
    b.looper("L")
    b.thread("T")
    for i in range(n_events):
        b.event(f"E{i}", looper="L")
    b.begin("T")
    for i in range(n_events):
        b.send("T", f"E{i}", delay=i % 5)
    b.end("T")
    for i in range(n_events):
        b.begin(f"E{i}")
        b.write(f"E{i}", "x", site=f"w{i}")
        b.end(f"E{i}")
    return b.build()


def test_sparse_closure_memory_beats_dense(benchmark):
    """The chunked representation must store the same closure in at
    least ``min_closure_bytes_ratio`` times fewer bytes per key node
    than the dense big ints, bit-for-bit identically."""
    bounds = BOUNDS["memory"]

    def both():
        run = MusicApp(scale=MEMORY_SCALE, seed=bounds["seed"]).run()
        sparse = build_happens_before(run.trace)
        dense = build_happens_before(run.trace, dense_bits=True)
        return sparse, dense

    sparse, dense = benchmark.pedantic(both, rounds=1, iterations=1)
    # Differential gate: same relation either way.
    assert sorted(sparse.graph.edges()) == sorted(dense.graph.edges())
    assert sparse.graph.reach_vector() == dense.graph.reach_vector()

    nodes = sparse.graph.node_count
    assert nodes == dense.graph.node_count and nodes > 0
    sparse_bytes = sparse.profile.closure_bytes
    dense_bytes = dense.profile.closure_bytes
    assert sparse_bytes > 0 and dense_bytes > 0
    ratio = (dense_bytes / nodes) / (sparse_bytes / nodes)
    assert ratio >= bounds["min_closure_bytes_ratio"]
    # The sharing discipline, not just sparsity, carries the ratio.
    assert sparse.profile.chunks_shared > 0
    benchmark.extra_info["key_nodes"] = nodes
    benchmark.extra_info["sparse_closure_bytes"] = sparse_bytes
    benchmark.extra_info["dense_closure_bytes"] = dense_bytes
    benchmark.extra_info["closure_bytes_ratio"] = round(ratio, 3)


def test_per_event_dirty_tracking_beats_per_group(benchmark):
    """On the single-huge-looper trace the per-event dirty sets must
    re-examine strictly fewer fixpoint premises than per-group
    granularity would have — and exactly as few as when the bound was
    recorded (the hand-built trace is deterministic)."""
    bounds = BOUNDS["repropagation"]
    trace = huge_looper_trace(bounds["looper_events"])

    hb = benchmark.pedantic(
        lambda: build_happens_before(trace), rounds=1, iterations=1
    )
    profile = hb.profile
    assert profile.rounds >= 2  # the dirty rounds did real work
    assert profile.group_dirty_events > 0
    assert profile.events_repropagated < profile.group_dirty_events
    assert profile.events_repropagated <= bounds["max_events_repropagated"]
    benchmark.extra_info["events_repropagated"] = profile.events_repropagated
    benchmark.extra_info["group_dirty_events"] = profile.group_dirty_events


def test_representations_agree_on_the_huge_looper(benchmark):
    """The dirty-tracking refinement must not depend on the
    representation: dense and sparse builds of the degenerate trace do
    identical fixpoint work and produce the identical relation."""
    trace = huge_looper_trace(BOUNDS["repropagation"]["looper_events"])

    def both():
        return (
            build_happens_before(trace),
            build_happens_before(trace, dense_bits=True),
        )

    sparse, dense = benchmark.pedantic(both, rounds=1, iterations=1)
    assert sorted(sparse.graph.edges()) == sorted(dense.graph.edges())
    assert sparse.graph.reach_vector() == dense.graph.reach_vector()
    assert sparse.profile.events_repropagated == dense.profile.events_repropagated
    assert sparse.profile.group_dirty_events == dense.profile.group_dirty_events
    assert sparse.graph.bits_propagated == dense.graph.bits_propagated
