"""Microbenchmarks of the happens-before construction.

Performance guards for the three structures that dominate real traces:
long same-task send chains (where the rule-1 seeding keeps the fixpoint
linear), atomicity-heavy loopers, and wide unordered concurrency.
These are speed benchmarks; correctness of the same shapes is covered
by the differential tests against the brute-force reference model.
"""

import pytest

from repro import build_happens_before
from repro.testing import TraceBuilder


def chain_trace(n_events: int):
    """One thread sends n same-delay events: a rule-1 chain."""
    b = TraceBuilder()
    b.looper("L")
    b.thread("T")
    names = [f"E{i}" for i in range(n_events)]
    for name in names:
        b.event(name, looper="L")
    b.begin("T")
    for name in names:
        b.send("T", name, delay=1)
    b.end("T")
    for name in names:
        b.begin(name)
        b.end(name)
    return b.build()


def wide_trace(n_events: int):
    """n mutually unordered events from n root threads."""
    b = TraceBuilder()
    b.looper("L")
    for i in range(n_events):
        b.event(f"E{i}", looper="L")
        b.thread(f"T{i}")
    for i in range(n_events):
        b.begin(f"T{i}")
        b.send(f"T{i}", f"E{i}")
        b.end(f"T{i}")
    for i in range(n_events):
        b.begin(f"E{i}")
        b.end(f"E{i}")
    return b.build()


@pytest.mark.parametrize("n", [50, 200])
def test_bench_send_chain(benchmark, n):
    trace = chain_trace(n)
    hb = benchmark(lambda: build_happens_before(trace))
    # seeding keeps the chain linear: far ends still ordered
    assert hb.event_ordered("E0", f"E{n - 1}")
    # and the fixpoint converges without deriving a quadratic edge set
    assert hb.graph.edge_count < 20 * n


@pytest.mark.parametrize("n", [50, 200])
def test_bench_wide_concurrency(benchmark, n):
    trace = wide_trace(n)
    hb = benchmark(lambda: build_happens_before(trace))
    assert not hb.event_ordered("E0", f"E{n - 1}")
    assert not hb.event_ordered(f"E{n - 1}", "E0")


def test_bench_query_throughput(benchmark):
    trace = chain_trace(120)
    hb = build_happens_before(trace)
    pairs = [(i, j) for i in range(0, len(trace), 7) for j in range(0, len(trace), 11)]

    def query_all():
        return sum(1 for i, j in pairs if hb.ordered(i, j))

    ordered = benchmark(query_all)
    assert ordered > 0
