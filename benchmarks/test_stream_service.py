"""Experiment P6 — the online streaming detection service.

Two claims, the first pinned by a recorded bound in
``bounds_pr6.json``:

* **Bounded memory.**  Streaming a 10x-length synthetic session stream
  (ten renamed copies of the connectbot trace, each quiescing before
  the next begins) through the analyzer with epoch GC must keep the
  peak closure footprint within ``max_peak_closure_ratio`` of the
  single-session peak.  Without retirement the closure grows with
  every session; the recorded unbounded peak is ~14x the bounded one.

* **Fidelity.**  The bound means nothing unless the online reports are
  byte-identical to the offline detector's on the same stream — the
  differential gate runs inside the benchmark body.

The ratio compares deterministic byte counts of the same closure
structures on a deterministic workload, so it is machine-independent
and exact.
"""

import json
from pathlib import Path

from repro.analysis import bench_scale, soak_trace
from repro.apps import make_app
from repro.detect import UseFreeDetector
from repro.stream import StreamAnalyzer, concat_sessions
from repro.trace import dumps_trace

BOUNDS = json.loads(
    (Path(__file__).parent / "bounds_pr6.json").read_text(encoding="utf-8")
)

STREAM_SCALE = bench_scale(default=0.02)


def _stream(trace, gc):
    analyzer = StreamAnalyzer(gc=gc)
    for line in dumps_trace(trace, version=2).splitlines():
        analyzer.feed_line(line)
    reports = [str(r) for r in analyzer.finish()]
    return analyzer.profile, reports


def test_epoch_gc_bounds_peak_closure(benchmark):
    """Ten back-to-back sessions must stream within the recorded
    multiple of one session's closure footprint — and produce the
    offline detector's reports exactly."""
    bounds = BOUNDS["bounded_memory"]
    base = make_app(
        bounds["app"], scale=STREAM_SCALE, seed=bounds["seed"]
    ).run().trace
    combined = concat_sessions(base, sessions=bounds["sessions"])

    def run():
        single, _ = _stream(base, gc=True)
        bounded, online = _stream(combined, gc=True)
        return single, bounded, online

    single, bounded, online = benchmark.pedantic(run, rounds=1, iterations=1)

    # Differential gate: online == offline on the full stream.
    offline = [str(r) for r in UseFreeDetector(combined).detect().reports]
    assert online == offline

    assert bounded.epochs_retired == bounds["sessions"]
    assert bounded.cross_epoch_accesses == 0
    ratio = bounded.peak_closure_bytes / single.peak_closure_bytes
    assert ratio <= bounds["max_peak_closure_ratio"], (
        f"peak closure grew to {bounded.peak_closure_bytes} bytes "
        f"({ratio:.2f}x the single-session peak of "
        f"{single.peak_closure_bytes}); epoch retirement is no longer "
        "reclaiming the closure between sessions"
    )


def test_online_soak_throughput(benchmark):
    """Record the cost of a full online replay (the soak harness) so
    streaming-path slowdowns show up in the benchmark history."""
    trace = make_app("connectbot", scale=STREAM_SCALE, seed=1).run().trace

    result = benchmark.pedantic(
        lambda: soak_trace(trace, name="connectbot"), rounds=1, iterations=1
    )
    assert result.identical, result.format()
