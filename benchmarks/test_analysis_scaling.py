"""Experiment P1 — Section 6.4: offline analysis time vs. trace size.

"The running time of the offline analysis depends on the number of
events in a trace" (30 minutes to a day on the paper's hardware).
The benchmark sweeps the background event load and checks the
monotone-growth shape; absolute times are of course incomparable.
"""

from repro.analysis import analysis_scaling, bench_scale
from repro.apps import VlcApp

BASE = bench_scale(default=0.05)


def test_analysis_time_grows_with_events(benchmark):
    points = benchmark.pedantic(
        lambda: analysis_scaling(VlcApp, scales=[BASE, BASE * 2, BASE * 4], seed=1),
        rounds=1,
        iterations=1,
    )
    events = [p.events for p in points]
    assert events == sorted(events) and events[0] < events[-1]
    # Shape: the largest trace must cost more than the smallest one.
    assert points[-1].total_seconds > points[0].total_seconds


def test_hb_build_dominates_at_scale(benchmark):
    """The happens-before fixpoint is the expensive phase, as §4.2's
    design discussion implies."""
    points = benchmark.pedantic(
        lambda: analysis_scaling(VlcApp, scales=[BASE * 4], seed=1),
        rounds=1,
        iterations=1,
    )
    point = points[0]
    assert point.hb_seconds > 0
    assert point.detect_seconds > 0
