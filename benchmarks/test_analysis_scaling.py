"""Experiment P1 — Section 6.4: offline analysis time vs. trace size.

"The running time of the offline analysis depends on the number of
events in a trace" (30 minutes to a day on the paper's hardware).
The benchmark sweeps the background event load and checks the
monotone-growth shape; absolute times are of course incomparable.

The detection-phase benchmarks at the bottom compare the prefix-mask +
memo query path against the historical bit-scan on the largest catalog
workload: the fast path must answer the phase's exact query workload
at least ``min_replay_speedup`` times faster, bit-for-bit identically,
and its memoized query work per candidate pair must stay under the
bound recorded in ``bounds_pr2.json`` (the workload is deterministic,
so that ratio is exact and machine-independent).
"""

import json
from pathlib import Path

from repro.analysis import analysis_scaling, bench_scale, detection_benchmark
from repro.apps import CameraApp, MusicApp, MyTracksApp, VlcApp
from repro.hb import build_happens_before

BASE = bench_scale(default=0.05)

#: the detection benchmark runs the largest catalog app at this scale
#: (the acceptance floor, regardless of REPRO_BENCH_SCALE)
DETECTION_SCALE = max(bench_scale(default=0.5), 0.5)

BOUNDS = json.loads(
    (Path(__file__).parent / "bounds_pr2.json").read_text(encoding="utf-8")
)

#: recorded build-side counters (see the comment inside the file)
BUILD_BOUNDS = json.loads(
    (Path(__file__).parent / "bounds_pr3.json").read_text(encoding="utf-8")
)


def test_analysis_time_grows_with_events(benchmark):
    points = benchmark.pedantic(
        lambda: analysis_scaling(VlcApp, scales=[BASE, BASE * 2, BASE * 4], seed=1),
        rounds=1,
        iterations=1,
    )
    events = [p.events for p in points]
    assert events == sorted(events) and events[0] < events[-1]
    # Shape: the largest trace must cost more than the smallest one.
    assert points[-1].total_seconds > points[0].total_seconds


def test_hb_build_dominates_at_scale(benchmark):
    """The happens-before fixpoint is the expensive phase, as §4.2's
    design discussion implies."""
    points = benchmark.pedantic(
        lambda: analysis_scaling(VlcApp, scales=[BASE * 4], seed=1),
        rounds=1,
        iterations=1,
    )
    point = points[0]
    assert point.hb_seconds > 0
    assert point.detect_seconds > 0


def test_incremental_closure_is_computed_once(benchmark):
    """The fixpoint maintains the closure in place: one full
    computation regardless of how many rounds the derived rules run
    (the legacy builder recomputed it at least once per round)."""
    points = benchmark.pedantic(
        lambda: analysis_scaling(MyTracksApp, scales=[BASE * 2], seed=1),
        rounds=1,
        iterations=1,
    )
    point = points[0]
    assert point.fixpoint_rounds >= 2  # the derived rules do real work
    assert point.closure_recomputations == 1


def test_closure_work_grows_subquadratically(benchmark):
    """Incrementally-propagated reachability bits must grow strictly
    slower than the squared key-node count as the trace scales up."""
    points = benchmark.pedantic(
        lambda: analysis_scaling(CameraApp, scales=[BASE, BASE * 2, BASE * 4], seed=1),
        rounds=1,
        iterations=1,
    )
    first, last = points[0], points[-1]
    assert last.key_nodes > first.key_nodes
    node_growth = last.key_nodes / first.key_nodes
    bit_growth = last.bits_propagated / max(first.bits_propagated, 1)
    assert bit_growth < node_growth**2


def test_incremental_builder_beats_legacy_without_diverging(benchmark):
    """Before/after comparison: the incremental build must produce the
    bit-identical relation while doing strictly less closure work than
    the legacy snapshot-per-round build."""

    def both():
        run = MyTracksApp(scale=BASE * 2, seed=1).run()
        fast = build_happens_before(run.trace)
        slow = build_happens_before(run.trace, incremental=False)
        return fast, slow

    fast, slow = benchmark.pedantic(both, rounds=1, iterations=1)
    assert set(fast.graph.edges()) == set(slow.graph.edges())
    assert fast.graph.reach_vector() == slow.graph.reach_vector()
    assert fast.graph.closure_recomputations < slow.graph.closure_recomputations
    assert fast.profile.total_seconds > 0 and slow.profile.total_seconds > 0


def test_build_side_counters_stay_under_recorded_bounds(benchmark):
    """The closure-build counters are deterministic in (app, scale,
    seed), so the recorded bounds pin them exactly: one full closure
    computation, and no more incrementally-propagated bits than the
    build that recorded ``bounds_pr3.json`` needed — regardless of how
    many fixpoint rounds the derived rules run."""
    points = benchmark.pedantic(
        lambda: analysis_scaling(
            MyTracksApp, scales=[BUILD_BOUNDS["scale"]], seed=BUILD_BOUNDS["seed"]
        ),
        rounds=1,
        iterations=1,
    )
    point = points[0]
    assert point.fixpoint_rounds >= BUILD_BOUNDS["min_fixpoint_rounds"]
    assert (
        point.closure_recomputations
        <= BUILD_BOUNDS["max_closure_recomputations"]
    )
    assert point.bits_propagated <= BUILD_BOUNDS["max_bits_propagated"]
    benchmark.extra_info["closure_recomputations"] = point.closure_recomputations
    benchmark.extra_info["bits_propagated"] = point.bits_propagated


def test_detection_query_path_beats_scan(benchmark):
    """Before/after comparison of the query layer: the prefix-mask +
    memo path must answer the detection phase's exact query workload
    ≥3x faster than the historical bit-scan, with bit-identical
    results, and must not regress the end-to-end detection phase."""
    result = benchmark.pedantic(
        lambda: detection_benchmark(MusicApp, scale=DETECTION_SCALE, seed=1),
        rounds=1,
        iterations=1,
    )
    assert result.reports_identical
    assert result.low_level_identical
    assert result.workload_pairs > 1000  # a real workload, not a toy
    assert result.replay_speedup >= BOUNDS["min_replay_speedup"]
    # the full phase shares indexing work between both paths, so the
    # bar is no-regression (with allowance for timer noise), not 3x
    assert result.fast_detect_seconds <= result.scan_detect_seconds * 1.25


def test_detection_query_work_is_sublinear(benchmark):
    """The memo must collapse the per-candidate-pair query work to
    well below one reachability test per pair; the exact ratio is
    deterministic, so it is pinned by the recorded bound."""
    result = benchmark.pedantic(
        lambda: detection_benchmark(
            MusicApp, scale=BOUNDS["scale"], seed=BOUNDS["seed"]
        ),
        rounds=1,
        iterations=1,
    )
    profile = result.fast_profile
    assert profile.batched_pairs > 0
    assert profile.memo_misses < profile.batched_pairs  # sub-linear
    assert result.memo_misses_per_pair <= BOUNDS["max_memo_misses_per_pair"]
