"""Experiment P1 — Section 6.4: offline analysis time vs. trace size.

"The running time of the offline analysis depends on the number of
events in a trace" (30 minutes to a day on the paper's hardware).
The benchmark sweeps the background event load and checks the
monotone-growth shape; absolute times are of course incomparable.
"""

from repro.analysis import analysis_scaling, bench_scale
from repro.apps import CameraApp, MyTracksApp, VlcApp
from repro.hb import build_happens_before

BASE = bench_scale(default=0.05)


def test_analysis_time_grows_with_events(benchmark):
    points = benchmark.pedantic(
        lambda: analysis_scaling(VlcApp, scales=[BASE, BASE * 2, BASE * 4], seed=1),
        rounds=1,
        iterations=1,
    )
    events = [p.events for p in points]
    assert events == sorted(events) and events[0] < events[-1]
    # Shape: the largest trace must cost more than the smallest one.
    assert points[-1].total_seconds > points[0].total_seconds


def test_hb_build_dominates_at_scale(benchmark):
    """The happens-before fixpoint is the expensive phase, as §4.2's
    design discussion implies."""
    points = benchmark.pedantic(
        lambda: analysis_scaling(VlcApp, scales=[BASE * 4], seed=1),
        rounds=1,
        iterations=1,
    )
    point = points[0]
    assert point.hb_seconds > 0
    assert point.detect_seconds > 0


def test_incremental_closure_is_computed_once(benchmark):
    """The fixpoint maintains the closure in place: one full
    computation regardless of how many rounds the derived rules run
    (the legacy builder recomputed it at least once per round)."""
    points = benchmark.pedantic(
        lambda: analysis_scaling(MyTracksApp, scales=[BASE * 2], seed=1),
        rounds=1,
        iterations=1,
    )
    point = points[0]
    assert point.fixpoint_rounds >= 2  # the derived rules do real work
    assert point.closure_recomputations == 1


def test_closure_work_grows_subquadratically(benchmark):
    """Incrementally-propagated reachability bits must grow strictly
    slower than the squared key-node count as the trace scales up."""
    points = benchmark.pedantic(
        lambda: analysis_scaling(CameraApp, scales=[BASE, BASE * 2, BASE * 4], seed=1),
        rounds=1,
        iterations=1,
    )
    first, last = points[0], points[-1]
    assert last.key_nodes > first.key_nodes
    node_growth = last.key_nodes / first.key_nodes
    bit_growth = last.bits_propagated / max(first.bits_propagated, 1)
    assert bit_growth < node_growth**2


def test_incremental_builder_beats_legacy_without_diverging(benchmark):
    """Before/after comparison: the incremental build must produce the
    bit-identical relation while doing strictly less closure work than
    the legacy snapshot-per-round build."""

    def both():
        run = MyTracksApp(scale=BASE * 2, seed=1).run()
        fast = build_happens_before(run.trace)
        slow = build_happens_before(run.trace, incremental=False)
        return fast, slow

    fast, slow = benchmark.pedantic(both, rounds=1, iterations=1)
    assert set(fast.graph.edges()) == set(slow.graph.edges())
    assert fast.graph.reach_vector() == slow.graph.reach_vector()
    assert fast.graph.closure_recomputations < slow.graph.closure_recomputations
    assert fast.profile.total_seconds > 0 and slow.profile.total_seconds > 0
