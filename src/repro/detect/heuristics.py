"""The two false-positive pruning heuristics of Section 4.3.

Both heuristics recognize programming patterns that make two events
containing a use-free race *commutative*, and both apply **only** when
the use and the free execute in events processed by the same looper
thread — between events of one looper the whole event is atomic, so a
guard checked at the start of the region cannot be invalidated
mid-event; across threads it could.

**If-guard** — a use is safe when a logged branch certifies the same
pointer non-null and the dereference lies in the branch's safe region
(Figure 6).  For a branch at ``pc`` jumping to ``target``:

* ``if-eqz`` forward, not taken: safe region ``[pc+1, target)``;
* ``if-eqz`` backward, not taken: safe region ``[pc+1, end)``;
* ``if-nez``/``if-eq`` forward, taken: safe region ``[target, end)``;
* ``if-nez``/``if-eq`` backward, taken: safe region ``[target, pc)``.

**Intra-event-allocation** — a free is invisible outside its event when
the same event later re-allocates the slot; a use cannot observe an
outside free when its own event allocated the slot before it.
"""

from __future__ import annotations

import sys
from typing import Tuple

from ..trace import BranchKind, Branch, Trace
from .accesses import AccessIndex, Guard, PointerWrite, Use

_END_OF_METHOD = sys.maxsize


def branch_safe_region(kind: BranchKind, pc: int, target: int) -> Tuple[int, int]:
    """The half-open pc interval a logged branch certifies non-null."""
    if kind is BranchKind.IF_EQZ:
        if target > pc:
            return (pc + 1, target)
        return (pc + 1, _END_OF_METHOD)
    # if-nez and if-eq give the same guarantee (Section 5.3).
    if target > pc:
        return (target, _END_OF_METHOD)
    return (target, pc)


def _branch_kind_of(trace: Trace, guard: Guard) -> BranchKind:
    store = trace.store
    if store is not None:
        return store.field_of(guard.index, "branch_kind")
    op = trace[guard.index]
    assert isinstance(op, Branch)
    return op.branch_kind


def use_is_guarded(index: AccessIndex, use: Use) -> bool:
    """The if-guard check: is every dereference of this use covered by
    an earlier same-task branch on the same pointer whose safe region
    contains the dereference (or the read itself)?"""
    candidate_guards = [
        g
        for g in index.guards
        if g.task == use.task and g.address == use.address and g.method == use.method
    ]
    if not candidate_guards:
        return False
    trace = index.trace
    store = trace.store
    for deref_index in use.deref_indices:
        if store is not None:
            deref_pc = store.field_of(deref_index, "pc", -1)
        else:
            deref_pc = getattr(trace[deref_index], "pc", -1)
        covered = False
        for guard in candidate_guards:
            if guard.index > deref_index:
                continue  # the guard must execute before the dereference
            lo, hi = branch_safe_region(
                _branch_kind_of(trace, guard), guard.pc, guard.target
            )
            if lo <= deref_pc < hi or lo <= use.read_pc < hi:
                covered = True
                break
        if not covered:
            return False
    return True


def free_has_intra_event_realloc(index: AccessIndex, free: PointerWrite) -> bool:
    """Is there an allocation of the same slot after the free, within
    the same event?  Then the null never escapes the event."""
    return any(
        alloc.task == free.task
        and alloc.address == free.address
        and alloc.index > free.index
        for alloc in index.allocs
    )


def use_has_intra_event_alloc(index: AccessIndex, use: Use) -> bool:
    """Is there an allocation of the same slot before the use, within
    the same event?  Then the use cannot observe an outside free."""
    return any(
        alloc.task == use.task
        and alloc.address == use.address
        and alloc.index < use.read_index
        for alloc in index.allocs
    )
