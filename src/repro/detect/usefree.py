"""The CAFA use-free race detector (Section 4).

A *use-free race* is a use and a free of the same pointer slot that are
not ordered by the happens-before relation of the event-driven
causality model.  The detector:

1. recovers uses/frees/guards/locksets from the low-level records
   (:mod:`repro.detect.accesses`);
2. builds the happens-before relation (:mod:`repro.hb`);
3. pairs up concurrent uses and frees of the same slot, dismissing
   pairs protected by a common lock (the lockset check of Section 3.2);
   the cheap lockset intersection runs *before* the happens-before
   query, and the surviving candidates are answered in one
   :meth:`~repro.hb.graph.HappensBefore.concurrent_pairs` batch so the
   query memo collapses repeated event pairs — the filters are
   conjunctive, so the reordering cannot change which pairs survive;
4. prunes pairs the if-guard or intra-event-allocation heuristics
   prove commutative — only for pairs whose events run on the same
   looper thread, where event atomicity makes the heuristics valid;
5. deduplicates surviving pairs into static reports and classifies
   each as intra-thread (a), inter-thread (b), or conventional (c)
   using a second happens-before pass under the conventional model.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Tuple

from ..hb import (
    CAFA_MODEL,
    CONVENTIONAL_MODEL,
    DEFAULT_DENSE_BITS,
    HappensBefore,
    ModelConfig,
    build_happens_before,
)
from ..trace import Address, TaskKind, Trace
from .accesses import AccessIndex, PointerWrite, Use, extract_accesses
from .heuristics import (
    free_has_intra_event_realloc,
    use_has_intra_event_alloc,
    use_is_guarded,
)
from .report import RaceClass, RaceReport, RaceSiteKey, UseFreeRace


@dataclass(frozen=True)
class DetectorOptions:
    """Switches for the detector's filters (ablation knobs)."""

    if_guard: bool = True
    intra_event_allocation: bool = True
    lockset_filter: bool = True
    model: ModelConfig = CAFA_MODEL
    #: model used to decide column (b) vs (c); the Table 1 baseline
    conventional_model: ModelConfig = CONVENTIONAL_MODEL
    #: use the prefix-mask + memo happens-before query path; False
    #: selects the historical per-query bit-scan (differential target)
    fast_queries: bool = True
    #: LRU bound of the query memo tables: None = the default
    #: (:data:`repro.hb.DEFAULT_MEMO_CAPACITY`), 0 = unbounded
    memo_capacity: Optional[int] = None
    #: store the closure as dense big-int bitsets (the legacy
    #: representation) instead of chunked sparse bitsets; verdicts are
    #: identical, only memory/speed differ (differential target)
    dense_bits: bool = DEFAULT_DENSE_BITS


@dataclass
class DetectionResult:
    """Everything the detector produced for one trace."""

    trace: Trace
    options: DetectorOptions
    hb: HappensBefore
    accesses: AccessIndex
    #: surviving static reports (what CAFA prints)
    reports: List[RaceReport] = dataclass_field(default_factory=list)
    #: static reports whose every witness was pruned by a heuristic
    filtered_reports: List[RaceReport] = dataclass_field(default_factory=list)
    #: dynamic (use, free) pairs inspected (concurrent + lock-disjoint)
    dynamic_candidates: int = 0

    def report_count(self) -> int:
        return len(self.reports)

    def by_class(self, race_class: RaceClass) -> List[RaceReport]:
        return [r for r in self.reports if r.race_class is race_class]

    def find(self, field: str) -> List[RaceReport]:
        """Reports on a pointer field name (convenience for tests)."""
        return [r for r in self.reports if r.key.field == field]


class UseFreeDetector:
    """See the module docstring."""

    def __init__(
        self,
        trace: Trace,
        options: Optional[DetectorOptions] = None,
        hb: Optional[HappensBefore] = None,
        accesses: Optional[AccessIndex] = None,
        conventional_hb: Optional[HappensBefore] = None,
    ) -> None:
        self.trace = trace
        self.options = options or DetectorOptions()
        self._hb = hb
        self._accesses = accesses
        #: injectable like ``hb``: the streaming service passes its
        #: incrementally maintained conventional-model relation here so
        #: classification reuses it instead of rebuilding from scratch
        self._conventional_hb = conventional_hb

    @property
    def hb(self) -> HappensBefore:
        if self._hb is None:
            self._hb = build_happens_before(
                self.trace,
                self.options.model,
                fast_queries=self.options.fast_queries,
                memo_capacity=self.options.memo_capacity,
                dense_bits=self.options.dense_bits,
            )
        return self._hb

    @property
    def conventional_hb(self) -> HappensBefore:
        if self._conventional_hb is None:
            self._conventional_hb = build_happens_before(
                self.trace,
                self.options.conventional_model,
                fast_queries=self.options.fast_queries,
                memo_capacity=self.options.memo_capacity,
                dense_bits=self.options.dense_bits,
            )
        return self._conventional_hb

    @property
    def accesses(self) -> AccessIndex:
        if self._accesses is None:
            self._accesses = extract_accesses(self.trace)
        return self._accesses

    # ------------------------------------------------------------------

    def detect(self) -> DetectionResult:
        accesses = self.accesses
        hb = self.hb
        options = self.options
        result = DetectionResult(
            trace=self.trace, options=options, hb=hb, accesses=accesses
        )

        # Stage 1: enumerate candidate (use, free) pairs per address —
        # through the AccessIndex's cached per-address groupings — and
        # pre-filter by task identity and, when enabled, by the lockset
        # intersection.  The lockset check is two dict lookups and a
        # frozenset AND, always cheaper than even a memoized ordering
        # query, so it runs first; both filters are conjunctive, so the
        # surviving set (and ``dynamic_candidates``) is unchanged.
        candidates: List[Tuple[Use, PointerWrite, Address]] = []
        uses_by_address = accesses.uses_by_address()
        for address, frees in accesses.frees_by_address().items():
            uses = uses_by_address.get(address)
            if not uses:
                continue
            for use in uses:
                for free in frees:
                    if use.task == free.task:
                        continue  # ordered by the task's program order
                    if options.lockset_filter and (
                        accesses.lockset(use.read_index)
                        & accesses.lockset(free.index)
                    ):
                        continue  # mutually excluded by a common lock
                    candidates.append((use, free, address))

        # Stage 2: one batched concurrency query for every survivor.
        # The batch deduplicates repeated operation pairs and the
        # happens-before memo collapses distinct pairs between the same
        # event pair to a single reachability test.
        verdicts = hb.concurrent_pairs(
            (use.read_index, free.index) for use, free, _ in candidates
        )

        by_key: Dict[RaceSiteKey, RaceReport] = {}
        for (use, free, address), concurrent in zip(candidates, verdicts):
            if not concurrent:
                continue
            result.dynamic_candidates += 1
            race = UseFreeRace(use=use, free=free, address=address)
            if self._same_looper_events(use.task, free.task):
                if options.if_guard and use_is_guarded(accesses, use):
                    race.filtered_by = "if-guard"
                elif options.intra_event_allocation and (
                    free_has_intra_event_realloc(accesses, free)
                    or use_has_intra_event_alloc(accesses, use)
                ):
                    race.filtered_by = "intra-event-allocation"
            report = by_key.get(race.key)
            if report is None:
                report = by_key[race.key] = RaceReport(key=race.key)
            report.witnesses.append(race)

        # Stage 3: classification.  Intra-thread verdicts need no
        # second model; the rest are answered in one batch against the
        # conventional relation (built only when actually needed).
        pending: List[Tuple[RaceReport, UseFreeRace]] = []
        for report in by_key.values():
            live = [w for w in report.witnesses if w.filtered_by is None]
            if live:
                report.witnesses = live + [
                    w for w in report.witnesses if w.filtered_by is not None
                ]
                race = live[0]
                if self._same_looper_events(race.use.task, race.free.task):
                    report.race_class = RaceClass.INTRA_THREAD
                else:
                    pending.append((report, race))
                result.reports.append(report)
            else:
                result.filtered_reports.append(report)
        if pending:
            conventional = self.conventional_hb.concurrent_pairs(
                (race.use.read_index, race.free.index) for _, race in pending
            )
            for (report, _), concurrent in zip(pending, conventional):
                report.race_class = (
                    RaceClass.CONVENTIONAL
                    if concurrent
                    else RaceClass.INTER_THREAD
                )
        result.reports.sort(key=lambda r: str(r.key))
        result.filtered_reports.sort(key=lambda r: str(r.key))
        return result

    def _same_looper_events(self, task_a: str, task_b: str) -> bool:
        tasks = self.trace.tasks
        info_a, info_b = tasks.get(task_a), tasks.get(task_b)
        return (
            info_a is not None
            and info_b is not None
            and info_a.task_kind is TaskKind.EVENT
            and info_b.task_kind is TaskKind.EVENT
            and info_a.looper is not None
            and info_a.looper == info_b.looper
        )

def detect_use_free_races(
    trace: Trace, options: Optional[DetectorOptions] = None
) -> DetectionResult:
    """Convenience one-shot entry point."""
    return UseFreeDetector(trace, options).detect()
