"""The CAFA use-free race detector (Section 4).

A *use-free race* is a use and a free of the same pointer slot that are
not ordered by the happens-before relation of the event-driven
causality model.  The detector:

1. recovers uses/frees/guards/locksets from the low-level records
   (:mod:`repro.detect.accesses`);
2. builds the happens-before relation (:mod:`repro.hb`);
3. pairs up concurrent uses and frees of the same slot, dismissing
   pairs protected by a common lock (the lockset check of Section 3.2);
4. prunes pairs the if-guard or intra-event-allocation heuristics
   prove commutative — only for pairs whose events run on the same
   looper thread, where event atomicity makes the heuristics valid;
5. deduplicates surviving pairs into static reports and classifies
   each as intra-thread (a), inter-thread (b), or conventional (c)
   using a second happens-before pass under the conventional model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

from ..hb import (
    CAFA_MODEL,
    CONVENTIONAL_MODEL,
    HappensBefore,
    ModelConfig,
    build_happens_before,
)
from ..trace import Address, TaskKind, Trace
from .accesses import AccessIndex, PointerWrite, Use, extract_accesses
from .heuristics import (
    free_has_intra_event_realloc,
    use_has_intra_event_alloc,
    use_is_guarded,
)
from .report import RaceClass, RaceReport, RaceSiteKey, UseFreeRace


@dataclass(frozen=True)
class DetectorOptions:
    """Switches for the detector's filters (ablation knobs)."""

    if_guard: bool = True
    intra_event_allocation: bool = True
    lockset_filter: bool = True
    model: ModelConfig = CAFA_MODEL
    #: model used to decide column (b) vs (c); the Table 1 baseline
    conventional_model: ModelConfig = CONVENTIONAL_MODEL


@dataclass
class DetectionResult:
    """Everything the detector produced for one trace."""

    trace: Trace
    options: DetectorOptions
    hb: HappensBefore
    accesses: AccessIndex
    #: surviving static reports (what CAFA prints)
    reports: List[RaceReport] = dataclass_field(default_factory=list)
    #: static reports whose every witness was pruned by a heuristic
    filtered_reports: List[RaceReport] = dataclass_field(default_factory=list)
    #: dynamic (use, free) pairs inspected (concurrent + lock-disjoint)
    dynamic_candidates: int = 0

    def report_count(self) -> int:
        return len(self.reports)

    def by_class(self, race_class: RaceClass) -> List[RaceReport]:
        return [r for r in self.reports if r.race_class is race_class]

    def find(self, field: str) -> List[RaceReport]:
        """Reports on a pointer field name (convenience for tests)."""
        return [r for r in self.reports if r.key.field == field]


class UseFreeDetector:
    """See the module docstring."""

    def __init__(
        self,
        trace: Trace,
        options: Optional[DetectorOptions] = None,
        hb: Optional[HappensBefore] = None,
        accesses: Optional[AccessIndex] = None,
    ) -> None:
        self.trace = trace
        self.options = options or DetectorOptions()
        self._hb = hb
        self._accesses = accesses
        self._conventional_hb: Optional[HappensBefore] = None

    @property
    def hb(self) -> HappensBefore:
        if self._hb is None:
            self._hb = build_happens_before(self.trace, self.options.model)
        return self._hb

    @property
    def conventional_hb(self) -> HappensBefore:
        if self._conventional_hb is None:
            self._conventional_hb = build_happens_before(
                self.trace, self.options.conventional_model
            )
        return self._conventional_hb

    @property
    def accesses(self) -> AccessIndex:
        if self._accesses is None:
            self._accesses = extract_accesses(self.trace)
        return self._accesses

    # ------------------------------------------------------------------

    def detect(self) -> DetectionResult:
        accesses = self.accesses
        hb = self.hb
        options = self.options
        result = DetectionResult(
            trace=self.trace, options=options, hb=hb, accesses=accesses
        )

        uses_by_address: Dict[Address, List[Use]] = defaultdict(list)
        for use in accesses.uses:
            uses_by_address[use.address].append(use)
        frees_by_address: Dict[Address, List[PointerWrite]] = defaultdict(list)
        for free in accesses.frees:
            frees_by_address[free.address].append(free)

        by_key: Dict[RaceSiteKey, RaceReport] = {}
        for address, frees in frees_by_address.items():
            uses = uses_by_address.get(address)
            if not uses:
                continue
            for use in uses:
                for free in frees:
                    race = self._check_pair(use, free, address)
                    if race is None:
                        continue
                    result.dynamic_candidates += 1
                    report = by_key.get(race.key)
                    if report is None:
                        report = by_key[race.key] = RaceReport(key=race.key)
                    report.witnesses.append(race)

        for report in by_key.values():
            live = [w for w in report.witnesses if w.filtered_by is None]
            if live:
                report.witnesses = live + [
                    w for w in report.witnesses if w.filtered_by is not None
                ]
                report.race_class = self._classify(live[0])
                result.reports.append(report)
            else:
                result.filtered_reports.append(report)
        result.reports.sort(key=lambda r: str(r.key))
        result.filtered_reports.sort(key=lambda r: str(r.key))
        return result

    # ------------------------------------------------------------------

    def _check_pair(
        self, use: Use, free: PointerWrite, address: Address
    ) -> Optional[UseFreeRace]:
        """A :class:`UseFreeRace` if the pair is concurrent, else None."""
        if use.task == free.task:
            return None  # ordered by the task's program order
        if not self.hb.concurrent(use.read_index, free.index):
            return None
        if self.options.lockset_filter:
            accesses = self.accesses
            if accesses.lockset(use.read_index) & accesses.lockset(free.index):
                return None  # mutually excluded by a common lock
        race = UseFreeRace(use=use, free=free, address=address)
        if self._same_looper_events(use.task, free.task):
            if self.options.if_guard and use_is_guarded(self.accesses, use):
                race.filtered_by = "if-guard"
            elif self.options.intra_event_allocation and (
                free_has_intra_event_realloc(self.accesses, free)
                or use_has_intra_event_alloc(self.accesses, use)
            ):
                race.filtered_by = "intra-event-allocation"
        return race

    def _same_looper_events(self, task_a: str, task_b: str) -> bool:
        tasks = self.trace.tasks
        info_a, info_b = tasks.get(task_a), tasks.get(task_b)
        return (
            info_a is not None
            and info_b is not None
            and info_a.task_kind is TaskKind.EVENT
            and info_b.task_kind is TaskKind.EVENT
            and info_a.looper is not None
            and info_a.looper == info_b.looper
        )

    def _classify(self, race: UseFreeRace) -> RaceClass:
        if self._same_looper_events(race.use.task, race.free.task):
            return RaceClass.INTRA_THREAD
        if self.conventional_hb.concurrent(race.use.read_index, race.free.index):
            return RaceClass.CONVENTIONAL
        return RaceClass.INTER_THREAD


def detect_use_free_races(
    trace: Trace, options: Optional[DetectorOptions] = None
) -> DetectionResult:
    """Convenience one-shot entry point."""
    return UseFreeDetector(trace, options).detect()
