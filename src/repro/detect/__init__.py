"""Race detection (Section 4): the CAFA use-free detector with its two
pruning heuristics, plus the conventional and low-level baselines."""

from .accesses import (
    AccessExtractor,
    AccessIndex,
    Guard,
    PointerWrite,
    Use,
    extract_accesses,
)
from .heuristics import (
    branch_safe_region,
    free_has_intra_event_realloc,
    use_has_intra_event_alloc,
    use_is_guarded,
)
from .lowlevel import (
    LowLevelDetector,
    LowLevelResult,
    detect_low_level_races,
)
from .report import (
    ExpectedRace,
    MemoryRace,
    RaceClass,
    RaceReport,
    RaceSiteKey,
    UseFreeRace,
    Verdict,
)
from .sampling import (
    DEFAULT_BUDGET,
    DEFAULT_CHAIN_DEPTH,
    SampleProfile,
    SampledDetector,
    SampledResult,
    SamplerOptions,
    detect_sampled,
)
from .usefree import (
    DetectionResult,
    DetectorOptions,
    UseFreeDetector,
    detect_use_free_races,
)

__all__ = [
    "AccessExtractor",
    "AccessIndex",
    "DEFAULT_BUDGET",
    "DEFAULT_CHAIN_DEPTH",
    "DetectionResult",
    "DetectorOptions",
    "ExpectedRace",
    "Guard",
    "LowLevelDetector",
    "LowLevelResult",
    "MemoryRace",
    "PointerWrite",
    "RaceClass",
    "RaceReport",
    "RaceSiteKey",
    "SampleProfile",
    "SampledDetector",
    "SampledResult",
    "SamplerOptions",
    "Use",
    "UseFreeDetector",
    "UseFreeRace",
    "Verdict",
    "branch_safe_region",
    "detect_low_level_races",
    "detect_sampled",
    "detect_use_free_races",
    "extract_accesses",
    "free_has_intra_event_realloc",
    "use_has_intra_event_alloc",
    "use_is_guarded",
]
