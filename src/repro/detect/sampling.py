"""Sampled use-free detection: bounded-work triage for trace corpora.

Full detection pays the happens-before closure build on *every* trace,
which dominates per-trace cost even after the fast-query work of PRs
1–5 (on the stock apps the closure is ~90% of the analysis wall time).
For corpus-scale throughput that cost is only worth paying on the few
traces that actually race — the job of this module is to decide, under
a fixed per-trace budget, *whether a trace deserves full detection*.

The sampler draws a seeded random sample of (use, free) pairs from the
columnar :class:`~repro.detect.accesses.AccessIndex` per-address maps
and pushes each sampled pair through three **no-closure screens** on
raw trace columns:

* **same-task** — ordered by program order (the detector's own
  pre-filter);
* **lockset** — protected by a common lock (Section 3.2), honoured
  exactly when the wrapped :class:`DetectorOptions` enable it;
* **causal birth chain** — a sound *under-approximation* of
  happens-before built from program order plus task-birth edges
  (``fork -> begin``, ``send -> begin``): walking one op's task-birth
  chain and landing in the other op's task after that op proves the
  pair ordered.  The walk is bounded by ``chain_depth`` and never
  builds a closure.

Every screen only ever *discards* pairs the full model provably orders
or filters, so a screened-out pair can never be a race the batch
detector would report: the surviving *suspects* over-approximate the
sampled racy pairs, and a trace is **flagged** exactly when a suspect
survives.  Recall is therefore limited only by the sampling budget
(a racy pair that is sampled is always a suspect); screen quality
affects precision alone.

With ``confirm=True`` the sampler additionally builds happens-before
*lazily* — only when suspects exist — answers them in one budgeted
:meth:`~repro.hb.graph.HappensBefore.concurrent_pairs` batch, and
applies the same-looper heuristics the batch detector applies.  A
confirmed pair is by construction a live witness of full detection, so
**sampled races are always a subset of full-detection races** (the
property pinned by ``tests/test_property_sampling.py``).

See ``docs/sampling.md`` for budget semantics and the recorded
precision/recall-vs-budget curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Tuple

from ..hb import QueryBudget, build_happens_before
from ..trace import Address, OpKind, TaskKind, Trace
from .accesses import AccessIndex, PointerWrite, Use, extract_accesses
from .heuristics import (
    free_has_intra_event_realloc,
    use_has_intra_event_alloc,
    use_is_guarded,
)
from .report import RaceReport, RaceSiteKey, UseFreeRace
from .usefree import DetectorOptions

#: default per-trace allowance of sampled pair inspections
DEFAULT_BUDGET = 512

#: default bound on the causal-birth-chain walk
DEFAULT_CHAIN_DEPTH = 64


@dataclass(frozen=True)
class SamplerOptions:
    """Knobs of the sampled detector.

    ``budget`` caps how many (use, free) pairs one trace may inspect;
    when the population fits the budget the sample is exhaustive,
    otherwise ``seed`` drives a deterministic ``random.Random`` draw.
    ``confirm`` selects the lazy-HB confirmation pass (triage leaves it
    off — escalation re-runs full detection anyway).  ``detector``
    carries the wrapped full-detection options so the screens honour
    the same lockset/heuristic switches.
    """

    budget: int = DEFAULT_BUDGET
    seed: int = 0
    confirm: bool = False
    chain_depth: int = DEFAULT_CHAIN_DEPTH
    detector: DetectorOptions = DetectorOptions()


@dataclass
class SampleProfile:
    """Counters of one sampled-detection run (``repro stats`` section
    ``sampling``; field names are the JSON schema)."""

    budget: int = 0
    seed: int = 0
    #: size of the full (use, free) pair population
    pairs_population: int = 0
    #: pairs actually drawn (== population when exhaustive)
    pairs_sampled: int = 0
    #: True when every population pair was inspected
    exhaustive: bool = False
    screened_same_task: int = 0
    screened_lockset: int = 0
    #: pairs the causal-birth-chain under-approximation proved ordered
    screened_order: int = 0
    #: sampled pairs surviving every screen
    suspects: int = 0
    #: 1 when the confirm pass built a happens-before relation
    hb_built: int = 0
    #: suspects answered through the budgeted concurrent_pairs batch
    pairs_queried: int = 0
    #: confirmed-concurrent witnesses surviving the heuristics
    confirmed: int = 0
    #: confirmed-concurrent witnesses pruned by a heuristic
    heuristic_filtered: int = 0
    #: the triage verdict: does this trace deserve full detection?
    flagged: bool = False

    def format(self) -> str:
        lines = ["sampling profile:"]
        lines.append(f"  budget               {self.budget:>12}")
        lines.append(f"  seed                 {self.seed:>12}")
        lines.append(f"  pair population      {self.pairs_population:>12}")
        sampled = f"{self.pairs_sampled}" + (
            " (exhaustive)" if self.exhaustive else ""
        )
        lines.append(f"  pairs sampled        {sampled:>12}")
        lines.append(f"  screened same-task   {self.screened_same_task:>12}")
        lines.append(f"  screened lockset     {self.screened_lockset:>12}")
        lines.append(f"  screened ordered     {self.screened_order:>12}")
        lines.append(f"  suspects             {self.suspects:>12}")
        if self.hb_built:
            lines.append(f"  pairs queried        {self.pairs_queried:>12}")
            lines.append(f"  confirmed            {self.confirmed:>12}")
            lines.append(
                f"  heuristic filtered   {self.heuristic_filtered:>12}"
            )
        lines.append(f"  flagged              {str(self.flagged):>12}")
        return "\n".join(lines)


@dataclass
class SampledResult:
    """What one sampled run produced."""

    trace: Trace
    options: SamplerOptions
    profile: SampleProfile
    #: sampled pairs that survived every screen
    suspects: List[Tuple[Use, PointerWrite, Address]] = dataclass_field(
        default_factory=list
    )
    #: confirmed races (``confirm=True`` only); always a subset of the
    #: full detector's reports for the same trace and options
    races: List[RaceReport] = dataclass_field(default_factory=list)

    @property
    def flagged(self) -> bool:
        return self.profile.flagged


class _BirthChains:
    """Task-birth edges recovered in one linear pass over the rare
    FORK/SEND kinds: ``births[task] = (parent_task, birth_op_index)``.

    A task born more than once (which the runtime never produces) is
    dropped from the map — the screen then simply fails to prove
    ordering, which is the sound direction.
    """

    _BIRTH_KINDS = (OpKind.FORK, OpKind.SEND, OpKind.SEND_AT_FRONT)

    def __init__(self, trace: Trace, depth: int) -> None:
        self.depth = depth
        births: Dict[str, Tuple[str, int]] = {}
        ambiguous = set()
        store = trace.store
        if store is not None:
            indices = store.indices_of(*self._BIRTH_KINDS)
        else:
            indices = [
                i
                for i, op in enumerate(trace.ops)
                if op.kind in self._BIRTH_KINDS
            ]
        for i in indices:
            op = trace[i]
            child = op.child if op.kind is OpKind.FORK else op.event
            if child in births or child in ambiguous:
                ambiguous.add(child)
                births.pop(child, None)
                continue
            births[child] = (op.task, i)
        self.births = births

    def ordered(self, i: int, task_i: str, j: int, task_j: str) -> bool:
        """True only when op ``i`` provably happens-before op ``j``.

        Walks ``task_j``'s birth chain: each birth op happens-before
        every op of the task it creates (fork/send -> begin -> program
        order), so landing in ``task_i`` at a position after ``i``
        proves ``i < j`` by transitivity.  Returning False proves
        nothing — the under-approximation direction.
        """
        if task_i == task_j:
            return i < j
        current = task_j
        for _ in range(self.depth):
            birth = self.births.get(current)
            if birth is None:
                return False
            parent, birth_index = birth
            if parent == task_i:
                return i < birth_index
            current = parent
        return False


def _same_looper_events(trace: Trace, task_a: str, task_b: str) -> bool:
    tasks = trace.tasks
    info_a, info_b = tasks.get(task_a), tasks.get(task_b)
    return (
        info_a is not None
        and info_b is not None
        and info_a.task_kind is TaskKind.EVENT
        and info_b.task_kind is TaskKind.EVENT
        and info_a.looper is not None
        and info_a.looper == info_b.looper
    )


class SampledDetector:
    """See the module docstring."""

    def __init__(
        self,
        trace: Trace,
        options: Optional[SamplerOptions] = None,
        accesses: Optional[AccessIndex] = None,
    ) -> None:
        self.trace = trace
        self.options = options or SamplerOptions()
        self._accesses = accesses

    @property
    def accesses(self) -> AccessIndex:
        if self._accesses is None:
            self._accesses = extract_accesses(self.trace)
        return self._accesses

    def detect(self) -> SampledResult:
        options = self.options
        accesses = self.accesses
        profile = SampleProfile(budget=options.budget, seed=options.seed)
        result = SampledResult(
            trace=self.trace, options=options, profile=profile
        )

        # The pair population, in the deterministic order the batch
        # detector's stage 1 enumerates it (address by first free, then
        # use order, then free order).
        population: List[Tuple[Use, PointerWrite, Address]] = []
        uses_by_address = accesses.uses_by_address()
        for address, frees in accesses.frees_by_address().items():
            uses = uses_by_address.get(address)
            if not uses:
                continue
            for use in uses:
                for free in frees:
                    population.append((use, free, address))
        profile.pairs_population = len(population)

        if len(population) <= options.budget:
            sampled = population
            profile.exhaustive = True
        else:
            rng = random.Random(options.seed)
            sampled = rng.sample(population, options.budget)
        profile.pairs_sampled = len(sampled)

        chains = _BirthChains(self.trace, options.chain_depth)
        detector_options = options.detector
        suspects = result.suspects
        for use, free, address in sampled:
            if use.task == free.task:
                profile.screened_same_task += 1
                continue
            if detector_options.lockset_filter and (
                accesses.lockset(use.read_index)
                & accesses.lockset(free.index)
            ):
                profile.screened_lockset += 1
                continue
            if chains.ordered(
                use.read_index, use.task, free.index, free.task
            ) or chains.ordered(
                free.index, free.task, use.read_index, use.task
            ):
                profile.screened_order += 1
                continue
            suspects.append((use, free, address))
        profile.suspects = len(suspects)

        if options.confirm and suspects:
            self._confirm(result)
        profile.flagged = (
            bool(result.races) if options.confirm else bool(suspects)
        )
        return result

    def _confirm(self, result: SampledResult) -> None:
        """The lazy-HB confirmation pass: the batch detector's stages
        2–3 over the suspects alone, so every emitted race maps onto a
        live witness of full detection."""
        options = self.options.detector
        profile = result.profile
        accesses = self.accesses
        hb = build_happens_before(
            self.trace,
            options.model,
            fast_queries=options.fast_queries,
            memo_capacity=options.memo_capacity,
            dense_bits=options.dense_bits,
        )
        profile.hb_built = 1
        budget = QueryBudget(limit=len(result.suspects))
        verdicts = hb.concurrent_pairs(
            ((use.read_index, free.index) for use, free, _ in result.suspects),
            budget=budget,
        )
        profile.pairs_queried = budget.spent
        by_key: Dict[RaceSiteKey, RaceReport] = {}
        for (use, free, address), concurrent in zip(result.suspects, verdicts):
            if not concurrent:
                continue
            if _same_looper_events(self.trace, use.task, free.task):
                if options.if_guard and use_is_guarded(accesses, use):
                    profile.heuristic_filtered += 1
                    continue
                if options.intra_event_allocation and (
                    free_has_intra_event_realloc(accesses, free)
                    or use_has_intra_event_alloc(accesses, use)
                ):
                    profile.heuristic_filtered += 1
                    continue
            race = UseFreeRace(use=use, free=free, address=address)
            report = by_key.get(race.key)
            if report is None:
                report = by_key[race.key] = RaceReport(key=race.key)
            report.witnesses.append(race)
            profile.confirmed += 1
        result.races = sorted(by_key.values(), key=lambda r: str(r.key))


def detect_sampled(
    trace: Trace,
    options: Optional[SamplerOptions] = None,
    accesses: Optional[AccessIndex] = None,
) -> SampledResult:
    """Convenience one-shot entry point."""
    return SampledDetector(trace, options, accesses).detect()
