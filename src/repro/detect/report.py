"""Race report datatypes and ground-truth vocabulary.

Table 1 of the paper classifies each reported use-free race as:

* a **true race** leading to a use-after-free violation —
  (a) *intra-thread*: between two events of the same looper thread;
  (b) *inter-thread*: between threads but invisible to a conventional
  detector (it orders the looper's events totally, hiding the race);
  (c) *conventional*: between threads and detectable conventionally;
* or a **false positive** —
  Type I: a missing happens-before edge for an uninstrumented event
  listener; Type II: a benign (commutative) race the two heuristics
  fail to prove safe; Type III: a dereference matched to the wrong
  pointer read.

The (a)/(b)/(c) split is *computed* by the detector from the two
happens-before models; harmfulness and false-positive type come from
the workload's ground-truth annotations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..trace import Address
from .accesses import PointerWrite, Use


class RaceClass(enum.Enum):
    """Which Table 1 true-race column a race falls into."""

    INTRA_THREAD = "a"
    INTER_THREAD = "b"
    CONVENTIONAL = "c"


class Verdict(enum.Enum):
    """Ground-truth label of an expected race report."""

    HARMFUL = "harmful"
    FP_TYPE_I = "fp-1"
    FP_TYPE_II = "fp-2"
    FP_TYPE_III = "fp-3"


@dataclass(frozen=True)
class RaceSiteKey:
    """The static identity of a use-free race (deduplication key)."""

    use_method: str
    use_pc: int
    free_method: str
    free_pc: int
    field: str

    def __str__(self) -> str:
        return (
            f"use {self.use_method}:{self.use_pc} / "
            f"free {self.free_method}:{self.free_pc} on .{self.field}"
        )


@dataclass
class UseFreeRace:
    """One dynamic racy (use, free) pair."""

    use: Use
    free: PointerWrite
    address: Address
    #: name of the heuristic that filtered this pair, or None if racy
    filtered_by: Optional[str] = None

    @property
    def key(self) -> RaceSiteKey:
        return RaceSiteKey(
            use_method=self.use.method,
            use_pc=self.use.read_pc,
            free_method=self.free.method,
            free_pc=self.free.pc,
            field=str(self.address[2]),
        )


@dataclass
class RaceReport:
    """A deduplicated static race report with its dynamic witnesses."""

    key: RaceSiteKey
    witnesses: List[UseFreeRace] = field(default_factory=list)
    race_class: Optional[RaceClass] = None
    #: ground-truth verdict, filled in by the evaluation pipeline
    verdict: Optional[Verdict] = None

    @property
    def dynamic_count(self) -> int:
        return len(self.witnesses)

    def witness(self) -> UseFreeRace:
        return self.witnesses[0]

    def __str__(self) -> str:
        cls = f" [{self.race_class.value}]" if self.race_class else ""
        return f"use-free race{cls}: {self.key} ({self.dynamic_count} dynamic)"


@dataclass(frozen=True)
class ExpectedRace:
    """A ground-truth annotation provided by a workload.

    Matched against reports by (field, use method, free method); pcs
    are implementation details of the synthetic handlers.
    """

    field: str
    use_method: str
    free_method: str
    verdict: Verdict
    note: str = ""

    def matches(self, key: RaceSiteKey) -> bool:
        return (
            self.field == key.field
            and self.use_method == key.use_method
            and self.free_method == key.free_method
        )


@dataclass(frozen=True)
class MemoryRace:
    """A conventional read-write / write-write race (the low-level
    baseline of Section 4.1)."""

    var_class: str
    site_a: str
    site_b: str
    write_write: bool
