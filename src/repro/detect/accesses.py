"""Reconstruction of high-level accesses from low-level trace records.

The instrumented interpreter logs pointer reads, pointer writes,
dereferences, and guarded branches (Section 5.3).  The offline analyzer
recovers from these:

* **uses** — a pointer read whose value is later dereferenced.  A
  dereference record is matched with its *nearest previous* pointer
  read in the same task that yielded the same object id (the paper's
  heuristic; it is neither sound nor complete, which is the source of
  Type III false positives).
* **frees** — pointer writes of null; **allocations** — pointer writes
  of a reference.
* **guards** — branch records, matched to the pointer they test with
  the same nearest-previous-read heuristic.
* **locksets** — the set of locks held at each operation, reconstructed
  per task from acquire/release records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..trace import (
    Acquire,
    Address,
    Branch,
    Deref,
    OpKind,
    PtrRead,
    PtrWrite,
    Release,
    Trace,
)
from ..trace.store import KIND_CODES


@dataclass
class Use:
    """A pointer read later dereferenced (Section 4.1)."""

    read_index: int
    address: Address
    object_id: Optional[int]
    method: str
    read_pc: int
    task: str
    #: indices of the dereference records matched to this read
    deref_indices: List[int] = field(default_factory=list)

    @property
    def site(self) -> Tuple[str, int]:
        """Static location of the use (method, pc of the pointer read)."""
        return (self.method, self.read_pc)


@dataclass
class PointerWrite:
    """A free (null write) or allocation (reference write)."""

    index: int
    address: Address
    value: Optional[int]
    method: str
    pc: int
    task: str

    @property
    def is_free(self) -> bool:
        return self.value is None

    @property
    def site(self) -> Tuple[str, int]:
        return (self.method, self.pc)


@dataclass
class Guard:
    """A logged branch certifying a pointer non-null, matched to the
    pointer read it tests."""

    index: int
    address: Optional[Address]
    method: str
    pc: int
    target: int
    task: str


@dataclass
class AccessIndex:
    """All recovered accesses of a trace, grouped for the detectors."""

    trace: Trace
    uses: List[Use] = field(default_factory=list)
    frees: List[PointerWrite] = field(default_factory=list)
    allocs: List[PointerWrite] = field(default_factory=list)
    guards: List[Guard] = field(default_factory=list)
    #: op index -> frozenset of held lock names
    locksets: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    # lazy per-address groupings (built on first access, after the
    # extraction pass has fully populated the lists above)
    _uses_by_address: Optional[Dict[Address, List[Use]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _frees_by_address: Optional[Dict[Address, List[PointerWrite]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def uses_by_address(self) -> Dict[Address, List[Use]]:
        """Uses grouped per address, in trace order (cached).

        Keys appear in the order their first use appears in ``uses``.
        Callers must treat the mapping and its lists as read-only.
        """
        if self._uses_by_address is None:
            grouped: Dict[Address, List[Use]] = {}
            for use in self.uses:
                grouped.setdefault(use.address, []).append(use)
            self._uses_by_address = grouped
        return self._uses_by_address

    def frees_by_address(self) -> Dict[Address, List[PointerWrite]]:
        """Frees grouped per address, in trace order (cached)."""
        if self._frees_by_address is None:
            grouped: Dict[Address, List[PointerWrite]] = {}
            for free in self.frees:
                grouped.setdefault(free.address, []).append(free)
            self._frees_by_address = grouped
        return self._frees_by_address

    def uses_of(self, address: Address) -> List[Use]:
        return list(self.uses_by_address().get(address, ()))

    def frees_of(self, address: Address) -> List[PointerWrite]:
        return list(self.frees_by_address().get(address, ()))

    def lockset(self, op_index: int) -> FrozenSet[str]:
        return self.locksets.get(op_index, frozenset())


#: how far back (in same-task pointer reads) the deref matcher looks
MATCH_WINDOW = 64


#: the only operation kinds the extraction pass reads — on the
#: columnar backend every other kind is skipped without materialization
_EXTRACT_KINDS = (
    OpKind.ACQUIRE,
    OpKind.RELEASE,
    OpKind.READ,
    OpKind.WRITE,
    OpKind.PTR_READ,
    OpKind.PTR_WRITE,
    OpKind.DEREF,
    OpKind.BRANCH,
)


def extract_accesses(trace: Trace) -> AccessIndex:
    """Recover uses, frees, allocations, guards, and locksets.

    On the columnar backend only the kinds carrying access facts are
    materialized (merged per-kind index walk); the legacy object path
    scans every operation.  Both record lockset snapshots at access
    and lock operations — the only indices the detectors query.
    """
    index = AccessIndex(trace=trace)
    # Per-task rolling history of pointer reads for the matcher, and the
    # Use objects already created per read op index.
    read_history: Dict[str, List[PtrRead]] = {}
    read_op_index: Dict[str, List[int]] = {}
    use_by_read: Dict[int, Use] = {}
    held: Dict[str, set] = {}

    def step(i: int, op, task: str) -> None:
        if isinstance(op, Acquire):
            held.setdefault(task, set()).add(op.lock)
        elif isinstance(op, Release):
            held.setdefault(task, set()).discard(op.lock)
        current_locks = held.get(task)
        if current_locks:
            index.locksets[i] = frozenset(current_locks)

        if isinstance(op, PtrRead):
            read_history.setdefault(task, []).append(op)
            read_op_index.setdefault(task, []).append(i)
            if len(read_history[task]) > MATCH_WINDOW:
                read_history[task].pop(0)
                read_op_index[task].pop(0)
        elif isinstance(op, PtrWrite):
            record = PointerWrite(
                index=i,
                address=op.address,
                value=op.value,
                method=op.method,
                pc=op.pc,
                task=task,
            )
            if record.is_free:
                index.frees.append(record)
            else:
                index.allocs.append(record)
        elif isinstance(op, Deref):
            matched = _match_nearest_read(
                read_history.get(task, ()), read_op_index.get(task, ()), op.object_id
            )
            if matched is None:
                return
            read_op, read_idx = matched
            use = use_by_read.get(read_idx)
            if use is None:
                use = Use(
                    read_index=read_idx,
                    address=read_op.address,
                    object_id=read_op.object_id,
                    method=read_op.method,
                    read_pc=read_op.pc,
                    task=task,
                )
                use_by_read[read_idx] = use
                index.uses.append(use)
            use.deref_indices.append(i)
        elif isinstance(op, Branch):
            matched = _match_nearest_read(
                read_history.get(task, ()), read_op_index.get(task, ()), op.object_id
            )
            index.guards.append(
                Guard(
                    index=i,
                    address=matched[0].address if matched else None,
                    method=op.method,
                    pc=op.pc,
                    target=op.target,
                    task=task,
                )
            )

    store = trace.store
    if store is None:
        for i, op in enumerate(trace.ops):
            step(i, op, op.task)
        return index
    kinds = store.kinds
    task_of = store.task_of
    op_of = store.op
    read_c, write_c = KIND_CODES[OpKind.READ], KIND_CODES[OpKind.WRITE]
    for i in store.indices_of(*_EXTRACT_KINDS):
        code = kinds[i]
        if code == read_c or code == write_c:
            # High-level reads/writes only need their lockset snapshot;
            # skip materializing the (dense) operation records.
            current_locks = held.get(task_of(i))
            if current_locks:
                index.locksets[i] = frozenset(current_locks)
            continue
        step(i, op_of(i), task_of(i))
    return index


def _match_nearest_read(history, indices, object_id):
    """The nearest previous pointer read yielding ``object_id``."""
    if object_id is None:
        return None
    for read_op, read_idx in zip(reversed(history), reversed(indices)):
        if read_op.object_id == object_id:
            return read_op, read_idx
    return None
