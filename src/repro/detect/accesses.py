"""Reconstruction of high-level accesses from low-level trace records.

The instrumented interpreter logs pointer reads, pointer writes,
dereferences, and guarded branches (Section 5.3).  The offline analyzer
recovers from these:

* **uses** — a pointer read whose value is later dereferenced.  A
  dereference record is matched with its *nearest previous* pointer
  read in the same task that yielded the same object id (the paper's
  heuristic; it is neither sound nor complete, which is the source of
  Type III false positives).
* **frees** — pointer writes of null; **allocations** — pointer writes
  of a reference.
* **guards** — branch records, matched to the pointer they test with
  the same nearest-previous-read heuristic.
* **locksets** — the set of locks held at each operation, reconstructed
  per task from acquire/release records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..trace import (
    Acquire,
    Address,
    Branch,
    Deref,
    OpKind,
    PtrRead,
    PtrWrite,
    Release,
    Trace,
)
from ..trace.store import KIND_LIST


@dataclass
class Use:
    """A pointer read later dereferenced (Section 4.1)."""

    read_index: int
    address: Address
    object_id: Optional[int]
    method: str
    read_pc: int
    task: str
    #: indices of the dereference records matched to this read
    deref_indices: List[int] = field(default_factory=list)

    @property
    def site(self) -> Tuple[str, int]:
        """Static location of the use (method, pc of the pointer read)."""
        return (self.method, self.read_pc)


@dataclass
class PointerWrite:
    """A free (null write) or allocation (reference write)."""

    index: int
    address: Address
    value: Optional[int]
    method: str
    pc: int
    task: str

    @property
    def is_free(self) -> bool:
        return self.value is None

    @property
    def site(self) -> Tuple[str, int]:
        return (self.method, self.pc)


@dataclass
class Guard:
    """A logged branch certifying a pointer non-null, matched to the
    pointer read it tests."""

    index: int
    address: Optional[Address]
    method: str
    pc: int
    target: int
    task: str


@dataclass
class AccessIndex:
    """All recovered accesses of a trace, grouped for the detectors."""

    trace: Trace
    uses: List[Use] = field(default_factory=list)
    frees: List[PointerWrite] = field(default_factory=list)
    allocs: List[PointerWrite] = field(default_factory=list)
    guards: List[Guard] = field(default_factory=list)
    #: op index -> frozenset of held lock names
    locksets: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    # lazy per-address groupings (built on first access, after the
    # extraction pass has fully populated the lists above)
    _uses_by_address: Optional[Dict[Address, List[Use]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _frees_by_address: Optional[Dict[Address, List[PointerWrite]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def uses_by_address(self) -> Dict[Address, List[Use]]:
        """Uses grouped per address, in trace order (cached).

        Keys appear in the order their first use appears in ``uses``.
        Callers must treat the mapping and its lists as read-only.
        """
        if self._uses_by_address is None:
            grouped: Dict[Address, List[Use]] = {}
            for use in self.uses:
                grouped.setdefault(use.address, []).append(use)
            self._uses_by_address = grouped
        return self._uses_by_address

    def frees_by_address(self) -> Dict[Address, List[PointerWrite]]:
        """Frees grouped per address, in trace order (cached)."""
        if self._frees_by_address is None:
            grouped: Dict[Address, List[PointerWrite]] = {}
            for free in self.frees:
                grouped.setdefault(free.address, []).append(free)
            self._frees_by_address = grouped
        return self._frees_by_address

    def uses_of(self, address: Address) -> List[Use]:
        return list(self.uses_by_address().get(address, ()))

    def frees_of(self, address: Address) -> List[PointerWrite]:
        return list(self.frees_by_address().get(address, ()))

    def lockset(self, op_index: int) -> FrozenSet[str]:
        return self.locksets.get(op_index, frozenset())


#: how far back (in same-task pointer reads) the deref matcher looks
MATCH_WINDOW = 64


#: the only operation kinds the extraction pass reads — on the
#: columnar backend every other kind is skipped without materialization
_EXTRACT_KINDS = (
    OpKind.ACQUIRE,
    OpKind.RELEASE,
    OpKind.READ,
    OpKind.WRITE,
    OpKind.PTR_READ,
    OpKind.PTR_WRITE,
    OpKind.DEREF,
    OpKind.BRANCH,
)


_EXTRACT_KIND_SET = frozenset(_EXTRACT_KINDS)


class AccessExtractor:
    """Incremental access recovery: the extraction pass as an object.

    Holds the rolling per-task matcher state (read windows, held
    locks, uses already created per read) so ops can be fed one at a
    time as they arrive — the streaming service's driver.
    :func:`extract_accesses` is the one-shot batch wrapper over the
    same code, so both modes recover byte-identical access sets.

    :meth:`feed` accepts ops of any kind and skips the ones the pass
    does not read.  :meth:`index` snapshots an :class:`AccessIndex`
    over the *live* lists; each call returns a fresh instance so the
    lazy per-address groupings are rebuilt rather than served stale.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.uses: List[Use] = []
        self.frees: List[PointerWrite] = []
        self.allocs: List[PointerWrite] = []
        self.guards: List[Guard] = []
        self.locksets: Dict[int, FrozenSet[str]] = {}
        self._read_history: Dict[str, List[PtrRead]] = {}
        self._read_op_index: Dict[str, List[int]] = {}
        self._use_by_read: Dict[int, Use] = {}
        self._held: Dict[str, set] = {}

    def feed(self, i: int, op=None) -> None:
        """Process op ``i``; non-access kinds are no-ops.

        On the columnar backend the kind is read from the store's int
        column, so skipped and high-level read/write ops are never
        materialized; pass ``op`` when it is already at hand.
        """
        store = self.trace.store
        if op is None and store is not None:
            kind = KIND_LIST[store.kinds[i]]
        else:
            if op is None:
                op = self.trace[i]
            kind = op.kind
        if kind not in _EXTRACT_KIND_SET:
            return
        if kind is OpKind.READ or kind is OpKind.WRITE:
            # High-level reads/writes only need their lockset snapshot.
            task = op.task if op is not None else store.task_of(i)
            current_locks = self._held.get(task)
            if current_locks:
                self.locksets[i] = frozenset(current_locks)
            return
        if op is None:
            op = store.op(i)
        self._step(i, op, op.task)

    def _step(self, i: int, op, task: str) -> None:
        if isinstance(op, Acquire):
            self._held.setdefault(task, set()).add(op.lock)
        elif isinstance(op, Release):
            self._held.setdefault(task, set()).discard(op.lock)
        current_locks = self._held.get(task)
        if current_locks:
            self.locksets[i] = frozenset(current_locks)

        if isinstance(op, PtrRead):
            history = self._read_history.setdefault(task, [])
            history.append(op)
            self._read_op_index.setdefault(task, []).append(i)
            if len(history) > MATCH_WINDOW:
                history.pop(0)
                self._read_op_index[task].pop(0)
        elif isinstance(op, PtrWrite):
            record = PointerWrite(
                index=i,
                address=op.address,
                value=op.value,
                method=op.method,
                pc=op.pc,
                task=task,
            )
            if record.is_free:
                self.frees.append(record)
            else:
                self.allocs.append(record)
        elif isinstance(op, Deref):
            matched = _match_nearest_read(
                self._read_history.get(task, ()),
                self._read_op_index.get(task, ()),
                op.object_id,
            )
            if matched is None:
                return
            read_op, read_idx = matched
            use = self._use_by_read.get(read_idx)
            if use is None:
                use = Use(
                    read_index=read_idx,
                    address=read_op.address,
                    object_id=read_op.object_id,
                    method=read_op.method,
                    read_pc=read_op.pc,
                    task=task,
                )
                self._use_by_read[read_idx] = use
                self.uses.append(use)
            use.deref_indices.append(i)
        elif isinstance(op, Branch):
            matched = _match_nearest_read(
                self._read_history.get(task, ()),
                self._read_op_index.get(task, ()),
                op.object_id,
            )
            self.guards.append(
                Guard(
                    index=i,
                    address=matched[0].address if matched else None,
                    method=op.method,
                    pc=op.pc,
                    target=op.target,
                    task=task,
                )
            )

    def index(self) -> AccessIndex:
        """An :class:`AccessIndex` over the accesses recovered so far.

        The lists are shared by reference with the extractor (they keep
        growing as more ops are fed); the per-address groupings are
        lazy on the returned instance, so take a fresh snapshot after
        feeding rather than reusing an old one.
        """
        return AccessIndex(
            trace=self.trace,
            uses=self.uses,
            frees=self.frees,
            allocs=self.allocs,
            guards=self.guards,
            locksets=self.locksets,
        )


def extract_accesses(trace: Trace) -> AccessIndex:
    """Recover uses, frees, allocations, guards, and locksets.

    On the columnar backend only the kinds carrying access facts are
    materialized (merged per-kind index walk); the legacy object path
    scans every operation.  Both record lockset snapshots at access
    and lock operations — the only indices the detectors query.
    """
    extractor = AccessExtractor(trace)
    store = trace.store
    if store is None:
        for i, op in enumerate(trace.ops):
            extractor._step(i, op, op.task)
        return extractor.index()
    for i in store.indices_of(*_EXTRACT_KINDS):
        extractor.feed(i)
    return extractor.index()


def _match_nearest_read(history, indices, object_id):
    """The nearest previous pointer read yielding ``object_id``."""
    if object_id is None:
        return None
    for read_op, read_idx in zip(reversed(history), reversed(indices)):
        if read_op.object_id == object_id:
            return read_op, read_idx
    return None
