"""The naive low-level race detector — the motivation baseline.

Section 4.1: applying the conventional data-race definition (a pair of
conflicting memory accesses not ordered by happens-before) directly to
an event-driven trace "leads to thousands of false positives" — 1,664
races in a 30-second ConnectBot trace.  This module implements exactly
that definition over the relaxed event-driven model, so the benchmark
can reproduce the contrast with CAFA's handful of reports.

Accesses considered: the shared-variable ``rd``/``wr`` records and all
pointer reads/writes (assembly-level accesses).  Races are
deduplicated into static reports by the pair of program sites plus the
accessed location's *class* (field name rather than concrete object).

For tractability on event-dense traces, the detector groups dynamic
accesses by static site first and then samples a bounded number of
dynamic pairs per site pair when probing for concurrency; a site pair
is reported as racy as soon as one sampled pair is concurrent.  This
under-approximates pathological cases where only unsampled pairs race,
which is irrelevant for the baseline's purpose (its counts are three
orders of magnitude above CAFA's either way).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hb import CAFA_MODEL, HappensBefore, ModelConfig, build_happens_before
from ..trace import PtrRead, PtrWrite, Read, Trace, Write
from .accesses import AccessIndex, extract_accesses
from .report import MemoryRace

#: dynamic pairs sampled per static site pair
SAMPLES_PER_SIDE = 4


@dataclass(frozen=True)
class _Access:
    index: int
    task: str
    is_write: bool


@dataclass(frozen=True)
class _SiteKey:
    var: str
    var_class: str
    site: str
    is_write: bool


def _collect_sites(trace: Trace) -> Dict[_SiteKey, List[_Access]]:
    sites: Dict[_SiteKey, List[_Access]] = defaultdict(list)
    for i, op in enumerate(trace.ops):
        if isinstance(op, Read):
            key = _SiteKey(op.var, op.var, op.site, False)
        elif isinstance(op, Write):
            key = _SiteKey(op.var, op.var, op.site, True)
        elif isinstance(op, PtrRead):
            key = _SiteKey(
                f"ptr:{op.address}", f"ptr:*.{op.address[2]}", f"{op.method}:{op.pc}", False
            )
        elif isinstance(op, PtrWrite):
            key = _SiteKey(
                f"ptr:{op.address}", f"ptr:*.{op.address[2]}", f"{op.method}:{op.pc}", True
            )
        else:
            continue
        sites[key].append(_Access(i, op.task, key.is_write))
    return sites


def _spread_sample(accesses: Sequence[_Access], k: int) -> List[_Access]:
    """Up to ``k`` accesses spread across the list (first/last/middles)."""
    if len(accesses) <= k:
        return list(accesses)
    step = (len(accesses) - 1) / (k - 1)
    return [accesses[round(i * step)] for i in range(k)]


@dataclass
class LowLevelResult:
    """Output of the naive detector."""

    races: List[MemoryRace]
    #: dynamic pairs actually probed for concurrency
    dynamic_pairs: int

    def race_count(self) -> int:
        return len(self.races)


class LowLevelDetector:
    """Conventional conflicting-access race detection on a trace."""

    def __init__(
        self,
        trace: Trace,
        model: ModelConfig = CAFA_MODEL,
        hb: Optional[HappensBefore] = None,
        accesses: Optional[AccessIndex] = None,
        lockset_filter: bool = True,
        samples_per_side: int = SAMPLES_PER_SIDE,
    ) -> None:
        self.trace = trace
        self.model = model
        self._hb = hb
        self.lockset_filter = lockset_filter
        self.samples_per_side = samples_per_side
        self._access_index = accesses

    @property
    def hb(self) -> HappensBefore:
        if self._hb is None:
            self._hb = build_happens_before(self.trace, self.model)
        return self._hb

    def detect(self) -> LowLevelResult:
        sites = _collect_sites(self.trace)
        lock_index = self._access_index or extract_accesses(self.trace)
        by_var: Dict[str, List[Tuple[_SiteKey, List[_Access]]]] = defaultdict(list)
        for key, accesses in sites.items():
            by_var[key.var].append((key, accesses))

        hb = self.hb
        races: List[MemoryRace] = []
        reported: set = set()
        dynamic_pairs = 0
        for var, var_sites in by_var.items():
            if not any(key.is_write for key, _ in var_sites):
                continue
            for i, (key_a, acc_a) in enumerate(var_sites):
                for key_b, acc_b in var_sites[i:]:
                    if not (key_a.is_write or key_b.is_write):
                        continue
                    pair_id = (
                        key_a.var_class,
                        *sorted((key_a.site, key_b.site)),
                        key_a.is_write and key_b.is_write,
                    )
                    if pair_id in reported:
                        continue
                    found = False
                    for a in _spread_sample(acc_a, self.samples_per_side):
                        if found:
                            break
                        for b in _spread_sample(acc_b, self.samples_per_side):
                            if a.index == b.index or a.task == b.task:
                                continue
                            dynamic_pairs += 1
                            if not hb.concurrent(a.index, b.index):
                                continue
                            if self.lockset_filter and (
                                lock_index.lockset(a.index)
                                & lock_index.lockset(b.index)
                            ):
                                continue
                            found = True
                            break
                    if found:
                        reported.add(pair_id)
                        sites_sorted = sorted((key_a.site, key_b.site))
                        races.append(
                            MemoryRace(
                                var_class=key_a.var_class,
                                site_a=sites_sorted[0],
                                site_b=sites_sorted[1],
                                write_write=key_a.is_write and key_b.is_write,
                            )
                        )
        races.sort(key=lambda r: (r.var_class, r.site_a, r.site_b))
        return LowLevelResult(races=races, dynamic_pairs=dynamic_pairs)


def detect_low_level_races(trace: Trace, model: ModelConfig = CAFA_MODEL) -> LowLevelResult:
    """Convenience one-shot entry point."""
    return LowLevelDetector(trace, model).detect()
