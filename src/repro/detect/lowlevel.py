"""The naive low-level race detector — the motivation baseline.

Section 4.1: applying the conventional data-race definition (a pair of
conflicting memory accesses not ordered by happens-before) directly to
an event-driven trace "leads to thousands of false positives" — 1,664
races in a 30-second ConnectBot trace.  This module implements exactly
that definition over the relaxed event-driven model, so the benchmark
can reproduce the contrast with CAFA's handful of reports.

Accesses considered: the shared-variable ``rd``/``wr`` records and all
pointer reads/writes (assembly-level accesses).  Races are
deduplicated into static reports by the pair of program sites plus the
accessed location's *class* (field name rather than concrete object).

For tractability on event-dense traces, the detector groups dynamic
accesses by static site first and then samples a bounded number of
dynamic pairs per site pair when probing for concurrency; a site pair
is reported as racy when any sampled pair is concurrent.  This
under-approximates pathological cases where only unsampled pairs race,
which is irrelevant for the baseline's purpose (its counts are three
orders of magnitude above CAFA's either way).

All sampled probes are answered through one
:meth:`~repro.hb.graph.HappensBefore.concurrent_pairs` batch (after
the cheaper same-task and lockset pre-filters), so the prefix-mask +
memo query path collapses the many probes that land on the same event
pair.  Site collection is cached on the detector, letting callers that
re-run detection (e.g. the benchmarks) separate indexing cost from
query cost.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hb import (
    CAFA_MODEL,
    DEFAULT_DENSE_BITS,
    HappensBefore,
    ModelConfig,
    build_happens_before,
)
from ..trace import OpKind, PtrRead, PtrWrite, Read, Trace, Write
from ..trace.store import KIND_CODES
from .accesses import AccessIndex, extract_accesses
from .report import MemoryRace

#: dynamic pairs sampled per static site pair
SAMPLES_PER_SIDE = 4


@dataclass(frozen=True)
class _Access:
    index: int
    task: str
    is_write: bool


@dataclass(frozen=True)
class _SiteKey:
    var: str
    var_class: str
    site: str
    is_write: bool


def _collect_sites(trace: Trace) -> Dict[_SiteKey, List[_Access]]:
    store = trace.store
    if store is not None:
        return _collect_sites_store(store)
    sites: Dict[_SiteKey, List[_Access]] = defaultdict(list)
    for i, op in enumerate(trace.ops):
        if isinstance(op, Read):
            key = _SiteKey(op.var, op.var, op.site, False)
        elif isinstance(op, Write):
            key = _SiteKey(op.var, op.var, op.site, True)
        elif isinstance(op, PtrRead):
            key = _SiteKey(
                f"ptr:{op.address}", f"ptr:*.{op.address[2]}", f"{op.method}:{op.pc}", False
            )
        elif isinstance(op, PtrWrite):
            key = _SiteKey(
                f"ptr:{op.address}", f"ptr:*.{op.address[2]}", f"{op.method}:{op.pc}", True
            )
        else:
            continue
        sites[key].append(_Access(i, op.task, key.is_write))
    return sites


def _collect_sites_store(store) -> Dict[_SiteKey, List[_Access]]:
    """Columnar site collection: decode the four access kinds straight
    from their payload columns, walking the merged index arrays so the
    dict insertion order — which seeds the detector's site-pair
    enumeration — matches the legacy full scan exactly."""
    sites: Dict[_SiteKey, List[_Access]] = defaultdict(list)
    sym = store.symbols.value
    addr = store.addresses.value
    kinds, rows, task_ids = store.kinds, store.rows, store.task_ids
    read_c = KIND_CODES[OpKind.READ]
    write_c = KIND_CODES[OpKind.WRITE]
    ptr_read_c = KIND_CODES[OpKind.PTR_READ]
    columns = {}
    for code, kind in (
        (read_c, OpKind.READ),
        (write_c, OpKind.WRITE),
        (ptr_read_c, OpKind.PTR_READ),
        (KIND_CODES[OpKind.PTR_WRITE], OpKind.PTR_WRITE),
    ):
        if kind in (OpKind.READ, OpKind.WRITE):
            columns[code] = (
                store.column(kind, "var")[1],
                store.column(kind, "site")[1],
            )
        else:
            columns[code] = (
                store.column(kind, "address")[1],
                store.column(kind, "method")[1],
                store.column(kind, "pc")[1],
            )
    for i in store.indices_of(
        OpKind.READ, OpKind.WRITE, OpKind.PTR_READ, OpKind.PTR_WRITE
    ):
        code = kinds[i]
        row = rows[i]
        if code == read_c or code == write_c:
            var_col, site_col = columns[code]
            var = sym(var_col[row])
            key = _SiteKey(var, var, sym(site_col[row]), code == write_c)
        else:
            addr_col, method_col, pc_col = columns[code]
            address = addr(addr_col[row])
            key = _SiteKey(
                f"ptr:{address}",
                f"ptr:*.{address[2]}",
                f"{sym(method_col[row])}:{pc_col[row]}",
                code != ptr_read_c,
            )
        sites[key].append(_Access(i, sym(task_ids[i]), key.is_write))
    return sites


def _spread_sample(accesses: Sequence[_Access], k: int) -> List[_Access]:
    """Up to ``k`` accesses spread across the list (first/last/middles)."""
    if len(accesses) <= k:
        return list(accesses)
    step = (len(accesses) - 1) / (k - 1)
    return [accesses[round(i * step)] for i in range(k)]


@dataclass
class LowLevelResult:
    """Output of the naive detector."""

    races: List[MemoryRace]
    #: dynamic pairs actually probed for concurrency
    dynamic_pairs: int

    def race_count(self) -> int:
        return len(self.races)


class LowLevelDetector:
    """Conventional conflicting-access race detection on a trace."""

    def __init__(
        self,
        trace: Trace,
        model: ModelConfig = CAFA_MODEL,
        hb: Optional[HappensBefore] = None,
        accesses: Optional[AccessIndex] = None,
        lockset_filter: bool = True,
        samples_per_side: int = SAMPLES_PER_SIDE,
        dense_bits: bool = DEFAULT_DENSE_BITS,
    ) -> None:
        self.trace = trace
        self.model = model
        self._hb = hb
        self.lockset_filter = lockset_filter
        self.samples_per_side = samples_per_side
        self.dense_bits = dense_bits
        self._access_index = accesses
        self._sites: Optional[Dict[_SiteKey, List[_Access]]] = None

    @property
    def hb(self) -> HappensBefore:
        if self._hb is None:
            self._hb = build_happens_before(
                self.trace, self.model, dense_bits=self.dense_bits
            )
        return self._hb

    @property
    def accesses(self) -> AccessIndex:
        if self._access_index is None:
            self._access_index = extract_accesses(self.trace)
        return self._access_index

    @property
    def sites(self) -> Dict[_SiteKey, List[_Access]]:
        """Dynamic accesses grouped by static site (built once, cached)."""
        if self._sites is None:
            self._sites = _collect_sites(self.trace)
        return self._sites

    def detect(self) -> LowLevelResult:
        sites = self.sites
        lock_index = self.accesses
        by_var: Dict[str, List[Tuple[_SiteKey, List[_Access]]]] = defaultdict(list)
        for key, accesses in sites.items():
            by_var[key.var].append((key, accesses))

        # Enumerate every sampled dynamic pair of every candidate site
        # pair, applying the cheap same-task and lockset filters before
        # any ordering work; the happens-before probes then run as one
        # batch (a site pair is racy when any surviving probe comes
        # back concurrent — the filters are conjunctive with the
        # concurrency test, so batching cannot change the verdicts).
        lockset = lock_index.lockset
        lockset_filter = self.lockset_filter
        site_pairs: List[Tuple[str, str, str, bool]] = []
        probe_slices: List[Tuple[int, int]] = []
        probes: List[Tuple[int, int]] = []
        seen: set = set()
        for var, var_sites in by_var.items():
            if not any(key.is_write for key, _ in var_sites):
                continue
            for i, (key_a, acc_a) in enumerate(var_sites):
                sample_a = _spread_sample(acc_a, self.samples_per_side)
                for key_b, acc_b in var_sites[i:]:
                    if not (key_a.is_write or key_b.is_write):
                        continue
                    pair_id = (
                        key_a.var_class,
                        *sorted((key_a.site, key_b.site)),
                        key_a.is_write and key_b.is_write,
                    )
                    if pair_id in seen:
                        continue
                    seen.add(pair_id)
                    start = len(probes)
                    for a in sample_a:
                        for b in _spread_sample(acc_b, self.samples_per_side):
                            if a.index == b.index or a.task == b.task:
                                continue
                            if lockset_filter and (
                                lockset(a.index) & lockset(b.index)
                            ):
                                continue
                            probes.append((a.index, b.index))
                    if len(probes) > start:
                        site_pairs.append(pair_id)
                        probe_slices.append((start, len(probes)))

        verdicts = self.hb.concurrent_pairs(probes)
        races: List[MemoryRace] = []
        for pair_id, (start, stop) in zip(site_pairs, probe_slices):
            if any(verdicts[start:stop]):
                var_class, site_lo, site_hi, write_write = pair_id
                races.append(
                    MemoryRace(
                        var_class=var_class,
                        site_a=site_lo,
                        site_b=site_hi,
                        write_write=write_write,
                    )
                )
        races.sort(key=lambda r: (r.var_class, r.site_a, r.site_b))
        return LowLevelResult(races=races, dynamic_pairs=len(probes))


def detect_low_level_races(trace: Trace, model: ModelConfig = CAFA_MODEL) -> LowLevelResult:
    """Convenience one-shot entry point."""
    return LowLevelDetector(trace, model).detect()
