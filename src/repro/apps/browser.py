"""Browser — the AOSP built-in browser (Section 6.1).

Session modeled: visit the Google home page, search for "cse", click
the University of Michigan CSE link, press back once the page loads.
The browser is the most race-dense app of the evaluation (35 reports):
its tab/webview state is shared between the UI looper and the HTTP and
renderer worker threads, producing mostly cross-thread violations —
19 conventional plus 8 that only the relaxed event order exposes.
"""

from __future__ import annotations

from typing import List

from ..detect import ExpectedRace, Verdict
from ..runtime import AndroidSystem, AsyncTask, ExternalSource, Handler, Process
from .base import AppModel, NoiseProfile, Table1Row
from .sites import SitePlan


class BrowserApp(AppModel):
    name = "browser"
    description = "The built-in browser of the Android Open Source Project."
    session = (
        "Visit the Google homepage, search for 'cse', click the UMich "
        "CSE link, press back after the page loads."
    )
    paper_row = Table1Row(
        events=3965, reported=35, a=0, b=8, c=19, fp1=1, fp2=7, fp3=0
    )
    paper_slowdown = 3.1
    noise = NoiseProfile(
        worker_threads=4,
        events_per_worker=870,
        external_events=400,
        handler_pool=20,
        var_pool=16,
        reads_per_event=3,
        writes_per_event=1,
        compute_ticks=8,
    )
    label_pool = [
        "onPageStarted",
        "onPageFinished",
        "onProgressChanged",
        "loadUrl",
        "onReceivedTitle",
        "updateTabList",
    ]

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        """The page-load pipeline, written like the real browser:
        ``loadUrl`` kicks off an AsyncTask whose worker thread renders
        into the tab's webview snapshot while the back-navigation
        lifecycle event frees the tab — a conventional cross-thread
        use-after-free (two of the 19 column-(c) sites)."""
        plans = []
        ui = Handler(main, name="browserUi")
        for k, field in enumerate(("webview", "pageSnapshot")):
            plans.append(self._page_load_race(system, proc, main, ui, k, field))
        return plans

    def _page_load_race(
        self,
        system: AndroidSystem,
        proc: Process,
        main: str,
        ui: Handler,
        k: int,
        field: str,
    ) -> SitePlan:
        tab = proc.heap.new(f"Tab{k}")
        tab.fields[field] = proc.heap.new(f"WebView{k}")
        worker_label = None

        def render_page(ctx):
            yield from ctx.sleep(8 + 4 * k)  # network + parse
            ctx.use_field(tab, field)        # paint into the tab state
            return "rendered"

        task = AsyncTask(f"loadUrl{k}", render_page)
        worker_name = f"renderWorker{k}"

        def on_load(ctx):
            task.execute(ctx, ui, thread_name=worker_name)

        proc.thread(f"loadStarter{k}", on_load)

        def on_back(ctx):
            ctx.put_field(tab, field, None)  # tear the tab down

        nav = ExternalSource(f"browser_nav{k}")
        nav.at(60 + 10 * k, main, on_back, f"destroyTab{k}")
        nav.attach(system, proc)
        # The use's static site is the worker thread's synthetic method
        # (its thread id), which thread_name pins deterministically.
        expected = ExpectedRace(
            field=field,
            use_method=f"{self.name}/{worker_name}",
            free_method=f"destroyTab{k}",
            verdict=Verdict.HARMFUL,
            note="AsyncTask renders into a tab freed by back-navigation",
        )
        return SitePlan(
            "conventional", field, expected.use_method, expected.free_method, expected
        )
