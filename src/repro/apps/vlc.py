"""VLC — the media player (Section 6.1).

Session modeled: play a video clip for a few seconds, pause and switch
to the home screen, switch back and continue playing.  The player's
surface/decoder state produces one conventional cross-thread violation
and a cluster of benign Type II reports — playback state flags guard
most of the surface accesses.
"""

from __future__ import annotations

from typing import List

from ..detect import ExpectedRace, Verdict
from ..runtime import AndroidSystem, ExternalSource, Process
from .base import AppModel, NoiseProfile, Table1Row
from .sites import SitePlan


class VlcApp(AppModel):
    name = "vlc"
    description = "VLC media player for Android (version 0.2.0)."
    session = (
        "Play a video clip for a few seconds, pause and switch to the "
        "home screen, switch back and continue playing."
    )
    paper_row = Table1Row(
        events=2805, reported=7, a=0, b=0, c=1, fp1=0, fp2=5, fp3=1
    )
    paper_slowdown = 2.6
    noise = NoiseProfile(
        worker_threads=3,
        events_per_worker=840,
        external_events=280,
        handler_pool=14,
        var_pool=12,
        compute_ticks=13,
    )
    label_pool = [
        "onNewLayout",
        "updateOverlay",
        "onAudioTrack",
        "surfaceChanged",
        "showInfo",
    ]

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        """The single conventional violation, structurally: the native
        decoder thread blits into the video surface while the pause
        lifecycle event detaches (frees) the surface holder."""
        player = proc.heap.new("VideoPlayerActivity")
        player.fields["surfaceHolder"] = proc.heap.new("SurfaceHolder")

        def decoder(ctx):
            yield from ctx.sleep(95)
            ctx.use_field(player, "surfaceHolder")  # render a frame

        decoder_id = proc.thread("vlcDecoder", decoder)

        def on_surface_destroyed(ctx):
            ctx.put_field(player, "surfaceHolder", None)

        user = ExternalSource("vlc_user")
        user.at(130, main, on_surface_destroyed, "surfaceDestroyed")
        user.attach(system, proc)
        expected = ExpectedRace(
            field="surfaceHolder",
            use_method=decoder_id,
            free_method="surfaceDestroyed",
            verdict=Verdict.HARMFUL,
            note="decoder renders into a surface detached by the pause",
        )
        return [
            SitePlan(
                "conventional",
                "surfaceHolder",
                decoder_id,
                "surfaceDestroyed",
                expected,
            )
        ]
