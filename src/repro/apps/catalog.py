"""The application catalog: the ten workloads of Section 6.1."""

from __future__ import annotations

from typing import Dict, List, Type

from .base import AppModel
from .browser import BrowserApp
from .camera import CameraApp
from .connectbot import ConnectBotApp
from .fbreader import FBReaderApp
from .firefox import FirefoxApp
from .music import MusicApp
from .mytracks import MyTracksApp
from .todolist import ToDoListApp
from .vlc import VlcApp
from .zxing import ZXingApp

#: in the paper's Table 1 / Figure 8 order
ALL_APPS: List[Type[AppModel]] = [
    ConnectBotApp,
    MyTracksApp,
    ZXingApp,
    ToDoListApp,
    BrowserApp,
    FirefoxApp,
    VlcApp,
    FBReaderApp,
    CameraApp,
    MusicApp,
]

APPS_BY_NAME: Dict[str, Type[AppModel]] = {app.name: app for app in ALL_APPS}


def make_app(name: str, scale: float = 1.0, seed: int = 0) -> AppModel:
    """Instantiate a workload by its app name."""
    try:
        cls = APPS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; available: {sorted(APPS_BY_NAME)}"
        ) from None
    return cls(scale=scale, seed=seed)
