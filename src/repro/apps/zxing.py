"""ZXing — the barcode scanner (Section 6.1/6.2).

Session modeled: scan a barcode, pause by switching to the home
screen, switch back, scan again.  Section 6.2 singles ZXing out for the
pause-time clean-up bug: the pause event frees the camera/decoder
state, and any event scheduled after it — e.g. a decode result posted
by the decode thread — crashes on the freed pointers.
"""

from __future__ import annotations

from typing import List

from ..detect import ExpectedRace, Verdict
from ..runtime import AndroidSystem, ExternalSource, Handler, Process
from .base import AppModel, NoiseProfile, Table1Row
from . import sites
from .sites import SitePlan

#: CaptureActivityHandler message codes (the real app uses these)
MSG_DECODE_SUCCEEDED = 1
MSG_DECODE_FAILED = 2


class ZXingApp(AppModel):
    name = "zxing"
    description = "Scans barcodes with the built-in camera (version 4.5.1)."
    session = (
        "Scan a real barcode, pause by switching to the home screen, "
        "switch back and scan another."
    )
    paper_row = Table1Row(
        events=4554, reported=5, a=0, b=2, c=0, fp1=1, fp2=1, fp3=1
    )
    paper_slowdown = 2.8
    noise = NoiseProfile(
        worker_threads=4,
        events_per_worker=1025,
        external_events=450,
        handler_pool=12,
        var_pool=14,
        compute_ticks=11,
    )
    label_pool = ["decodeFrame", "onPreviewFrame", "drawViewfinder", "handleDecode"]

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        return [
            # The pause clean-up bug (§6.2): the decode thread frees
            # the camera manager when the activity pauses, racing the
            # decode-succeeded message still in flight on the capture
            # handler.
            self._decode_message_race(system, proc, main),
            sites.inter_thread_race(
                system, proc, main, "zx_preview",
                use_label="onPreviewReady", free_thread="preview",
                at_ms=170, field="multiFormatReader",
            ),
            sites.fp_untraced_listener(
                system, proc, main, "zx_listener",
                use_label="initViewfinder", free_label="onViewfinderTap",
                at_ms=200, field="viewfinderView",
            ),
            sites.fp_boolean_guard(
                system, proc, main, "zx_flag",
                use_label="restartPreview", free_label="pauseScanning",
                at_ms=230, field="handler",
            ),
            sites.fp_deref_mismatch(
                system, proc, main, "zx_mismatch",
                use_label="decodeHistogram", free_label="clearHistogram",
                at_ms=260, field="luminanceSource",
            ),
        ]

    def _decode_message_race(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> SitePlan:
        """Column (b) through the real message-handler structure.

        The decode thread sends MSG_DECODE_SUCCEEDED to the capture
        activity's handler; the handler's dispatch uses the camera
        manager.  When the user pauses (a *later* external event), the
        decode thread wakes and frees the camera.  A conventional
        detector orders the decode message before the pause event
        (total looper order) and hence before the free — CAFA knows
        better.
        """
        activity = proc.heap.new("CaptureActivity")
        activity.fields["cameraManager"] = proc.heap.new("CameraManager")
        monitor = "zx_pause_signal"

        def handle_message(ctx, what, obj):
            if what == MSG_DECODE_SUCCEEDED:
                ctx.use_field(activity, "cameraManager")

        capture_handler = Handler(
            main, name="captureHandler", message_handler=handle_message
        )

        def decode_thread(ctx):
            yield from ctx.sleep(140)
            capture_handler.send_message(ctx, MSG_DECODE_SUCCEEDED, "QR:42")
            yield from ctx.wait(monitor)  # parked until the pause
            ctx.put_field(activity, "cameraManager", None)

        thread_id = proc.thread("decode", decode_thread)

        def on_pause(ctx):
            ctx.notify(monitor)

        user = ExternalSource("zx_user")
        user.at(160, main, on_pause, "onPause")
        user.attach(system, proc)

        use_method = f"captureHandler.msg[{MSG_DECODE_SUCCEEDED}]"
        expected = ExpectedRace(
            field="cameraManager",
            use_method=use_method,
            free_method=thread_id,
            verdict=Verdict.HARMFUL,
            note="§6.2 pause clean-up: decode result races the camera release",
        )
        return SitePlan(
            "inter-thread", "cameraManager", use_method, thread_id, expected
        )
