"""ConnectBot — an SSH client (Section 6.1, Figure 2).

Session modeled: click a host in the host list, enter the password at
the prompt, stop after login succeeds.  Version 1.7 contains a known
use-free bug between the connection bridge teardown and the relay
thread (the paper detects 2 inter-thread violations plus one Type I
false positive).

The Figure 2 pattern — ``onPause`` writing ``resizeAllowed`` while
``onLayout`` reads it — is installed verbatim; it is the paper's
canonical *commutative* read-write race: the low-level baseline reports
it (among its 1,664 ConnectBot races) and CAFA must not.
"""

from __future__ import annotations

from typing import List

from ..runtime import AndroidSystem, Process
from .base import AppModel, NoiseProfile, Table1Row
from . import sites
from .sites import SitePlan


class ConnectBotApp(AppModel):
    name = "connectbot"
    description = "An SSH client for Android (version 1.7, known bug r90632bd)."
    session = (
        "Click a remote host in the host list, enter the password at the "
        "prompt, stop after login succeeds."
    )
    paper_row = Table1Row(
        events=3058, reported=3, a=0, b=2, c=0, fp1=1, fp2=0, fp3=0
    )
    #: §4.1: the conventional low-level definition yields 1,664 races here
    paper_low_level_races = 1664
    paper_slowdown = 3.5
    noise = NoiseProfile(
        worker_threads=4,
        events_per_worker=690,
        external_events=300,
        handler_pool=18,
        var_pool=12,
        reads_per_event=3,
        writes_per_event=2,
        compute_ticks=6,
    )
    label_pool = ["onKey", "redraw", "bufferUpdated", "promptPassword"]

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        plans = [
            # The known bug: the terminal bridge is torn down by the
            # relay thread when the connection drops, racing the UI
            # events still using it.  Invisible to a conventional
            # detector — the teardown is triggered by a later UI event.
            sites.inter_thread_race(
                system, proc, main, "cb_bridge",
                use_label="onTerminalViewKey", free_thread="relay",
                at_ms=150, field="bridge",
            ),
            sites.inter_thread_race(
                system, proc, main, "cb_prompt",
                use_label="updatePromptVisible", free_thread="connection",
                at_ms=180, field="promptHelper",
            ),
            sites.fp_untraced_listener(
                system, proc, main, "cb_listener",
                use_label="onHostStatusChanged", free_label="onServiceDisconnect",
                at_ms=210, field="hostdb",
            ),
        ]
        # Figure 2, literally: commutative resizeAllowed read-write.
        plans.append(
            sites.commutative_read_write(
                system, proc, main, "cb_fig2",
                read_label="onLayout", write_label="onPause",
                at_ms=240, var="resizeAllowed",
            )
        )
        return plans
