"""Application workload framework.

An :class:`AppModel` describes one of the ten applications of the
evaluation (Section 6.1): the user session that was scripted on the
instrumented device, the use-free race sites the paper reports for it
(Table 1), its background event load, and its computation density
(which determines the tracing slowdown of Figure 8).

``build`` assembles a fresh :class:`~repro.runtime.AndroidSystem` with:

* the app's bespoke scenario (each subclass recreates its signature
  bug — e.g. MyTracks' Figure 1 race through a real Binder service);
* generic race sites from :mod:`repro.apps.sites` until the app's
  Table 1 mix is reached;
* commutative Figure 2/Figure 5 patterns that the detector must filter;
* background "noise" events approximating the paper's event counts
  (scaled by ``scale`` to keep analysis tractable on a laptop).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..detect import ExpectedRace
from ..runtime import AndroidSystem, ExternalSource, Process, TimeModel
from ..trace import Trace
from . import sites
from .sites import SitePlan


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 as published."""

    events: int
    reported: int
    a: int
    b: int
    c: int
    fp1: int
    fp2: int
    fp3: int

    @property
    def true_races(self) -> int:
        return self.a + self.b + self.c

    @property
    def false_positives(self) -> int:
        return self.fp1 + self.fp2 + self.fp3


@dataclass(frozen=True)
class RaceMix:
    """How many race sites of each category a workload contains."""

    a: int = 0
    b: int = 0
    c: int = 0
    fp1: int = 0
    fp2: int = 0
    fp3: int = 0

    @property
    def reported(self) -> int:
        return self.a + self.b + self.c + self.fp1 + self.fp2 + self.fp3


@dataclass(frozen=True)
class NoiseProfile:
    """Background event load of a workload.

    ``worker_threads`` unordered poster threads each contribute
    ``events_per_worker`` events; cross-worker pairs on the shared
    variable pool are the (benign) low-level races of Section 4.1.
    ``external_events`` model timer/sensor ticks (ordered by the
    external-input rule, hence race-free).  ``compute_ticks`` is the
    un-instrumented work per event — the knob behind each app's
    Figure 8 slowdown.
    """

    worker_threads: int = 4
    events_per_worker: int = 120
    external_events: int = 120
    handler_pool: int = 12
    var_pool: int = 8
    reads_per_event: int = 2
    writes_per_event: int = 1
    compute_ticks: int = 6


@dataclass
class AppRun:
    """The outcome of executing a workload once."""

    name: str
    system: AndroidSystem
    trace: Optional[Trace]
    expected: List[ExpectedRace]
    plans: List[SitePlan]

    @property
    def event_count(self) -> int:
        return len(self.trace.events()) if self.trace is not None else 0


class AppModel:
    """Base class for the ten §6.1 application workloads."""

    #: app name (subclasses override)
    name: str = "app"
    #: what the application does (paper §6.1)
    description: str = ""
    #: the scripted user session the trace captures (paper §6.1)
    session: str = ""
    #: the published Table 1 row
    paper_row: Table1Row = Table1Row(0, 0, 0, 0, 0, 0, 0, 0)
    #: the race-site mix this workload installs (defaults to the paper row)
    mix: Optional[RaceMix] = None
    #: background load profile
    noise: NoiseProfile = NoiseProfile()
    #: label pairs used when naming generic race sites
    label_pool: List[str] = ["onCreate", "onStart", "onStop", "onUpdate"]

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        self.scale = scale
        self.seed = seed
        if self.mix is None:
            row = self.paper_row
            self.mix = RaceMix(
                a=row.a, b=row.b, c=row.c, fp1=row.fp1, fp2=row.fp2, fp3=row.fp3
            )

    # -- assembly ------------------------------------------------------

    def build(self, system: AndroidSystem) -> AppRun:
        proc = system.process(self.name)
        main = proc.looper("main")
        plans: List[SitePlan] = []
        plans.extend(self.install_scenarios(system, proc, main))
        plans.extend(self._install_generic_sites(system, proc, main, plans))
        plans.extend(self.install_commutative(system, proc, main))
        self._install_noise(system, proc, main)
        expected = [p.expected for p in plans if p.expected is not None]
        return AppRun(
            name=self.name, system=system, trace=None, expected=expected, plans=plans
        )

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        """App-specific bespoke scenarios (subclasses override).

        Whatever categories the bespoke code covers are subtracted from
        the generic fill-up, so the total always matches ``mix``.
        """
        return []

    def install_commutative(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        """Commutative patterns every app carries (filter fodder)."""
        plans = [
            sites.commutative_guarded_use(
                system, proc, main, f"{self.name}_cg", "onFocus", "onPauseFree", 700
            ),
            sites.commutative_realloc_use(
                system, proc, main, f"{self.name}_cr", "onResumeAlloc", "onStopFree", 720
            ),
            sites.commutative_read_write(
                system, proc, main, f"{self.name}_rw", "onLayout", "onPause", 740
            ),
        ]
        return plans

    # -- generic fill-up ---------------------------------------------------

    def _install_generic_sites(
        self,
        system: AndroidSystem,
        proc: Process,
        main: str,
        existing: List[SitePlan],
    ) -> List[SitePlan]:
        assert self.mix is not None
        kinds_done = {
            "intra-thread": 0,
            "inter-thread": 0,
            "conventional": 0,
            "fp-listener": 0,
            "fp-boolean": 0,
            "fp-mismatch": 0,
        }
        for plan in existing:
            if plan.kind in kinds_done:
                kinds_done[plan.kind] += 1
        want = {
            "intra-thread": self.mix.a,
            "inter-thread": self.mix.b,
            "conventional": self.mix.c,
            "fp-listener": self.mix.fp1,
            "fp-boolean": self.mix.fp2,
            "fp-mismatch": self.mix.fp3,
        }
        plans: List[SitePlan] = []
        at_ms = 100.0
        counter = 0
        labels = self.label_pool

        def label(i: int, suffix: str) -> str:
            return f"{labels[i % len(labels)]}{suffix}{i}"

        for kind, target in want.items():
            missing = target - kinds_done[kind]
            for _ in range(max(0, missing)):
                tag = f"{self.name}_{kind}_{counter}"
                if kind == "intra-thread":
                    plan = sites.intra_thread_race(
                        system, proc, main, tag,
                        label(counter, "Use"), label(counter, "Destroy"), at_ms,
                    )
                elif kind == "inter-thread":
                    plan = sites.inter_thread_race(
                        system, proc, main, tag,
                        label(counter, "Use"), f"worker{counter}", at_ms,
                    )
                elif kind == "conventional":
                    plan = sites.conventional_race(
                        system, proc, main, tag,
                        f"io{counter}", label(counter, "Destroy"), at_ms,
                    )
                elif kind == "fp-listener":
                    plan = sites.fp_untraced_listener(
                        system, proc, main, tag,
                        label(counter, "Reg"), label(counter, "Perform"), at_ms,
                    )
                elif kind == "fp-boolean":
                    plan = sites.fp_boolean_guard(
                        system, proc, main, tag,
                        label(counter, "Check"), label(counter, "Clear"), at_ms,
                    )
                else:
                    plan = sites.fp_deref_mismatch(
                        system, proc, main, tag,
                        label(counter, "Read"), label(counter, "Free"), at_ms,
                    )
                plans.append(plan)
                counter += 1
                at_ms += 12.0
        return plans

    # -- noise ---------------------------------------------------------

    def _install_noise(self, system: AndroidSystem, proc: Process, main: str) -> None:
        profile = self.noise
        rng = random.Random(self.seed)
        per_worker = max(1, int(profile.events_per_worker * self.scale))
        externals = max(1, int(profile.external_events * self.scale))
        compute = profile.compute_ticks

        def make_handler(worker: int, i: int):
            # One variable slot per handler label, so the number of
            # static low-level race sites stays proportional to the
            # handler pool rather than the event count.
            slot = (worker * 7 + i % profile.handler_pool) % profile.var_pool
            var = f"noise_var{slot}"

            def handler(ctx):
                ctx.compute(compute)
                for r in range(profile.reads_per_event):
                    ctx.read(f"{var}_{r % 2}")
                for w in range(profile.writes_per_event):
                    ctx.write(f"{var}_{w % 2}", w)

            return handler

        for worker in range(profile.worker_threads):
            handlers = [
                (
                    make_handler(worker, i),
                    f"noise_w{worker}_{i % profile.handler_pool}",
                    rng.uniform(20, 900),
                )
                for i in range(per_worker)
            ]
            handlers.sort(key=lambda h: h[2])

            def body(ctx, handlers=handlers):
                for handler, name, at in handlers:
                    yield from ctx.sleep_until(at)
                    ctx.post(main, handler, label=name)

            proc.thread(f"noise_worker{worker}", body)

        source = ExternalSource(f"{self.name}_timer")
        for i in range(externals):
            handler = make_handler(999, i)
            source.at(rng.uniform(20, 900), main, handler, f"onTick{i % profile.handler_pool}")
        source.attach(system, proc)

    # -- execution -----------------------------------------------------

    def run(
        self,
        tracing: bool = True,
        time_model: Optional[TimeModel] = None,
        max_ms: float = 5_000,
        columnar: bool = True,
    ) -> AppRun:
        """Build and execute the workload; returns the run record.

        ``columnar`` selects the collected trace's backend (see
        :class:`~repro.runtime.tracer.Tracer`).
        """
        system = AndroidSystem(
            seed=self.seed,
            tracing=tracing,
            time_model=time_model,
            columnar_trace=columnar,
        )
        run = self.build(system)
        system.run(max_ms=max_ms)
        if tracing:
            run.trace = system.trace()
        return run
