"""FBReader — a free e-book reader (Section 6.1).

Session modeled: read the tutorial from the first page to the last,
rotate the phone, move back to the first page.  The rotation restarts
the activity, so the book model is freed and rebuilt while page-turn
events and the prefetch thread still reference it — the classic
rotation use-after-free mix.
"""

from __future__ import annotations

from typing import List

from ..detect import ExpectedRace, Verdict
from ..runtime import AndroidSystem, ExternalSource, Process
from .base import AppModel, NoiseProfile, Table1Row
from .sites import SitePlan


class FBReaderApp(AppModel):
    name = "fbreader"
    description = "FBReaderJ e-book reader (version 1.9.6.1)."
    session = (
        "Read the tutorial from first to last page, rotate the phone, "
        "then move back to the first page."
    )
    paper_row = Table1Row(
        events=3528, reported=9, a=1, b=3, c=1, fp1=2, fp2=2, fp3=0
    )
    paper_slowdown = 4.7
    noise = NoiseProfile(
        worker_threads=4,
        events_per_worker=795,
        external_events=350,
        handler_pool=15,
        var_pool=14,
        compute_ticks=2,
    )
    label_pool = [
        "onPageTurn",
        "repaintWidget",
        "onPreferenceChange",
        "rebuildModel",
        "prefetchPage",
    ]

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        """The rotation bug, structurally: rotating the phone destroys
        the book model and rebuilds it *in a later event*; a page-show
        event posted by the prefetch thread races the teardown.  The
        rebuild happens in a different event, so the
        intra-event-allocation heuristic rightly does **not** save it —
        the free is visible to the racing use (the (a) cell)."""
        activity = proc.heap.new("FBReaderActivity")
        activity.fields["bookModel"] = proc.heap.new("BookModel")

        def show_page(ctx):
            ctx.use_field(activity, "bookModel")

        def prefetch(ctx):
            yield from ctx.sleep(120)
            ctx.post(main, show_page, label="showPage")

        proc.thread("prefetch", prefetch)

        def rebuild_model(ctx):
            fresh = ctx.new_object("BookModel")
            ctx.put_field(activity, "bookModel", fresh)

        def on_configuration_changed(ctx):
            ctx.put_field(activity, "bookModel", None)  # teardown
            ctx.post(main, rebuild_model, label="rebuildModel")

        rotation = ExternalSource("fb_rotation")
        rotation.at(150, main, on_configuration_changed, "onConfigurationChanged")
        rotation.attach(system, proc)

        expected = ExpectedRace(
            field="bookModel",
            use_method="showPage",
            free_method="onConfigurationChanged",
            verdict=Verdict.HARMFUL,
            note="rotation frees the model; the rebuild lands one event later",
        )
        return [
            SitePlan(
                "intra-thread",
                "bookModel",
                "showPage",
                "onConfigurationChanged",
                expected,
            )
        ]
