"""MyTracks — Google's GPS track recorder (Section 6.1, Figures 1/2).

Session modeled: record a short track, pause the app by switching to
another application, switch back.  The signature bug is Figure 1: the
``onServiceConnected`` event (posted by the TrackRecordingService's
binder thread in a different process) uses ``providerUtils``, while the
external ``onDestroy`` lifecycle event frees it; nothing orders them.

The workload recreates that structure with a real simulated Binder
service, plus the ``startRecordingNewTrack`` commutative pattern the
paper quotes (a Type II false positive: the guard is program state the
if-guard heuristic cannot see).
"""

from __future__ import annotations

from typing import List

from ..detect import ExpectedRace, Verdict
from ..runtime import AndroidSystem, ExternalSource, Process
from .base import AppModel, NoiseProfile, Table1Row
from .sites import SitePlan


class MyTracksApp(AppModel):
    name = "mytracks"
    description = "Records GPS tracks using Google Maps (version 1.1.7)."
    session = (
        "Record a short track, pause it by switching to another "
        "application, then switch back."
    )
    paper_row = Table1Row(
        events=6628, reported=8, a=1, b=3, c=0, fp1=0, fp2=4, fp3=0
    )
    paper_slowdown = 4.2
    noise = NoiseProfile(
        worker_threads=4,
        events_per_worker=1500,
        external_events=600,
        handler_pool=14,
        var_pool=20,
        compute_ticks=3,
    )
    label_pool = [
        "onLocationChanged",
        "updateTrackUi",
        "onSharedPreferenceChanged",
        "announceFrequency",
    ]

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        plans = [self._figure1_race(system, proc, main)]
        plans.append(self._start_recording_flag_race(system, proc, main))
        return plans

    def _figure1_race(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> SitePlan:
        """The providerUtils use-after-free through a real RPC chain."""
        activity = proc.heap.new("MyTracksActivity")
        activity.fields["providerUtils"] = proc.heap.new("MyTracksProviderUtils")
        service_proc = system.process("com.google.android.apps.mytracks.services")

        def on_service_connected(ctx):
            ctx.new_object("Track")
            ctx.use_field(activity, "providerUtils")  # updateTrack(track)

        def on_bind(ctx, reply_looper):
            ctx.post(reply_looper, on_service_connected, label="onServiceConnected")
            return "binder"

        system.add_service(
            "TrackRecordingService", service_proc, {"bind": on_bind}
        )

        def on_resume(ctx):
            yield from ctx.binder_call("TrackRecordingService", "bind", main)

        def on_destroy(ctx):
            ctx.put_field(activity, "providerUtils", None)

        user = ExternalSource("mytracks_user")
        user.at(10, main, on_resume, "onResume")
        user.at(60, main, on_destroy, "onDestroy")
        user.attach(system, proc)
        expected = ExpectedRace(
            field="providerUtils",
            use_method="onServiceConnected",
            free_method="onDestroy",
            verdict=Verdict.HARMFUL,
            note="Figure 1: NPE when onDestroy precedes onServiceConnected",
        )
        return SitePlan(
            "intra-thread", "providerUtils", "onServiceConnected", "onDestroy", expected
        )

    def _start_recording_flag_race(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> SitePlan:
        """startRecordingNewTrack: guarded by app state, not a null test.

        The paper quotes the method's TODO comment and classifies the
        resulting reports as benign — our Type II shape.
        """
        recorder = proc.heap.new("TrackRecorder")
        recorder.fields["recordingTrack"] = proc.heap.new("Track")
        proc.store["isRecording"] = True

        def start_recording_new_track(ctx):
            if ctx.read("isRecording"):
                ctx.use_field(recorder, "recordingTrack")

        def stop_recording(ctx):
            ctx.write("isRecording", False)
            ctx.put_field(recorder, "recordingTrack", None)

        def poster(ctx):
            yield from ctx.sleep_until(80)
            ctx.post(main, start_recording_new_track, label="startRecordingNewTrack")

        proc.thread("recording_poster", poster)
        user = ExternalSource("mytracks_stop")
        user.at(95, main, stop_recording, "stopRecording")
        user.attach(system, proc)
        expected = ExpectedRace(
            field="recordingTrack",
            use_method="startRecordingNewTrack",
            free_method="stopRecording",
            verdict=Verdict.FP_TYPE_II,
            note="benign: guarded by isRecording app state (paper §6.2)",
        )
        return SitePlan(
            "fp-boolean",
            "recordingTrack",
            "startRecordingNewTrack",
            "stopRecording",
            expected,
        )
