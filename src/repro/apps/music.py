"""Music — the AOSP built-in audio player (Section 6.1).

Session modeled: play an MP3 for a few seconds, pause and switch to
the home screen, switch back and resume.  The playback service's
cursor/album-art state yields two intra-thread violations; the app is
also the heaviest tracing workload of Figure 8 (the paper reports its
offline analysis alone took about a day, owing to its event density).
"""

from __future__ import annotations

from typing import List

from ..detect import ExpectedRace, Verdict
from ..dvm import MethodBuilder
from ..runtime import AndroidSystem, ExternalSource, Process
from .base import AppModel, NoiseProfile, Table1Row
from .sites import SitePlan


class MusicApp(AppModel):
    name = "music"
    description = "The built-in audio player of the Android Open Source Project."
    session = (
        "Play an MP3 for a few seconds, pause and switch to the home "
        "screen, switch back and resume playback."
    )
    paper_row = Table1Row(
        events=6684, reported=5, a=2, b=0, c=0, fp1=0, fp2=2, fp3=1
    )
    paper_slowdown = 5.6
    noise = NoiseProfile(
        worker_threads=4,
        events_per_worker=1500,
        external_events=670,
        handler_pool=14,
        var_pool=16,
        reads_per_event=4,
        writes_per_event=2,
        compute_ticks=1,
    )
    label_pool = [
        "onMetaChanged",
        "refreshProgress",
        "queueNextTrack",
        "updateAlbumArt",
    ]

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        """One of the two intra-thread violations as real bytecode:
        the progress refresher reads the track cursor and queries it;
        the pause clean-up closes (nulls) the cursor.  No guard, no
        catch — the crash the paper attributes to events scheduled
        after the pause event."""
        m = MethodBuilder("MediaPlayback.refreshNow", params=1)
        m.iget_object(1, 0, "mCursor")            # pc 0: the racy read
        m.invoke("Cursor.position", receiver=1)   # pc 1: the dereference
        m.return_void()
        proc.program.add_method(m.build())
        proc.program.add_intrinsic("Cursor.position", lambda args: 0)

        player = proc.heap.new("MediaPlaybackActivity")
        player.fields["mCursor"] = proc.heap.new("TrackCursor")

        def refresh_now(ctx):
            ctx.compute(1)
            ctx.call_method("MediaPlayback.refreshNow", [player])

        def progress_timer(ctx):
            yield from ctx.sleep(110)
            ctx.post(main, refresh_now, label="refreshNow")

        proc.thread("progressTimer", progress_timer)

        def on_pause_cleanup(ctx):
            ctx.put_field(player, "mCursor", None)

        user = ExternalSource("music_user")
        user.at(140, main, on_pause_cleanup, "onPauseCleanup")
        user.attach(system, proc)

        expected = ExpectedRace(
            field="mCursor",
            use_method="MediaPlayback.refreshNow",
            free_method="onPauseCleanup",
            verdict=Verdict.HARMFUL,
            note="progress refresh queries a cursor closed by the pause",
        )
        return [
            SitePlan(
                "intra-thread",
                "mCursor",
                "MediaPlayback.refreshNow",
                "onPauseCleanup",
                expected,
            )
        ]
