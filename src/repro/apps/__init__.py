"""Workload models of the ten applications of the evaluation
(Section 6.1), with ground-truth race annotations."""

from .base import AppModel, AppRun, NoiseProfile, RaceMix, Table1Row
from .browser import BrowserApp
from .camera import CameraApp
from .catalog import ALL_APPS, APPS_BY_NAME, make_app
from .connectbot import ConnectBotApp
from .fbreader import FBReaderApp
from .firefox import FirefoxApp
from .music import MusicApp
from .mytracks import MyTracksApp
from .sites import SitePlan
from .todolist import ToDoListApp
from .vlc import VlcApp
from .zxing import ZXingApp

__all__ = [
    "ALL_APPS",
    "APPS_BY_NAME",
    "AppModel",
    "AppRun",
    "BrowserApp",
    "CameraApp",
    "ConnectBotApp",
    "FBReaderApp",
    "FirefoxApp",
    "MusicApp",
    "MyTracksApp",
    "NoiseProfile",
    "RaceMix",
    "SitePlan",
    "Table1Row",
    "ToDoListApp",
    "VlcApp",
    "ZXingApp",
    "make_app",
]
