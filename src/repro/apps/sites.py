"""Reusable race-site recipes for the application workloads.

Each recipe installs, into a simulated app, the smallest program
structure that produces one use-free race report of a given Table 1
category — or a commutative pattern that the detector must *not*
report.  The recipes are faithful to the bug shapes the paper
describes:

* :func:`intra_thread_race` — column (a): a use in an event posted by a
  background thread races a free in an external lifecycle event on the
  same looper (the MyTracks Figure 1 shape).
* :func:`inter_thread_race` — column (b): a use in an event races a
  free performed by a regular thread that was woken by a *later* event
  of the same looper; a conventional detector orders the looper's
  events totally and therefore misses it.
* :func:`conventional_race` — column (c): a plain cross-thread use-free
  race with no synchronization, visible to any detector.
* :func:`fp_untraced_listener` — Type I: the real ordering goes through
  an event listener registered in an *uninstrumented* package, so the
  register record is missing and a false race is reported.
* :func:`fp_boolean_guard` — Type II: the use is guarded by a boolean
  flag rather than a pointer null-check; the events are commutative but
  the if-guard heuristic cannot see it.
* :func:`fp_deref_mismatch` — Type III: a dereference of a reference
  obtained through an untraced path is matched to an unrelated pointer
  read of the same object, fabricating a use.
* :func:`commutative_guarded_use`, :func:`commutative_realloc_use` —
  the two Figure 5 shapes the heuristics must filter.
* :func:`commutative_read_write` — the Figure 2 shape: a read-write
  conflict between commutative events (low-level baseline fodder;
  never a use-free report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..detect import ExpectedRace, Verdict
from ..runtime import AndroidSystem, ExternalSource, Process


@dataclass(frozen=True)
class SitePlan:
    """Bookkeeping for one installed site (used by tests/benchmarks)."""

    kind: str
    field: str
    use_method: str
    free_method: str
    expected: Optional[ExpectedRace]


def _holder(proc: Process, tag: str, field: str):
    holder = proc.heap.new(f"Holder_{tag}")
    holder.fields[field] = proc.heap.new(f"Target_{tag}")
    return holder


def _delayed_post(proc: Process, main: str, tag: str, at_ms: float, handler, label: str):
    """A root thread that posts one (non-external) event at ``at_ms``."""

    def poster(ctx):
        yield from ctx.sleep_until(at_ms)
        ctx.post(main, handler, label=label)

    proc.thread(f"poster_{tag}", poster)


# ---------------------------------------------------------------------------
# true races
# ---------------------------------------------------------------------------


def intra_thread_race(
    system: AndroidSystem,
    proc: Process,
    main: str,
    tag: str,
    use_label: str,
    free_label: str,
    at_ms: float,
    field: str = "ptr",
) -> SitePlan:
    """Column (a): both endpoints are events of the same looper.

    The use-event is posted by a background thread (so the external
    chain cannot order it); the free arrives as an external lifecycle
    event a little later.  Reversing their order in another execution
    dereferences null — the Figure 1 bug.
    """
    holder = _holder(proc, tag, field)

    def use_handler(ctx):
        ctx.use_field(holder, field)

    def free_handler(ctx):
        ctx.put_field(holder, field, None)

    _delayed_post(proc, main, tag, at_ms, use_handler, use_label)
    source = ExternalSource(f"src_{tag}")
    source.at(at_ms + 5, main, free_handler, free_label)
    source.attach(system, proc)
    expected = ExpectedRace(
        field=field,
        use_method=use_label,
        free_method=free_label,
        verdict=Verdict.HARMFUL,
        note="intra-thread use-after-free (Figure 1 shape)",
    )
    return SitePlan("intra-thread", field, use_label, free_label, expected)


def inter_thread_race(
    system: AndroidSystem,
    proc: Process,
    main: str,
    tag: str,
    use_label: str,
    free_thread: str,
    at_ms: float,
    field: str = "ptr",
) -> SitePlan:
    """Column (b): missed by the conventional detector.

    The use runs in an event E_use; a *later* external event notifies a
    monitor; a regular thread wakes and frees the pointer.  The
    conventional model chains E_use before the trigger event (total
    looper order) and hence before the free — but no real causality
    orders them, so CAFA reports the race.
    """
    holder = _holder(proc, tag, field)
    monitor = f"mon_{tag}"

    def use_handler(ctx):
        ctx.use_field(holder, field)

    def trigger_handler(ctx):
        ctx.notify(monitor)

    def freer(ctx):
        yield from ctx.wait(monitor)
        ctx.put_field(holder, field, None)

    _delayed_post(proc, main, tag, at_ms, use_handler, use_label)
    source = ExternalSource(f"src_{tag}")
    source.at(at_ms + 5, main, trigger_handler, f"{use_label}_trigger")
    source.attach(system, proc)
    thread_id = proc.thread(free_thread, freer)
    expected = ExpectedRace(
        field=field,
        use_method=use_label,
        free_method=thread_id,
        verdict=Verdict.HARMFUL,
        note="inter-thread violation invisible to the conventional model",
    )
    return SitePlan("inter-thread", field, use_label, thread_id, expected)


def conventional_race(
    system: AndroidSystem,
    proc: Process,
    main: str,
    tag: str,
    use_thread: str,
    free_label: str,
    at_ms: float,
    field: str = "ptr",
) -> SitePlan:
    """Column (c): a cross-thread race any detector can see."""
    holder = _holder(proc, tag, field)

    def user(ctx):
        yield from ctx.sleep_until(at_ms)
        ctx.use_field(holder, field)

    def free_handler(ctx):
        ctx.put_field(holder, field, None)

    thread_id = proc.thread(use_thread, user)
    source = ExternalSource(f"src_{tag}")
    source.at(at_ms + 5, main, free_handler, free_label)
    source.attach(system, proc)
    expected = ExpectedRace(
        field=field,
        use_method=thread_id,
        free_method=free_label,
        verdict=Verdict.HARMFUL,
        note="conventional cross-thread use-after-free",
    )
    return SitePlan("conventional", field, thread_id, free_label, expected)


# ---------------------------------------------------------------------------
# false positives
# ---------------------------------------------------------------------------


def fp_untraced_listener(
    system: AndroidSystem,
    proc: Process,
    main: str,
    tag: str,
    use_label: str,
    free_label: str,
    at_ms: float,
    field: str = "ptr",
) -> SitePlan:
    """Type I: the ordering exists but its register record is missing.

    An event registers a listener from an *uninstrumented* package
    (``traced=False``) and uses the pointer; an external input later
    performs the listener, which frees the pointer.  In reality the
    perform cannot precede the registration, but without the register
    record the analyzer cannot know that.
    """
    holder = _holder(proc, tag, field)
    listener = f"listener_{tag}"

    def free_handler(ctx):
        ctx.put_field(holder, field, None)

    def register_and_use(ctx):
        ctx.register_listener(listener, free_handler, traced=False)
        ctx.use_field(holder, field)

    _delayed_post(proc, main, tag, at_ms, register_and_use, use_label)
    source = ExternalSource(f"src_{tag}")
    source.at_listener(at_ms + 5, main, listener, label=free_label)
    source.attach(system, proc)
    expected = ExpectedRace(
        field=field,
        use_method=use_label,
        free_method=free_label,
        verdict=Verdict.FP_TYPE_I,
        note="ordered through an uninstrumented listener registration",
    )
    return SitePlan("fp-listener", field, use_label, free_label, expected)


def fp_boolean_guard(
    system: AndroidSystem,
    proc: Process,
    main: str,
    tag: str,
    use_label: str,
    free_label: str,
    at_ms: float,
    field: str = "ptr",
) -> SitePlan:
    """Type II: commutative events guarded by a boolean flag.

    The freeing event clears the flag before freeing, and the using
    event checks the flag before using — a correct protocol the
    if-guard heuristic (which only understands pointer null tests)
    cannot recognize.
    """
    holder = _holder(proc, tag, field)
    flag = f"flag_{tag}"
    proc.store[flag] = True

    def use_handler(ctx):
        if ctx.read(flag):
            ctx.use_field(holder, field)

    def free_handler(ctx):
        ctx.write(flag, False)
        ctx.put_field(holder, field, None)

    _delayed_post(proc, main, tag, at_ms, use_handler, use_label)
    source = ExternalSource(f"src_{tag}")
    source.at(at_ms + 5, main, free_handler, free_label)
    source.attach(system, proc)
    expected = ExpectedRace(
        field=field,
        use_method=use_label,
        free_method=free_label,
        verdict=Verdict.FP_TYPE_II,
        note="benign: boolean-flag protocol invisible to if-guard",
    )
    return SitePlan("fp-boolean", field, use_label, free_label, expected)


def fp_deref_mismatch(
    system: AndroidSystem,
    proc: Process,
    main: str,
    tag: str,
    use_label: str,
    free_label: str,
    at_ms: float,
    field: str = "cache",
) -> SitePlan:
    """Type III: the dereference is matched to the wrong pointer read.

    The handler reads ``holder.cache`` (logging a pointer read of the
    target object) but then dereferences a reference to the same object
    held in an untraced local.  The matcher attributes the dereference
    to the pointer read, fabricating a use of ``cache``; the racing
    free is then reported although reversing the order is harmless.
    """
    holder = proc.heap.new(f"Holder_{tag}")
    target = proc.heap.new(f"Target_{tag}")
    holder.fields[field] = target

    def read_then_deref_local(ctx):
        ctx.get_field(holder, field)  # pointer read, logs target's id
        ctx.compute(3)
        ctx.invoke_on(target)  # dereference via the untraced local

    def free_handler(ctx):
        ctx.put_field(holder, field, None)

    _delayed_post(proc, main, tag, at_ms, read_then_deref_local, use_label)
    source = ExternalSource(f"src_{tag}")
    source.at(at_ms + 5, main, free_handler, free_label)
    source.attach(system, proc)
    expected = ExpectedRace(
        field=field,
        use_method=use_label,
        free_method=free_label,
        verdict=Verdict.FP_TYPE_III,
        note="dereference mismatched to an unrelated pointer read",
    )
    return SitePlan("fp-mismatch", field, use_label, free_label, expected)


# ---------------------------------------------------------------------------
# commutative patterns (must NOT be reported)
# ---------------------------------------------------------------------------


def commutative_guarded_use(
    system: AndroidSystem,
    proc: Process,
    main: str,
    tag: str,
    use_label: str,
    free_label: str,
    at_ms: float,
    field: str = "handler",
) -> SitePlan:
    """Figure 5 onFocus/onPause: a null-guarded use racing a free.

    The if-guard heuristic must filter this pair.
    """
    holder = _holder(proc, tag, field)

    def use_handler(ctx):
        ctx.guarded_use(holder, field)

    def free_handler(ctx):
        ctx.put_field(holder, field, None)

    _delayed_post(proc, main, tag, at_ms, use_handler, use_label)
    source = ExternalSource(f"src_{tag}")
    source.at(at_ms + 5, main, free_handler, free_label)
    source.attach(system, proc)
    return SitePlan("commutative-guarded", field, use_label, free_label, None)


def commutative_realloc_use(
    system: AndroidSystem,
    proc: Process,
    main: str,
    tag: str,
    use_label: str,
    free_label: str,
    at_ms: float,
    field: str = "handler",
) -> SitePlan:
    """Figure 5 onResume/onPause: the using event allocates first.

    The intra-event-allocation heuristic must filter this pair.
    """
    holder = _holder(proc, tag, field)

    def use_handler(ctx):
        fresh = ctx.new_object(f"Fresh_{tag}")
        ctx.put_field(holder, field, fresh)  # allocation before the use
        ctx.use_field(holder, field)

    def free_handler(ctx):
        ctx.put_field(holder, field, None)

    _delayed_post(proc, main, tag, at_ms, use_handler, use_label)
    source = ExternalSource(f"src_{tag}")
    source.at(at_ms + 5, main, free_handler, free_label)
    source.attach(system, proc)
    return SitePlan("commutative-realloc", field, use_label, free_label, None)


def commutative_read_write(
    system: AndroidSystem,
    proc: Process,
    main: str,
    tag: str,
    read_label: str,
    write_label: str,
    at_ms: float,
    var: Optional[str] = None,
) -> SitePlan:
    """Figure 2 onLayout/onPause: a read-write conflict between
    commutative events.  The low-level baseline reports it; the
    use-free detector must not."""
    var = var or f"resizeAllowed_{tag}"
    proc.store[var] = True

    def layout_handler(ctx):
        if ctx.read(var):
            ctx.write(f"columns_{tag}", 80)
            ctx.write(f"rows_{tag}", 24)

    def pause_handler(ctx):
        ctx.write(var, False)

    _delayed_post(proc, main, tag, at_ms, layout_handler, read_label)
    source = ExternalSource(f"src_{tag}")
    source.at(at_ms + 5, main, pause_handler, write_label)
    source.attach(system, proc)
    return SitePlan("commutative-rw", var, read_label, write_label, None)
