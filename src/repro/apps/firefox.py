"""Firefox — Mozilla's browser for Android (Section 6.1).

Session modeled: same page visits as the Browser workload (Google ->
search 'cse' -> UMich CSE -> back).  Firefox 25 splits work between
the Gecko thread and the UI looper, which yields mostly cross-thread
violations plus a cluster of listener-related Type I false positives —
Gecko registers its observers through JNI paths the instrumentation
does not cover.
"""

from __future__ import annotations

from typing import List

from ..detect import ExpectedRace, Verdict
from ..runtime import AndroidSystem, ExternalSource, Process
from .base import AppModel, NoiseProfile, Table1Row
from .sites import SitePlan


class FirefoxApp(AppModel):
    name = "firefox"
    description = "Mozilla Firefox for Android (version 25)."
    session = (
        "Visit the Google homepage, search for 'cse', click the UMich "
        "CSE link, press back after the page loads."
    )
    paper_row = Table1Row(
        events=5467, reported=25, a=0, b=6, c=10, fp1=4, fp2=5, fp3=0
    )
    paper_slowdown = 2.2
    noise = NoiseProfile(
        worker_threads=5,
        events_per_worker=985,
        external_events=550,
        handler_pool=22,
        var_pool=18,
        reads_per_event=2,
        writes_per_event=1,
        compute_ticks=19,
    )
    label_pool = [
        "onTabChanged",
        "geckoEvent",
        "onLocationChange",
        "handleMessage",
        "updateDisplayPort",
    ]

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        """The Gecko split, structurally: the long-lived Gecko thread
        paints through the layer view while the UI looper's tab
        teardown frees it.  Plus one of the Type I reports: Gecko
        registers its observers through JNI, which the instrumentation
        does not cover — the registration record is missing, so the
        genuinely-ordered observer dispatch is reported as a race.
        """
        plans = []

        # -- conventional (c): Gecko thread vs tab teardown -------------
        tab = proc.heap.new("BrowserTab")
        tab.fields["layerView"] = proc.heap.new("GeckoLayerView")

        def gecko_thread(ctx):
            yield from ctx.sleep(90)
            ctx.use_field(tab, "layerView")  # composite the next frame

        gecko_id = proc.thread("Gecko", gecko_thread)

        def close_tab(ctx):
            ctx.put_field(tab, "layerView", None)

        user = ExternalSource("ff_user")
        user.at(120, main, close_tab, "onTabClosed")
        user.attach(system, proc)
        plans.append(
            SitePlan(
                "conventional",
                "layerView",
                gecko_id,
                "onTabClosed",
                ExpectedRace(
                    field="layerView",
                    use_method=gecko_id,
                    free_method="onTabClosed",
                    verdict=Verdict.HARMFUL,
                    note="Gecko compositor races the tab teardown",
                ),
            )
        )

        # -- Type I: JNI-registered observer -----------------------------
        session = proc.heap.new("GeckoSession")
        session.fields["observer"] = proc.heap.new("SessionObserver")

        def notify_observers(ctx):
            ctx.put_field(session, "observer", None)  # unregister-and-free

        def register_via_jni(ctx):
            # The registration crosses the JNI boundary: untraced.
            ctx.register_listener("gecko:shutdown", notify_observers, traced=False)
            ctx.use_field(session, "observer")

        def starter(ctx):
            yield from ctx.sleep_until(150)
            ctx.post(main, register_via_jni, label="onGeckoReady")

        proc.thread("jni_bridge", starter)
        shutdown = ExternalSource("ff_shutdown")
        shutdown.at_listener(170, main, "gecko:shutdown", label="onGeckoShutdown")
        shutdown.attach(system, proc)
        plans.append(
            SitePlan(
                "fp-listener",
                "observer",
                "onGeckoReady",
                "onGeckoShutdown",
                ExpectedRace(
                    field="observer",
                    use_method="onGeckoReady",
                    free_method="onGeckoShutdown",
                    verdict=Verdict.FP_TYPE_I,
                    note="ordered via a JNI-registered observer the tracer misses",
                ),
            )
        )
        return plans
