"""ToDoList — a to-do widget (Section 6.1/6.2).

Session modeled: add two notes to the widget, then delete them.  The
paper highlights that the author "fixed" the use-after-free by catching
the NullPointerException around ``db.updateNote`` — the crash is gone
but the user's input is silently dropped.

The widget's eight intra-thread races are modeled with real mini-DVM
bytecode: each note-update handler runs a ``ToDoList.updateNote``-style
method whose ``db`` pointer read races the external clean-up event, and
the method body carries the catch-all NPE handler the paper quotes.
"""

from __future__ import annotations

from typing import List

from ..detect import ExpectedRace, Verdict
from ..dvm import MethodBuilder
from ..runtime import AndroidSystem, ExternalSource, Process
from .base import AppModel, NoiseProfile, Table1Row
from .sites import SitePlan


class ToDoListApp(AppModel):
    name = "todolist"
    description = "A home-screen widget for notes and task check-off (1.1.7)."
    session = "Add two notes to the widget, then delete them."
    paper_row = Table1Row(
        events=7122, reported=9, a=8, b=0, c=0, fp1=0, fp2=1, fp3=0
    )
    paper_slowdown = 4.4
    noise = NoiseProfile(
        worker_threads=4,
        events_per_worker=1605,
        external_events=700,
        handler_pool=16,
        var_pool=22,
        compute_ticks=3,
    )
    label_pool = ["onNoteAdded", "onNoteChecked", "refreshWidget", "onDataChanged"]

    #: the eight widget callbacks whose handlers race the clean-up —
    #: eight distinct static sites, hence eight Table 1 reports
    WIDGET_CALLBACKS = [
        "updateNote",
        "checkNote",
        "addNote",
        "removeNote",
        "onUpdate",
        "onDeleted",
        "refreshList",
        "renderRow",
    ]

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        for callback in self.WIDGET_CALLBACKS:
            self._install_callback_bytecode(proc, callback)
        plans: List[SitePlan] = []
        widget = proc.heap.new("ToDoWidgetProvider")
        widget.fields["db"] = proc.heap.new("NotesDbAdapter")

        # The clean-up runs when the widget is removed (external event).
        def on_disabled(ctx):
            ctx.put_field(widget, "db", None)

        removal = ExternalSource("todolist_remove")
        removal.at(400, main, on_disabled, "onDisabled")
        removal.attach(system, proc)

        for slot, callback in enumerate(self.WIDGET_CALLBACKS):
            plans.append(
                self._note_update_race(system, proc, main, widget, slot, callback)
            )
        return plans

    def _install_callback_bytecode(self, proc: Process, callback: str) -> None:
        """One widget callback as bytecode, with the catch-NPE "fix".

        Register 0 = the widget provider.  The method reads the ``db``
        pointer (the racy use) and invokes a database method on it; an
        NPE lands in the empty catch block, exactly like the quoted
        ``try { db.updateNote(...) } catch (NullPointerException) {}``.
        """
        m = MethodBuilder(f"ToDoWidget.{callback}", params=1)
        m.iget_object(1, 0, "db")                       # pc 0: the use's read
        m.invoke("NotesDb.update", receiver=1)          # pc 1: the dereference
        m.label("done")
        m.return_void()                                 # pc 2 (catch target)
        m.catch_npe("done")
        proc.program.add_method(m.build())
        if not proc.program.has("NotesDb.update"):
            proc.program.add_intrinsic("NotesDb.update", lambda args: None)

    def _note_update_race(
        self,
        system: AndroidSystem,
        proc: Process,
        main: str,
        widget,
        slot: int,
        callback: str,
    ) -> SitePlan:
        """One widget callback's event, posted by the input thread."""
        method = f"ToDoWidget.{callback}"

        def update_handler(ctx):
            ctx.compute(2)
            ctx.call_method(method, [widget])

        def poster(ctx):
            yield from ctx.sleep_until(120 + slot * 9)
            ctx.post(main, update_handler, label=callback)

        proc.thread(f"input{slot}", poster)
        expected = ExpectedRace(
            field="db",
            use_method=method,
            free_method="onDisabled",
            verdict=Verdict.HARMFUL,
            note="intra-thread; the catch-NPE 'fix' silently drops the note",
        )
        return SitePlan("intra-thread", "db", method, "onDisabled", expected)
