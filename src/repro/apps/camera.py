"""Camera — the AOSP built-in camera (Section 6.1).

Session modeled: take a picture, switch to the home screen, switch
back, take another picture.  The capture pipeline shares the camera
device proxy between the UI looper and the capture/storage threads;
pausing releases it, which races in-flight capture callbacks.
"""

from __future__ import annotations

from typing import List

from ..detect import ExpectedRace, Verdict
from ..runtime import AndroidSystem, ExternalSource, Process
from .base import AppModel, NoiseProfile, Table1Row
from .sites import SitePlan


class CameraApp(AppModel):
    name = "camera"
    description = "The built-in camera of the Android Open Source Project."
    session = (
        "Take a picture, switch to the home screen, switch back and "
        "take another picture."
    )
    paper_row = Table1Row(
        events=7287, reported=9, a=1, b=1, c=0, fp1=0, fp2=5, fp3=2
    )
    paper_slowdown = 3.0
    noise = NoiseProfile(
        worker_threads=4,
        events_per_worker=1640,
        external_events=730,
        handler_pool=16,
        var_pool=18,
        compute_ticks=9,
    )
    label_pool = [
        "onPictureTaken",
        "onShutter",
        "updateThumbnail",
        "onAutoFocus",
        "startPreview",
    ]

    def install_scenarios(
        self, system: AndroidSystem, proc: Process, main: str
    ) -> List[SitePlan]:
        """The capture callback through a real Binder service: taking a
        picture RPCs into the media server, whose binder thread posts
        ``onPictureTaken`` back to the UI looper; the pause lifecycle
        event releases the camera device — the (a) cell, with the same
        cross-process chain as MyTracks' Figure 1."""
        activity = proc.heap.new("CameraActivity")
        activity.fields["cameraDevice"] = proc.heap.new("CameraDevice")
        media_server = system.process("mediaserver")

        def on_picture_taken(ctx):
            ctx.use_field(activity, "cameraDevice")  # addCallbackBuffer

        def take_picture(ctx, reply_looper):
            yield from ctx.sleep(5)  # exposure + encode
            ctx.post(reply_looper, on_picture_taken, label="onPictureTaken")
            return "jpeg"

        system.add_service("media.camera", media_server, {"takePicture": take_picture})

        def on_shutter(ctx):
            yield from ctx.binder_call("media.camera", "takePicture", main)

        def on_pause_release(ctx):
            ctx.put_field(activity, "cameraDevice", None)

        user = ExternalSource("camera_user")
        user.at(30, main, on_shutter, "onShutter")
        user.at(80, main, on_pause_release, "onPauseRelease")
        user.attach(system, proc)

        expected = ExpectedRace(
            field="cameraDevice",
            use_method="onPictureTaken",
            free_method="onPauseRelease",
            verdict=Verdict.HARMFUL,
            note="capture callback races the pause-time camera release",
        )
        return [
            SitePlan(
                "intra-thread",
                "cameraDevice",
                "onPictureTaken",
                "onPauseRelease",
                expected,
            )
        ]
