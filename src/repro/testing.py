"""Hand-authoring of traces, used by the test-suite and the examples.

The :class:`TraceBuilder` provides one method per trace operation so
that scenarios like Figure 4 of the paper can be written down literally
and fed to the happens-before builder without going through the runtime
simulator.  The builder assigns monotonically increasing virtual
timestamps and registers tasks on first use.
"""

from __future__ import annotations

import itertools
from typing import Optional

from .trace import (
    Acquire,
    Address,
    Begin,
    Branch,
    BranchKind,
    Deref,
    End,
    Fork,
    IpcCall,
    IpcHandle,
    IpcReply,
    IpcReturn,
    Join,
    MethodEnter,
    MethodExit,
    Notify,
    ObjectId,
    Perform,
    PtrRead,
    PtrWrite,
    Read,
    Register,
    Release,
    Send,
    SendAtFront,
    TaskInfo,
    TaskKind,
    Trace,
    Wait,
    Write,
)


class TraceBuilder:
    """Imperative construction of a :class:`~repro.trace.Trace`.

    Example — a thread sending two same-delay events (Figure 4b)::

        b = TraceBuilder()
        b.thread("T")
        b.event("A", looper="L", queue="Q")
        b.event("B", looper="L", queue="Q")
        b.begin("T"); b.send("T", "A", delay=1); b.send("T", "B", delay=1)
        b.end("T")
        b.begin("A"); b.end("A")
        b.begin("B"); b.end("B")
        trace = b.build()
    """

    def __init__(self) -> None:
        self._trace = Trace()
        self._clock = itertools.count(1)
        self._ticket = itertools.count(1)
        self._external_seq = itertools.count(0)
        self._queue_of_event: dict = {}

    # -- task declaration ---------------------------------------------------

    def thread(self, task: str, process: str = "app", label: str = "") -> None:
        """Declare a regular thread."""
        self._trace.add_task(
            TaskInfo(task=task, task_kind=TaskKind.THREAD, process=process, label=label)
        )

    def looper(self, task: str, process: str = "app", label: str = "") -> None:
        """Declare a looper thread."""
        self._trace.add_task(
            TaskInfo(task=task, task_kind=TaskKind.LOOPER, process=process, label=label)
        )

    def event(
        self,
        task: str,
        looper: str,
        queue: Optional[str] = None,
        process: str = "app",
        external: bool = False,
        label: str = "",
    ) -> None:
        """Declare an event processed by ``looper``.

        ``queue`` defaults to a queue named after the looper, matching
        the one-queue-per-looper assumption of Section 2.1.
        """
        queue = queue if queue is not None else f"{looper}.queue"
        seq = next(self._external_seq) if external else -1
        self._trace.add_task(
            TaskInfo(
                task=task,
                task_kind=TaskKind.EVENT,
                process=process,
                looper=looper,
                queue=queue,
                external=external,
                external_seq=seq,
                label=label,
            )
        )
        self._queue_of_event[task] = queue

    # -- operations -------------------------------------------------

    def _t(self) -> int:
        return next(self._clock)

    def begin(self, task: str) -> int:
        return self._trace.append(Begin(task=task, time=self._t()))

    def end(self, task: str) -> int:
        return self._trace.append(End(task=task, time=self._t()))

    def read(self, task: str, var: str, site: str = "") -> int:
        return self._trace.append(
            Read(task=task, time=self._t(), var=var, site=site or f"rd:{var}")
        )

    def write(self, task: str, var: str, site: str = "") -> int:
        return self._trace.append(
            Write(task=task, time=self._t(), var=var, site=site or f"wr:{var}")
        )

    def fork(self, task: str, child: str) -> int:
        return self._trace.append(Fork(task=task, time=self._t(), child=child))

    def join(self, task: str, child: str) -> int:
        return self._trace.append(Join(task=task, time=self._t(), child=child))

    def next_ticket(self) -> int:
        """A fresh ticket for pairing :meth:`notify` with :meth:`wait`."""
        return next(self._ticket)

    def notify(self, task: str, monitor: str, ticket: int = -1) -> int:
        """Emit a notify; pair it with a wait via an explicit ticket."""
        return self._trace.append(
            Notify(task=task, time=self._t(), monitor=monitor, ticket=ticket)
        )

    def wait(self, task: str, monitor: str, ticket: int = -1) -> int:
        return self._trace.append(
            Wait(task=task, time=self._t(), monitor=monitor, ticket=ticket)
        )

    def send(self, task: str, event: str, delay: int = 0) -> int:
        queue = self._queue_of_event.get(event, "")
        return self._trace.append(
            Send(task=task, time=self._t(), event=event, delay=delay, queue=queue)
        )

    def send_at_front(self, task: str, event: str) -> int:
        queue = self._queue_of_event.get(event, "")
        return self._trace.append(
            SendAtFront(task=task, time=self._t(), event=event, queue=queue)
        )

    def register(self, task: str, listener: str) -> int:
        return self._trace.append(
            Register(task=task, time=self._t(), listener=listener)
        )

    def perform(self, task: str, listener: str) -> int:
        return self._trace.append(Perform(task=task, time=self._t(), listener=listener))

    def acquire(self, task: str, lock: str) -> int:
        return self._trace.append(Acquire(task=task, time=self._t(), lock=lock))

    def release(self, task: str, lock: str) -> int:
        return self._trace.append(Release(task=task, time=self._t(), lock=lock))

    # -- low-level pointer records ---------------------------------------

    def ptr_read(
        self,
        task: str,
        address: Address,
        object_id: ObjectId,
        method: str = "m",
        pc: int = 0,
    ) -> int:
        return self._trace.append(
            PtrRead(
                task=task,
                time=self._t(),
                address=address,
                object_id=object_id,
                method=method,
                pc=pc,
            )
        )

    def ptr_write(
        self,
        task: str,
        address: Address,
        value: ObjectId,
        container: ObjectId = None,
        method: str = "m",
        pc: int = 0,
    ) -> int:
        return self._trace.append(
            PtrWrite(
                task=task,
                time=self._t(),
                address=address,
                value=value,
                container=container,
                method=method,
                pc=pc,
            )
        )

    def deref(self, task: str, object_id: ObjectId, method: str = "m", pc: int = 0) -> int:
        return self._trace.append(
            Deref(task=task, time=self._t(), object_id=object_id, method=method, pc=pc)
        )

    def branch(
        self,
        task: str,
        branch_kind: BranchKind,
        pc: int,
        target: int,
        object_id: ObjectId,
        method: str = "m",
    ) -> int:
        return self._trace.append(
            Branch(
                task=task,
                time=self._t(),
                branch_kind=branch_kind,
                pc=pc,
                target=target,
                object_id=object_id,
                method=method,
            )
        )

    def method_enter(self, task: str, method: str, return_pc: int = -1) -> int:
        return self._trace.append(
            MethodEnter(task=task, time=self._t(), method=method, return_pc=return_pc)
        )

    def method_exit(
        self, task: str, method: str, return_pc: int = -1, via_exception: bool = False
    ) -> int:
        return self._trace.append(
            MethodExit(
                task=task,
                time=self._t(),
                method=method,
                return_pc=return_pc,
                via_exception=via_exception,
            )
        )

    # -- IPC -------------------------------------------------------------

    def ipc_call(self, task: str, txn: int, service: str = "", oneway: bool = False) -> int:
        return self._trace.append(
            IpcCall(task=task, time=self._t(), txn=txn, service=service, oneway=oneway)
        )

    def ipc_handle(self, task: str, txn: int, service: str = "") -> int:
        return self._trace.append(
            IpcHandle(task=task, time=self._t(), txn=txn, service=service)
        )

    def ipc_reply(self, task: str, txn: int, service: str = "") -> int:
        return self._trace.append(
            IpcReply(task=task, time=self._t(), txn=txn, service=service)
        )

    def ipc_return(self, task: str, txn: int, service: str = "") -> int:
        return self._trace.append(
            IpcReturn(task=task, time=self._t(), txn=txn, service=service)
        )

    # -- finish ------------------------------------------------------------

    def build(self, validate: bool = True) -> Trace:
        """Return the trace (validated by default)."""
        if validate:
            self._trace.validate()
        return self._trace
