"""Deterministic consistent hashing of keys onto shard indexes.

The streaming daemon routes every session to exactly one shard so the
per-session analysis never crosses a process boundary.  The ring must
be *stable*: the same session id maps to the same shard in the router,
in tests, and across interpreter runs — which rules out the built-in
``hash`` (salted per process by ``PYTHONHASHSEED``).  ``blake2b``
digests are used instead.

A classic ring with virtual nodes (rather than ``digest % shards``)
keeps the mapping roughly balanced and minimizes session movement
when a deployment is re-provisioned with a different shard count:
only the keys nearest the new shard's points move.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence

#: virtual nodes per shard; 64 keeps the max/min load ratio small
#: without making ring construction or lookup noticeable
DEFAULT_VNODES = 64


def _point(label: bytes) -> int:
    return int.from_bytes(hashlib.blake2b(label, digest_size=8).digest(), "big")


class ShardRing:
    """Consistent-hash ring mapping string keys to ``0..shards-1``."""

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        points: List[int] = []
        owners: List[int] = []
        pairs = sorted(
            (_point(b"shard-%d/vnode-%d" % (shard, v)), shard)
            for shard in range(shards)
            for v in range(vnodes)
        )
        for point, shard in pairs:
            points.append(point)
            owners.append(shard)
        self._points = points
        self._owners = owners

    def shard_of(self, key: str) -> int:
        """The shard owning ``key`` (deterministic across processes)."""
        if self.shards == 1:
            return 0
        point = _point(key.encode("utf-8"))
        i = bisect.bisect_right(self._points, point)
        if i == len(self._points):
            i = 0
        return self._owners[i]

    def assign(self, keys: Sequence[str]) -> Dict[str, int]:
        """Map every key to its shard in one call (test/debug helper)."""
        return {key: self.shard_of(key) for key in keys}
