"""Process-parallel execution, shared by every multi-process layer.

Before this package existed the multi-process machinery was
fragmented: the batch fan-out lived in ``repro.analysis.pipeline``
(``_fan_out``), the scaling matrix had its own pool plumbing, and the
streaming service had none.  ``repro.parallel`` is the one home for
all of it:

* :func:`fan_out` / :func:`fan_out_profiled` — run one picklable
  function over a sequence of items across worker processes, with
  deterministic item-order results, item-named worker errors (both
  raised exceptions and silent process deaths), and optional
  per-item/per-worker profile collection.  Every batch caller
  (``reproduce_table1``, ``reproduce_figure8``, ``explore_seeds``,
  ``generate_report``, ``scaling_matrix``) runs on it.
* :class:`ShardRing` — deterministic consistent hashing of string
  keys (session ids) onto shard indexes, stable across processes and
  interpreter runs.
* :class:`Worker` / :class:`WorkerPool` — *long-running* worker
  processes with bounded inboxes (backpressure), graceful drain, and
  the same named-death diagnostics as the batch pool.  The sharded
  streaming daemon (``repro.stream.router``) runs on it.
"""

from .executor import (
    FanOutProfile,
    ItemProfile,
    default_jobs,
    fan_out,
    fan_out_profiled,
    pool_size,
    validate_jobs,
)
from .ring import ShardRing
from .workers import (
    DEFAULT_QUEUE_SIZE,
    DEFAULT_TELEMETRY_INTERVAL,
    Worker,
    WorkerCrash,
    WorkerPool,
    WorkerProfile,
    merge_worker_profiles,
)

__all__ = [
    "DEFAULT_QUEUE_SIZE",
    "DEFAULT_TELEMETRY_INTERVAL",
    "FanOutProfile",
    "ItemProfile",
    "ShardRing",
    "Worker",
    "WorkerCrash",
    "WorkerPool",
    "WorkerProfile",
    "default_jobs",
    "fan_out",
    "fan_out_profiled",
    "merge_worker_profiles",
    "pool_size",
    "validate_jobs",
]
