"""The batch fan-out executor (one function, many items, N processes).

Extracted from ``repro.analysis.pipeline._fan_out`` so that every
pool user shares a single contract:

* results come back **in item order**, regardless of which worker
  finishes first — parallel runs are byte-identical to serial ones
  for deterministic workloads;
* a worker exception aborts the fan-out and is re-raised as a
  ``RuntimeError`` **naming the item** whose pipeline failed (chained
  to the original exception);
* a worker *process* that dies without raising — OOM-killed,
  segfaulted native code, ``os._exit`` — surfaces as the same
  item-named ``RuntimeError`` (chained to the ``BrokenProcessPool``)
  instead of the pool's bare, item-less diagnostic;
* ``jobs < 1`` and non-integral ``jobs`` are rejected loudly.

:func:`fan_out_profiled` additionally collects an
:class:`ItemProfile` per item (worker pid, wall seconds), aggregated
by :class:`FanOutProfile` into per-worker totals — the visibility
hook the scaling studies and the daemon's shard diagnostics share.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


def validate_jobs(jobs: int) -> int:
    """Reject non-positive or non-integral worker counts loudly."""
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def default_jobs() -> int:
    """A sensible worker count for this machine (>= 1)."""
    return max(1, os.cpu_count() or 1)


def pool_size(jobs: int, items: int) -> int:
    """The number of processes a fan-out actually needs: never more
    than there are items, never less than one."""
    return max(1, min(jobs, items))


@dataclass
class ItemProfile:
    """One fanned-out item's execution record."""

    label: str
    pid: int
    seconds: float


@dataclass
class FanOutProfile:
    """Per-item and per-worker accounting of one fan-out."""

    label: str
    jobs: int
    items: List[ItemProfile] = field(default_factory=list)

    def by_worker(self) -> Dict[int, Tuple[int, float]]:
        """pid -> (items run, total busy seconds)."""
        totals: Dict[int, Tuple[int, float]] = {}
        for item in self.items:
            count, seconds = totals.get(item.pid, (0, 0.0))
            totals[item.pid] = (count + 1, seconds + item.seconds)
        return totals

    def busy_seconds(self) -> float:
        return sum(item.seconds for item in self.items)

    def format(self) -> str:
        lines = [f"fan-out {self.label!r}: {len(self.items)} items, "
                 f"{self.jobs} jobs requested"]
        for pid, (count, seconds) in sorted(self.by_worker().items()):
            lines.append(f"  worker pid {pid:>7}: {count} items, "
                         f"{seconds:.3f}s busy")
        return "\n".join(lines)


def _timed_call(fn: Callable[..., T], item, args: tuple):
    """Pool wrapper for the profiled path: result plus (pid, seconds)."""
    start = time.perf_counter()
    result = fn(item, *args)
    return result, os.getpid(), time.perf_counter() - start


def _describe_default(item) -> str:
    return f"app {item.name!r}"


def _run(
    fn: Callable[..., T],
    items: Sequence,
    args: tuple,
    jobs: int,
    label: str,
    describe: Optional[Callable[[object], str]],
    profile: Optional[FanOutProfile],
) -> List[T]:
    if describe is None:
        describe = _describe_default
    results: List[T] = [None] * len(items)  # type: ignore[list-item]
    with ProcessPoolExecutor(max_workers=pool_size(jobs, len(items))) as pool:
        if profile is None:
            futures = [
                (i, item, pool.submit(fn, item, *args))
                for i, item in enumerate(items)
            ]
        else:
            futures = [
                (i, item, pool.submit(_timed_call, fn, item, args))
                for i, item in enumerate(items)
            ]
            profile.items = [None] * len(items)  # type: ignore[list-item]
        for i, item, future in futures:
            try:
                outcome = future.result()
            except BrokenProcessPool as exc:
                # The pool cannot tell which process died; the first
                # future to observe the breakage is the best available
                # attribution, and every sibling was aborted with it.
                raise RuntimeError(
                    f"{label} worker process for {describe(item)} died "
                    "before returning a result (killed by the operating "
                    "system — e.g. out of memory — or crashed without "
                    "raising); the remaining items were aborted. "
                    "Rerun with jobs=1 to isolate the failure."
                ) from exc
            except Exception as exc:
                raise RuntimeError(
                    f"{label} worker for {describe(item)} failed: {exc}"
                ) from exc
            if profile is None:
                results[i] = outcome
            else:
                results[i], pid, seconds = outcome
                profile.items[i] = ItemProfile(
                    label=describe(item), pid=pid, seconds=seconds
                )
    return results


def fan_out(
    fn: Callable[..., T],
    items: Sequence,
    args: tuple,
    jobs: int,
    label: str,
    describe: Optional[Callable[[object], str]] = None,
) -> List[T]:
    """Run ``fn(item, *args)`` for every item across ``jobs`` processes.

    See the module docstring for the contract.  Items default to app
    classes — ``describe`` renders the item for error messages
    (``"app 'music'"``); fan-outs over other domains (e.g. the
    per-seed exploration) pass their own.
    """
    return _run(fn, items, args, jobs, label, describe, profile=None)


def fan_out_profiled(
    fn: Callable[..., T],
    items: Sequence,
    args: tuple,
    jobs: int,
    label: str,
    describe: Optional[Callable[[object], str]] = None,
) -> Tuple[List[T], FanOutProfile]:
    """Like :func:`fan_out`, but also collect per-item worker profiles."""
    profile = FanOutProfile(label=label, jobs=jobs)
    results = _run(fn, items, args, jobs, label, describe, profile=profile)
    return results, profile
