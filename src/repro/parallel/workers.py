"""Long-running worker processes with bounded inboxes.

The batch executor (:mod:`repro.parallel.executor`) runs one function
per item and tears the pool down; a streaming daemon needs the
opposite shape — workers that live for the daemon's lifetime, hold
state between messages, and absorb a continuous message flow with
*backpressure* instead of an unbounded queue.  :class:`Worker` wraps
one such process:

* the inbox is a bounded ``multiprocessing.Queue`` — when a shard
  falls behind, :meth:`Worker.send` blocks, which propagates up the
  router to the transport (the socket stops being read, the file tail
  pauses) instead of buffering without limit;
* a worker that dies — killed, crashed native code, an exception the
  handler did not absorb — surfaces as :class:`WorkerCrash` **naming
  the worker** (and carrying the remote traceback when one was
  captured), the long-running analogue of the batch executor's
  item-named errors;
* :meth:`Worker.drain` is the graceful shutdown: a sentinel is
  queued *behind* every pending message, the worker finishes them
  all, runs its ``finish`` hook, and ships back its final result plus
  a :class:`WorkerProfile` (messages handled, busy seconds).

The ``init``/``handle``/``finish`` callables run in the child and must
be picklable (module-level functions).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

#: default inbox bound (messages, not bytes); deep enough to smooth
#: bursts, shallow enough that a stuck shard stalls its producer fast
DEFAULT_QUEUE_SIZE = 256

#: inbox sentinel asking the worker to finish up and report back
_DRAIN = ("__drain__",)


class WorkerCrash(RuntimeError):
    """A long-running worker died; carries the worker's name."""

    def __init__(self, message: str, worker: str, detail: Optional[str] = None):
        super().__init__(message)
        self.worker = worker
        self.detail = detail


@dataclass
class WorkerProfile:
    """One worker's life: what it handled and how long it was busy."""

    name: str
    pid: int
    messages: int
    busy_seconds: float

    def format(self) -> str:
        return (
            f"{self.name} (pid {self.pid}): {self.messages} messages, "
            f"{self.busy_seconds:.3f}s busy"
        )


def _worker_main(name, init, init_args, handle, finish, inbox, outbox) -> None:
    messages = 0
    busy = 0.0
    try:
        state = init(name, *init_args)
        while True:
            msg = inbox.get()
            if msg == _DRAIN:
                break
            start = time.perf_counter()
            handle(state, msg)
            busy += time.perf_counter() - start
            messages += 1
        start = time.perf_counter()
        result = finish(state)
        busy += time.perf_counter() - start
    except BaseException as exc:  # ship the diagnosis, then die
        outbox.put(
            (
                "error",
                name,
                f"{exc.__class__.__name__}: {exc}",
                traceback.format_exc(),
            )
        )
        return
    outbox.put(
        ("ok", name, result, WorkerProfile(name, os.getpid(), messages, busy))
    )


class Worker:
    """One long-running worker process (see the module docstring)."""

    def __init__(
        self,
        name: str,
        init: Callable,
        handle: Callable,
        finish: Callable,
        init_args: tuple = (),
        queue_size: int = DEFAULT_QUEUE_SIZE,
    ) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.name = name
        ctx = multiprocessing.get_context()
        self._inbox = ctx.Queue(maxsize=queue_size)
        self._outbox = ctx.Queue()
        self._process = ctx.Process(
            target=_worker_main,
            args=(name, init, init_args, handle, finish, self._inbox, self._outbox),
            daemon=True,
            name=name,
        )
        self._drained = False
        self._process.start()

    # -- liveness ------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    def _crash(self) -> WorkerCrash:
        """Build the named-death error, recovering the remote traceback
        when the worker managed to ship one before dying."""
        detail = None
        summary = None
        try:
            item = self._outbox.get(timeout=0.5)
            if item[0] == "error":
                _tag, _name, summary, detail = item
        except queue.Empty:
            pass
        if summary:
            message = (
                f"worker {self.name!r} died: {summary} "
                "(its pending sessions were lost)"
            )
        else:
            message = (
                f"worker {self.name!r} died before returning a result "
                "(killed by the operating system — e.g. out of memory — "
                "or crashed without raising); its pending sessions were "
                "lost"
            )
        return WorkerCrash(message, worker=self.name, detail=detail)

    # -- messaging -----------------------------------------------------

    def send(self, msg: Any) -> None:
        """Queue one message; blocks (backpressure) while the inbox is
        full, raising :class:`WorkerCrash` if the worker dies."""
        if self._drained:
            raise RuntimeError(f"worker {self.name!r} already drained")
        while True:
            if not self._process.is_alive():
                raise self._crash()
            try:
                self._inbox.put(msg, timeout=0.2)
                return
            except queue.Full:
                continue

    def request_drain(self) -> None:
        """Queue the drain sentinel behind every pending message."""
        if self._drained:
            raise RuntimeError(f"worker {self.name!r} already drained")
        self.send(_DRAIN)
        self._drained = True

    def collect(self) -> Tuple[Any, WorkerProfile]:
        """Wait out a requested drain: the worker's final result and
        profile, with the process reaped."""
        while True:
            try:
                item = self._outbox.get(timeout=0.2)
                break
            except queue.Empty:
                if not self._process.is_alive():
                    # One last non-blocking look: the worker may have
                    # posted its result (or error) just before exiting.
                    try:
                        item = self._outbox.get(timeout=0.2)
                        break
                    except queue.Empty:
                        raise self._crash() from None
        if item[0] == "error":
            _tag, _name, summary, detail = item
            self._process.join()
            raise WorkerCrash(
                f"worker {self.name!r} failed during drain: {summary}",
                worker=self.name,
                detail=detail,
            )
        _tag, _name, result, profile = item
        self._process.join()
        return result, profile

    def drain(self) -> Tuple[Any, WorkerProfile]:
        """Graceful shutdown: finish pending messages, return the
        worker's final result and profile, and reap the process."""
        self.request_drain()
        return self.collect()

    def terminate(self) -> None:
        """Hard stop (no drain); used on abandon/error paths."""
        self._drained = True
        if self._process.is_alive():
            self._process.terminate()
        self._process.join()


class WorkerPool:
    """A fixed-size fleet of :class:`Worker` processes."""

    def __init__(
        self,
        count: int,
        init: Callable,
        handle: Callable,
        finish: Callable,
        init_args: tuple = (),
        queue_size: int = DEFAULT_QUEUE_SIZE,
        name: str = "worker",
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.workers: List[Worker] = [
            Worker(
                f"{name}-{i}",
                init,
                handle,
                finish,
                init_args=init_args,
                queue_size=queue_size,
            )
            for i in range(count)
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def send(self, index: int, msg: Any) -> None:
        self.workers[index].send(msg)

    def drain(self) -> List[Tuple[Any, WorkerProfile]]:
        """Drain every worker; results come back in worker order.

        Workers are all asked to finish *before* any result is
        collected, so the drains overlap instead of serializing.
        """
        outcomes: List[Tuple[Any, WorkerProfile]] = []
        try:
            for worker in self.workers:
                worker.request_drain()
            for worker in self.workers:
                outcomes.append(worker.collect())
        except WorkerCrash:
            for worker in self.workers:
                worker.terminate()
            raise
        return outcomes

    def terminate(self) -> None:
        for worker in self.workers:
            worker.terminate()
