"""Long-running worker processes with bounded inboxes.

The batch executor (:mod:`repro.parallel.executor`) runs one function
per item and tears the pool down; a streaming daemon needs the
opposite shape — workers that live for the daemon's lifetime, hold
state between messages, and absorb a continuous message flow with
*backpressure* instead of an unbounded queue.  :class:`Worker` wraps
one such process:

* the inbox is a bounded ``multiprocessing.Queue`` — when a shard
  falls behind, :meth:`Worker.send` blocks, which propagates up the
  router to the transport (the socket stops being read, the file tail
  pauses) instead of buffering without limit;
* a worker that dies — killed, crashed native code, an exception the
  handler did not absorb — surfaces as :class:`WorkerCrash` **naming
  the worker** (and carrying the remote traceback when one was
  captured), the long-running analogue of the batch executor's
  item-named errors;
* :meth:`Worker.drain` is the graceful shutdown: a sentinel is
  queued *behind* every pending message, the worker finishes them
  all, runs its ``finish`` hook, and ships back its final result plus
  a :class:`WorkerProfile` (messages handled, busy seconds).

A worker constructed with a ``telemetry`` hook additionally ships
periodic snapshots while it runs: whenever at least
``telemetry_interval`` seconds have passed since the last shipment —
after a handled message, or on waking from an idle inbox wait — the
worker posts ``("metrics", name, telemetry(state))`` on its outbox, so
a quiescent shard still reports fresh gauges.
The parent pulls them with :meth:`Worker.poll_telemetry` (the router's
live ``/metrics`` endpoint); the drain/crash paths skip telemetry
items transparently, so observability never changes shutdown
semantics.  A telemetry hook that raises is disabled for the rest of
the worker's life rather than killing the analysis.

The ``init``/``handle``/``finish``/``telemetry`` callables run in the
child and must be picklable (module-level functions).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

#: default inbox bound (messages, not bytes); deep enough to smooth
#: bursts, shallow enough that a stuck shard stalls its producer fast
DEFAULT_QUEUE_SIZE = 256

#: inbox sentinel asking the worker to finish up and report back
_DRAIN = ("__drain__",)

#: seconds between telemetry shipments from a worker with a hook
DEFAULT_TELEMETRY_INTERVAL = 0.5


class WorkerCrash(RuntimeError):
    """A long-running worker died; carries the worker's name."""

    def __init__(self, message: str, worker: str, detail: Optional[str] = None):
        super().__init__(message)
        self.worker = worker
        self.detail = detail


@dataclass
class WorkerProfile:
    """One worker's life: what it handled and how long it was busy."""

    name: str
    pid: int
    messages: int
    busy_seconds: float

    def format(self) -> str:
        return (
            f"{self.name} (pid {self.pid}): {self.messages} messages, "
            f"{self.busy_seconds:.3f}s busy"
        )


def merge_worker_profiles(profiles) -> WorkerProfile:
    """Aggregate many workers' accounting into one fleet-wide profile.

    ``messages`` and ``busy_seconds`` sum — the merge is associative
    and order-independent over those totals, with the empty merge as
    identity — while the per-process identity fields collapse to the
    neutral ``("merged", 0)``; re-merging merged profiles therefore
    yields the same totals for any shard partition.
    """
    messages = 0
    busy = 0.0
    for profile in profiles:
        messages += profile.messages
        busy += profile.busy_seconds
    return WorkerProfile(
        name="merged", pid=0, messages=messages, busy_seconds=busy
    )


def _worker_main(name, init, init_args, handle, finish, inbox, outbox,
                 telemetry=None, telemetry_interval=DEFAULT_TELEMETRY_INTERVAL
                 ) -> None:
    messages = 0
    busy = 0.0
    last_shipment = time.monotonic()
    try:
        state = init(name, *init_args)
        while True:
            if telemetry is None:
                msg = inbox.get()
            else:
                # Wake at the shipment cadence even when idle, so a
                # quiescent shard still exports fresh telemetry.
                try:
                    msg = inbox.get(timeout=telemetry_interval)
                except queue.Empty:
                    msg = None
            if msg == _DRAIN:
                break
            if msg is not None:
                start = time.perf_counter()
                handle(state, msg)
                busy += time.perf_counter() - start
                messages += 1
            if telemetry is not None:
                now = time.monotonic()
                if now - last_shipment >= telemetry_interval:
                    last_shipment = now
                    try:
                        outbox.put(("metrics", name, telemetry(state)))
                    except Exception:
                        # A broken telemetry hook must not kill the
                        # shard's analysis; stop shipping instead.
                        telemetry = None
        start = time.perf_counter()
        result = finish(state)
        busy += time.perf_counter() - start
    except BaseException as exc:  # ship the diagnosis, then die
        outbox.put(
            (
                "error",
                name,
                f"{exc.__class__.__name__}: {exc}",
                traceback.format_exc(),
            )
        )
        return
    outbox.put(
        ("ok", name, result, WorkerProfile(name, os.getpid(), messages, busy))
    )


class Worker:
    """One long-running worker process (see the module docstring)."""

    def __init__(
        self,
        name: str,
        init: Callable,
        handle: Callable,
        finish: Callable,
        init_args: tuple = (),
        queue_size: int = DEFAULT_QUEUE_SIZE,
        telemetry: Optional[Callable] = None,
        telemetry_interval: float = DEFAULT_TELEMETRY_INTERVAL,
    ) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if telemetry_interval <= 0:
            raise ValueError(
                f"telemetry_interval must be > 0, got {telemetry_interval}"
            )
        self.name = name
        self.queue_size = queue_size
        #: the most recent telemetry payload pulled off the outbox
        self.latest_telemetry: Any = None
        self._pending_result: Any = None
        ctx = multiprocessing.get_context()
        self._inbox = ctx.Queue(maxsize=queue_size)
        self._outbox = ctx.Queue()
        self._process = ctx.Process(
            target=_worker_main,
            args=(name, init, init_args, handle, finish, self._inbox,
                  self._outbox, telemetry, telemetry_interval),
            daemon=True,
            name=name,
        )
        self._drained = False
        self._process.start()

    # -- liveness ------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    def _crash(self) -> WorkerCrash:
        """Build the named-death error, recovering the remote traceback
        when the worker managed to ship one before dying."""
        detail = None
        summary = None
        try:
            while True:
                item = self._outbox.get(timeout=0.5)
                if item[0] == "metrics":
                    self.latest_telemetry = item[2]
                    continue
                if item[0] == "error":
                    _tag, _name, summary, detail = item
                break
        except queue.Empty:
            pass
        if summary:
            message = (
                f"worker {self.name!r} died: {summary} "
                "(its pending sessions were lost)"
            )
        else:
            message = (
                f"worker {self.name!r} died before returning a result "
                "(killed by the operating system — e.g. out of memory — "
                "or crashed without raising); its pending sessions were "
                "lost"
            )
        return WorkerCrash(message, worker=self.name, detail=detail)

    # -- messaging -----------------------------------------------------

    def send(self, msg: Any) -> None:
        """Queue one message; blocks (backpressure) while the inbox is
        full, raising :class:`WorkerCrash` if the worker dies."""
        if self._drained:
            raise RuntimeError(f"worker {self.name!r} already drained")
        while True:
            if not self._process.is_alive():
                raise self._crash()
            try:
                self._inbox.put(msg, timeout=0.2)
                return
            except queue.Full:
                continue

    def request_drain(self) -> None:
        """Queue the drain sentinel behind every pending message."""
        if self._drained:
            raise RuntimeError(f"worker {self.name!r} already drained")
        self.send(_DRAIN)
        self._drained = True

    # -- telemetry -----------------------------------------------------

    def poll_telemetry(self) -> Any:
        """Drain any shipped telemetry snapshots off the outbox and
        return the most recent one (``None`` until the worker's first
        shipment).  Non-blocking; a final result that surfaces here is
        stashed for :meth:`collect`."""
        while True:
            try:
                item = self._outbox.get_nowait()
            except queue.Empty:
                return self.latest_telemetry
            if item[0] == "metrics":
                self.latest_telemetry = item[2]
            else:
                self._pending_result = item
                return self.latest_telemetry

    def inbox_depth(self) -> int:
        """Messages currently queued for this worker (the backpressure
        gauge); ``-1`` where the platform cannot say (``qsize`` is
        unimplemented on some BSDs)."""
        try:
            return self._inbox.qsize()
        except NotImplementedError:  # pragma: no cover - platform gap
            return -1

    def _next_result_item(self, timeout: float) -> tuple:
        """The next non-telemetry outbox item (telemetry is stashed);
        raises ``queue.Empty`` on timeout like a bare ``get``."""
        while True:
            item = self._outbox.get(timeout=timeout)
            if item[0] == "metrics":
                self.latest_telemetry = item[2]
                continue
            return item

    def collect(self) -> Tuple[Any, WorkerProfile]:
        """Wait out a requested drain: the worker's final result and
        profile, with the process reaped."""
        item = self._pending_result
        self._pending_result = None
        while item is None:
            try:
                item = self._next_result_item(timeout=0.2)
                break
            except queue.Empty:
                if not self._process.is_alive():
                    # One last non-blocking look: the worker may have
                    # posted its result (or error) just before exiting.
                    try:
                        item = self._next_result_item(timeout=0.2)
                        break
                    except queue.Empty:
                        raise self._crash() from None
        if item[0] == "error":
            _tag, _name, summary, detail = item
            self._process.join()
            raise WorkerCrash(
                f"worker {self.name!r} failed during drain: {summary}",
                worker=self.name,
                detail=detail,
            )
        _tag, _name, result, profile = item
        self._process.join()
        return result, profile

    def drain(self) -> Tuple[Any, WorkerProfile]:
        """Graceful shutdown: finish pending messages, return the
        worker's final result and profile, and reap the process."""
        self.request_drain()
        return self.collect()

    def terminate(self) -> None:
        """Hard stop (no drain); used on abandon/error paths."""
        self._drained = True
        if self._process.is_alive():
            self._process.terminate()
        self._process.join()


class WorkerPool:
    """A fixed-size fleet of :class:`Worker` processes."""

    def __init__(
        self,
        count: int,
        init: Callable,
        handle: Callable,
        finish: Callable,
        init_args: tuple = (),
        queue_size: int = DEFAULT_QUEUE_SIZE,
        name: str = "worker",
        telemetry: Optional[Callable] = None,
        telemetry_interval: float = DEFAULT_TELEMETRY_INTERVAL,
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.workers: List[Worker] = [
            Worker(
                f"{name}-{i}",
                init,
                handle,
                finish,
                init_args=init_args,
                queue_size=queue_size,
                telemetry=telemetry,
                telemetry_interval=telemetry_interval,
            )
            for i in range(count)
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def send(self, index: int, msg: Any) -> None:
        self.workers[index].send(msg)

    def telemetry_snapshots(self) -> List[Any]:
        """Latest telemetry per worker, in worker order (``None`` for
        workers that have not shipped yet)."""
        return [worker.poll_telemetry() for worker in self.workers]

    def inbox_depths(self) -> List[int]:
        """Per-worker inbox depths, in worker order."""
        return [worker.inbox_depth() for worker in self.workers]

    def drain(self) -> List[Tuple[Any, WorkerProfile]]:
        """Drain every worker; results come back in worker order.

        Workers are all asked to finish *before* any result is
        collected, so the drains overlap instead of serializing.
        """
        outcomes: List[Tuple[Any, WorkerProfile]] = []
        try:
            for worker in self.workers:
                worker.request_drain()
            for worker in self.workers:
                outcomes.append(worker.collect())
        except WorkerCrash:
            for worker in self.workers:
                worker.terminate()
            raise
        return outcomes

    def terminate(self) -> None:
        for worker in self.workers:
            worker.terminate()
