"""CAFA — race detection for event-driven mobile applications.

A reproduction of the PLDI 2014 paper.  The package is organised as:

* :mod:`repro.trace` — the trace operation vocabulary (Figure 3 plus
  the low-level records of Section 5) and serialization;
* :mod:`repro.runtime` — a discrete-event simulator of the Android
  event-driven programming model (loopers, event queues, threads,
  monitors, listeners, Binder IPC, external inputs) with a tracer;
* :mod:`repro.dvm` — a miniature Dalvik-like register VM whose
  interpreter emits the pointer/branch records CAFA instruments;
* :mod:`repro.hb` — the causality model of Section 3 and the offline
  happens-before graph construction of Section 4.2;
* :mod:`repro.detect` — the use-free race detector with the if-guard
  and intra-event-allocation heuristics, plus the conventional and
  low-level baselines (Section 4);
* :mod:`repro.apps` — workload models of the ten applications of the
  evaluation (Section 6.1);
* :mod:`repro.analysis` — the end-to-end pipeline reproducing Table 1
  and Figure 8.
"""

__version__ = "1.0.0"

from .hb import (
    CAFA_MODEL,
    CONVENTIONAL_MODEL,
    NO_QUEUE_MODEL,
    HappensBefore,
    ModelConfig,
    build_happens_before,
)
from .trace import Trace

__all__ = [
    "CAFA_MODEL",
    "CONVENTIONAL_MODEL",
    "NO_QUEUE_MODEL",
    "HappensBefore",
    "ModelConfig",
    "Trace",
    "build_happens_before",
    "__version__",
]
