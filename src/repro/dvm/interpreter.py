"""The instrumented bytecode interpreter.

This is the stand-in for CAFA's modified portable interpreter
(Section 5.3): every executed instruction that the real tool logs is
reported to a :class:`DvmSink` —

* ``iget-object``/``sget-object`` → a pointer read record;
* ``iput-object``/``sput-object`` → a pointer write record (a *free*
  when the written value is null, an *allocation* otherwise);
* any field access or virtual invocation → a dereference record for
  the container/receiver object;
* ``if-eqz`` (not taken), ``if-nez`` (taken), ``if-eq`` (taken) on
  references → a branch record certifying the pointer non-null;
* method invocation and return (incl. exceptional exit) → calling
  context records;
* scalar field accesses → plain read/write records for the low-level
  race detector.

Dereferencing null raises :class:`DvmNullPointerError`, which unwinds
through frames (emitting exceptional method exits) unless a method
declares a catch-all NPE handler.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Sequence

from ..trace import Address, BranchKind
from .heap import Heap, HeapArray, HeapObject, is_reference, object_id_of
from .instructions import (
    AGet,
    AGetObject,
    APut,
    APutObject,
    BinOp,
    Const,
    ConstNull,
    Goto,
    IfEq,
    IfEqz,
    IfLt,
    IfNez,
    IGet,
    IGetObject,
    Invoke,
    IPut,
    IPutObject,
    Move,
    NewArray,
    NewInstance,
    Nop,
    Return,
    SGet,
    SGetObject,
    SPut,
    SPutObject,
)
from .method import Method, Program


class DvmError(Exception):
    """Base class for simulated VM errors."""


class DvmNullPointerError(DvmError):
    """A simulated ``NullPointerException`` (dereference of null)."""

    def __init__(self, method: str, pc: int):
        self.method = method
        self.pc = pc
        super().__init__(f"null dereference in {method} at pc {pc}")


class DvmStepLimitError(DvmError):
    """The per-invocation step budget was exhausted (runaway loop)."""


class DvmSink(Protocol):
    """Receiver of instrumentation records.

    The runtime's task context implements this to stamp records with
    the current task and virtual time; :class:`CollectingSink` is a
    standalone implementation for unit tests.
    """

    def ptr_read(self, address: Address, object_id: Optional[int], method: str, pc: int) -> None: ...

    def ptr_write(
        self,
        address: Address,
        value: Optional[int],
        container: Optional[int],
        method: str,
        pc: int,
    ) -> None: ...

    def deref(self, object_id: int, method: str, pc: int) -> None: ...

    def branch(
        self, kind: BranchKind, pc: int, target: int, object_id: Optional[int], method: str
    ) -> None: ...

    def method_enter(self, method: str, return_pc: int) -> None: ...

    def method_exit(self, method: str, return_pc: int, via_exception: bool) -> None: ...

    def read(self, var: str, site: str) -> None: ...

    def write(self, var: str, site: str) -> None: ...


class NullSink:
    """Discards all records (uninstrumented execution, Figure 8 baseline)."""

    def ptr_read(self, address, object_id, method, pc):  # noqa: D102
        pass

    def ptr_write(self, address, value, container, method, pc):  # noqa: D102
        pass

    def deref(self, object_id, method, pc):  # noqa: D102
        pass

    def branch(self, kind, pc, target, object_id, method):  # noqa: D102
        pass

    def method_enter(self, method, return_pc):  # noqa: D102
        pass

    def method_exit(self, method, return_pc, via_exception):  # noqa: D102
        pass

    def read(self, var, site):  # noqa: D102
        pass

    def write(self, var, site):  # noqa: D102
        pass


class CollectingSink(NullSink):
    """Collects records as ``(kind, payload)`` tuples, for tests."""

    def __init__(self) -> None:
        self.records: List[tuple] = []

    def ptr_read(self, address, object_id, method, pc):
        self.records.append(("ptr_read", address, object_id, method, pc))

    def ptr_write(self, address, value, container, method, pc):
        self.records.append(("ptr_write", address, value, container, method, pc))

    def deref(self, object_id, method, pc):
        self.records.append(("deref", object_id, method, pc))

    def branch(self, kind, pc, target, object_id, method):
        self.records.append(("branch", kind, pc, target, object_id, method))

    def method_enter(self, method, return_pc):
        self.records.append(("method_enter", method, return_pc))

    def method_exit(self, method, return_pc, via_exception):
        self.records.append(("method_exit", method, return_pc, via_exception))

    def read(self, var, site):
        self.records.append(("read", var, site))

    def write(self, var, site):
        self.records.append(("write", var, site))

    def of_kind(self, kind: str) -> List[tuple]:
        return [r for r in self.records if r[0] == kind]


def _scalar_var(container: HeapObject, field: str) -> str:
    return f"field:{container.object_id}.{field}"


def _static_scalar_var(cls: str, field: str) -> str:
    return f"static:{cls}.{field}"


class Interpreter:
    """Executes methods of a :class:`~repro.dvm.method.Program`.

    One interpreter instance is shared by a process; it is re-entrant
    with respect to :meth:`invoke` (intrinsics may call back).
    """

    #: default per-invocation instruction budget
    DEFAULT_STEP_LIMIT = 100_000

    def __init__(
        self,
        program: Program,
        heap: Heap,
        sink: Optional[DvmSink] = None,
        step_limit: int = DEFAULT_STEP_LIMIT,
    ) -> None:
        self.program = program
        self.heap = heap
        self.sink: DvmSink = sink if sink is not None else NullSink()
        self.step_limit = step_limit
        #: total executed instruction count (performance accounting)
        self.executed = 0

    # -- public API -------------------------------------------------------

    def invoke(self, name: str, args: Sequence[Any] = (), return_pc: int = -1) -> Any:
        """Invoke method or intrinsic ``name`` with ``args``."""
        intrinsic = self.program.intrinsic(name)
        if intrinsic is not None:
            return intrinsic(list(args))
        method = self.program.method(name)
        if method is None:
            raise DvmError(f"unresolved method {name!r}")
        if len(args) != method.param_count:
            raise DvmError(
                f"{name} expects {method.param_count} args, got {len(args)}"
            )
        return self._run(method, list(args), return_pc)

    # -- execution ---------------------------------------------------------

    def _run(self, method: Method, args: List[Any], return_pc: int) -> Any:
        self.sink.method_enter(method.name, return_pc)
        registers: Dict[int, Any] = {i: v for i, v in enumerate(args)}
        pc = 0
        budget = self.step_limit
        code = method.code
        size = len(code)
        try:
            while pc < size:
                if budget <= 0:
                    raise DvmStepLimitError(
                        f"step limit exceeded in {method.name}"
                    )
                budget -= 1
                self.executed += 1
                instr = code[pc]
                try:
                    next_pc, returned, value = self._step(method, registers, pc, instr)
                except DvmNullPointerError:
                    if method.catch_npe_target is not None:
                        pc = method.catch_npe_target
                        continue
                    raise
                if returned:
                    self.sink.method_exit(method.name, return_pc, via_exception=False)
                    return value
                pc = next_pc
        except DvmNullPointerError:
            self.sink.method_exit(method.name, return_pc, via_exception=True)
            raise
        # Fell off the end of the code array: implicit void return.
        self.sink.method_exit(method.name, return_pc, via_exception=False)
        return None

    def _step(self, method, registers, pc, instr):
        """Execute one instruction; returns (next_pc, returned, value)."""
        sink = self.sink
        heap = self.heap
        name = method.name

        if isinstance(instr, Const):
            registers[instr.dst] = instr.value
        elif isinstance(instr, ConstNull):
            registers[instr.dst] = None
        elif isinstance(instr, Move):
            registers[instr.dst] = registers.get(instr.src)
        elif isinstance(instr, NewInstance):
            registers[instr.dst] = heap.new(instr.cls)
        elif isinstance(instr, IGet):
            container = self._require_object(registers.get(instr.obj), name, pc)
            sink.deref(container.object_id, name, pc)
            sink.read(_scalar_var(container, instr.field), f"{name}:{pc}")
            registers[instr.dst] = container.fields.get(instr.field)
        elif isinstance(instr, IPut):
            container = self._require_object(registers.get(instr.obj), name, pc)
            sink.deref(container.object_id, name, pc)
            sink.write(_scalar_var(container, instr.field), f"{name}:{pc}")
            container.fields[instr.field] = registers.get(instr.src)
        elif isinstance(instr, IGetObject):
            container = self._require_object(registers.get(instr.obj), name, pc)
            sink.deref(container.object_id, name, pc)
            value = container.fields.get(instr.field)
            address = Heap.field_address(container, instr.field)
            sink.ptr_read(address, object_id_of(value), name, pc)
            registers[instr.dst] = value
        elif isinstance(instr, IPutObject):
            container = self._require_object(registers.get(instr.obj), name, pc)
            sink.deref(container.object_id, name, pc)
            value = registers.get(instr.src)
            if not is_reference(value):
                raise DvmError(
                    f"iput-object of non-reference {value!r} in {name} at {pc}"
                )
            address = Heap.field_address(container, instr.field)
            sink.ptr_write(
                address, object_id_of(value), container.object_id, name, pc
            )
            container.fields[instr.field] = value
        elif isinstance(instr, NewArray):
            length = registers.get(instr.size, 0)
            if not isinstance(length, int) or length < 0:
                raise DvmError(f"bad array length {length!r} in {name} at {pc}")
            registers[instr.dst] = heap.new_array(length)
        elif isinstance(instr, AGet):
            array = self._require_array(registers.get(instr.arr), name, pc)
            index = self._check_bounds(array, registers.get(instr.idx), name, pc)
            sink.deref(array.object_id, name, pc)
            sink.read(f"arr:{array.object_id}[{index}]", f"{name}:{pc}")
            registers[instr.dst] = array.fields.get(index)
        elif isinstance(instr, APut):
            array = self._require_array(registers.get(instr.arr), name, pc)
            index = self._check_bounds(array, registers.get(instr.idx), name, pc)
            sink.deref(array.object_id, name, pc)
            sink.write(f"arr:{array.object_id}[{index}]", f"{name}:{pc}")
            array.fields[index] = registers.get(instr.src)
        elif isinstance(instr, AGetObject):
            array = self._require_array(registers.get(instr.arr), name, pc)
            index = self._check_bounds(array, registers.get(instr.idx), name, pc)
            sink.deref(array.object_id, name, pc)
            value = array.fields.get(index)
            address = ("obj", array.object_id, index)
            sink.ptr_read(address, object_id_of(value), name, pc)
            registers[instr.dst] = value
        elif isinstance(instr, APutObject):
            array = self._require_array(registers.get(instr.arr), name, pc)
            index = self._check_bounds(array, registers.get(instr.idx), name, pc)
            sink.deref(array.object_id, name, pc)
            value = registers.get(instr.src)
            if not is_reference(value):
                raise DvmError(
                    f"aput-object of non-reference {value!r} in {name} at {pc}"
                )
            address = ("obj", array.object_id, index)
            sink.ptr_write(address, object_id_of(value), array.object_id, name, pc)
            array.fields[index] = value
        elif isinstance(instr, SGet):
            sink.read(_static_scalar_var(instr.cls, instr.field), f"{name}:{pc}")
            registers[instr.dst] = heap.get_static(instr.cls, instr.field)
        elif isinstance(instr, SPut):
            sink.write(_static_scalar_var(instr.cls, instr.field), f"{name}:{pc}")
            heap.put_static(instr.cls, instr.field, registers.get(instr.src))
        elif isinstance(instr, SGetObject):
            value = heap.get_static(instr.cls, instr.field)
            address = Heap.static_address(instr.cls, instr.field)
            sink.ptr_read(address, object_id_of(value), name, pc)
            registers[instr.dst] = value
        elif isinstance(instr, SPutObject):
            value = registers.get(instr.src)
            if not is_reference(value):
                raise DvmError(
                    f"sput-object of non-reference {value!r} in {name} at {pc}"
                )
            address = Heap.static_address(instr.cls, instr.field)
            sink.ptr_write(address, object_id_of(value), None, name, pc)
            heap.put_static(instr.cls, instr.field, value)
        elif isinstance(instr, Invoke):
            call_args: List[Any] = []
            if instr.receiver is not None:
                receiver = self._require_object(
                    registers.get(instr.receiver), name, pc
                )
                sink.deref(receiver.object_id, name, pc)
                call_args.append(receiver)
            call_args.extend(registers.get(a) for a in instr.args)
            result = self.invoke(instr.method, call_args, return_pc=pc)
            if instr.dst is not None:
                registers[instr.dst] = result
        elif isinstance(instr, Return):
            value = registers.get(instr.src) if instr.src is not None else None
            return pc + 1, True, value
        elif isinstance(instr, Goto):
            return instr.target, False, None
        elif isinstance(instr, IfEqz):
            value = registers.get(instr.a)
            taken = (value is None) if is_reference(value) else (value == 0)
            if is_reference(value) and not taken:
                # Not taken => pointer non-null on the fall-through path.
                sink.branch(
                    BranchKind.IF_EQZ, pc, instr.target, object_id_of(value), name
                )
            return (instr.target if taken else pc + 1), False, None
        elif isinstance(instr, IfNez):
            value = registers.get(instr.a)
            taken = (value is not None) if is_reference(value) else (value != 0)
            if is_reference(value) and taken:
                # Taken => pointer non-null on the target path.
                sink.branch(
                    BranchKind.IF_NEZ, pc, instr.target, object_id_of(value), name
                )
            return (instr.target if taken else pc + 1), False, None
        elif isinstance(instr, IfEq):
            a, b = registers.get(instr.a), registers.get(instr.b)
            taken = a is b if (is_reference(a) and is_reference(b)) else a == b
            if is_reference(a) and is_reference(b) and taken and a is not None:
                sink.branch(
                    BranchKind.IF_EQ, pc, instr.target, object_id_of(a), name
                )
            return (instr.target if taken else pc + 1), False, None
        elif isinstance(instr, IfLt):
            a, b = registers.get(instr.a, 0), registers.get(instr.b, 0)
            return (instr.target if a < b else pc + 1), False, None
        elif isinstance(instr, BinOp):
            a, b = registers.get(instr.a, 0), registers.get(instr.b, 0)
            if instr.op == "+":
                registers[instr.dst] = a + b
            elif instr.op == "-":
                registers[instr.dst] = a - b
            elif instr.op == "*":
                registers[instr.dst] = a * b
            else:
                raise DvmError(f"unknown binop {instr.op!r}")
        elif isinstance(instr, Nop):
            pass
        else:  # pragma: no cover - exhaustive over the instruction set
            raise DvmError(f"unknown instruction {instr!r}")
        return pc + 1, False, None

    @staticmethod
    def _require_object(value: Any, method: str, pc: int) -> HeapObject:
        if isinstance(value, HeapObject):
            return value
        if value is None:
            raise DvmNullPointerError(method, pc)
        raise DvmError(f"dereference of non-object {value!r} in {method} at {pc}")

    @staticmethod
    def _require_array(value: Any, method: str, pc: int) -> HeapArray:
        if isinstance(value, HeapArray):
            return value
        if value is None:
            raise DvmNullPointerError(method, pc)
        raise DvmError(f"array access on non-array {value!r} in {method} at {pc}")

    @staticmethod
    def _check_bounds(array: HeapArray, index: Any, method: str, pc: int) -> int:
        if not isinstance(index, int):
            raise DvmError(f"non-integer array index {index!r} in {method} at {pc}")
        if not 0 <= index < array.length:
            raise DvmError(
                f"array index {index} out of bounds [0, {array.length}) "
                f"in {method} at {pc}"
            )
        return index
