"""Methods and programs for the mini-DVM."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .instructions import Instruction


@dataclass
class Method:
    """A compiled method: a name, parameter count, and a code array.

    Parameters arrive in registers ``0 .. param_count-1`` (for virtual
    methods register 0 is the receiver).  ``catch_npe_target`` models a
    catch-all ``try { ... } catch (NullPointerException) { ... }``
    around the body: when a simulated NPE unwinds to this method, the
    interpreter transfers control to that pc instead of propagating
    (ToDoList's bug "fix" in Section 6.2 is exactly this pattern).
    """

    name: str
    param_count: int = 0
    code: List[Instruction] = field(default_factory=list)
    catch_npe_target: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.code:
            raise ValueError(f"method {self.name!r} has empty code")

    def __len__(self) -> int:
        return len(self.code)


#: An intrinsic: native code callable from DVM ``Invoke`` instructions.
#: Receives the (already evaluated) argument values and returns the
#: call's result.  Intrinsics are how handler bytecode talks to the
#: runtime (sending events, RPCs, logging).
Intrinsic = Callable[[Sequence[object]], object]


class Program:
    """A registry of methods and intrinsics (one per process image)."""

    def __init__(self) -> None:
        self._methods: Dict[str, Method] = {}
        self._intrinsics: Dict[str, Intrinsic] = {}

    def add_method(self, method: Method) -> Method:
        if method.name in self._methods or method.name in self._intrinsics:
            raise ValueError(f"duplicate method {method.name!r}")
        self._methods[method.name] = method
        return method

    def add_intrinsic(self, name: str, fn: Intrinsic) -> None:
        if name in self._methods or name in self._intrinsics:
            raise ValueError(f"duplicate method {name!r}")
        self._intrinsics[name] = fn

    def method(self, name: str) -> Optional[Method]:
        return self._methods.get(name)

    def intrinsic(self, name: str) -> Optional[Intrinsic]:
        return self._intrinsics.get(name)

    def has(self, name: str) -> bool:
        return name in self._methods or name in self._intrinsics

    def method_names(self) -> List[str]:
        return sorted(self._methods)
