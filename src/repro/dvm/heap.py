"""The simulated object heap.

Mirrors the relevant part of the Dalvik VM: every object carries a
unique id assigned at creation ("We assign a unique object ID for each
object created by the virtual machine" — Section 5.2), instance fields
live in the object, and static fields live in per-class slots.

A *pointer address* in the sense of Section 5.3 is a concrete field
slot — either ``("obj", <container id>, <field>)`` or
``("static", <class>, <field>)``.  Frees and allocations are writes of
null / non-null object references to such slots.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from ..trace import Address


class HeapObject:
    """One heap object: a unique id, a class name, and fields."""

    __slots__ = ("object_id", "cls", "fields")

    def __init__(self, object_id: int, cls: str) -> None:
        self.object_id = object_id
        self.cls = cls
        self.fields: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return f"<{self.cls}#{self.object_id}>"


class HeapArray(HeapObject):
    """A fixed-length array object; elements live in ``fields`` keyed
    by integer index (slot addresses are ``("obj", id, index)``)."""

    __slots__ = ("length",)

    def __init__(self, object_id: int, length: int) -> None:
        super().__init__(object_id, f"array[{length}]")
        self.length = length
        for i in range(length):
            self.fields[i] = None

    def __repr__(self) -> str:
        return f"<array#{self.object_id} len={self.length}>"


class Heap:
    """Object allocator plus static field storage for one process."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._objects: Dict[int, HeapObject] = {}
        self._statics: Dict[str, Dict[str, Any]] = {}

    def new(self, cls: str) -> HeapObject:
        """Allocate a fresh object of class ``cls``."""
        obj = HeapObject(next(self._ids), cls)
        self._objects[obj.object_id] = obj
        return obj

    def new_array(self, length: int) -> HeapArray:
        """Allocate a fresh array of null references."""
        if length < 0:
            raise ValueError(f"negative array length {length}")
        arr = HeapArray(next(self._ids), length)
        self._objects[arr.object_id] = arr
        return arr

    def get(self, object_id: int) -> HeapObject:
        return self._objects[object_id]

    @property
    def object_count(self) -> int:
        return len(self._objects)

    # -- field storage ------------------------------------------------------

    def get_static(self, cls: str, field: str) -> Any:
        return self._statics.get(cls, {}).get(field)

    def put_static(self, cls: str, field: str, value: Any) -> None:
        self._statics.setdefault(cls, {})[field] = value

    # -- addresses -----------------------------------------------------

    @staticmethod
    def field_address(container: HeapObject, field: str) -> Address:
        """The pointer address of an instance field slot."""
        return ("obj", container.object_id, field)

    @staticmethod
    def static_address(cls: str, field: str) -> Address:
        """The pointer address of a static field slot."""
        return ("static", cls, field)


def object_id_of(value: Any) -> Optional[int]:
    """The object id of a reference value (``None`` encodes null)."""
    if value is None:
        return None
    if isinstance(value, HeapObject):
        return value.object_id
    raise TypeError(f"not a reference value: {value!r}")


def is_reference(value: Any) -> bool:
    """True for values the tracer should treat as object pointers."""
    return value is None or isinstance(value, HeapObject)
