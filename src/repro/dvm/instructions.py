"""The miniature Dalvik-like instruction set.

A register machine with the instruction subset CAFA instruments
(Section 5.3): object-pointer loads/stores (``iget-object`` /
``iput-object`` and their static variants), scalar field accesses,
method invocation (a dereference of the receiver), the three guarded
branches (``if-eqz``, ``if-nez``, ``if-eq``), and enough control flow
and arithmetic to write realistic handler bodies.

Instructions are plain dataclasses; the interpreter dispatches on type.
Branch targets are resolved instruction indices (pcs) — the
:class:`~repro.dvm.assembler.MethodBuilder` resolves symbolic labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence


@dataclass(frozen=True)
class Instruction:
    """Base class; ``pc`` is implied by position in the method body."""


# -- data movement -----------------------------------------------------------


@dataclass(frozen=True)
class Const(Instruction):
    """``const vDst, literal`` — load an int/str literal."""

    dst: int
    value: Any


@dataclass(frozen=True)
class ConstNull(Instruction):
    """``const vDst, null``."""

    dst: int


@dataclass(frozen=True)
class Move(Instruction):
    """``move vDst, vSrc``."""

    dst: int
    src: int


@dataclass(frozen=True)
class NewInstance(Instruction):
    """``new-instance vDst, Cls`` — allocate a fresh object."""

    dst: int
    cls: str


# -- instance fields ---------------------------------------------------------


@dataclass(frozen=True)
class IGet(Instruction):
    """``iget vDst, vObj, field`` — scalar instance field read.

    Dereferences the container object (emits a deref record) and a
    shared-memory read of the field location.
    """

    dst: int
    obj: int
    field: str


@dataclass(frozen=True)
class IPut(Instruction):
    """``iput vSrc, vObj, field`` — scalar instance field write."""

    src: int
    obj: int
    field: str


@dataclass(frozen=True)
class IGetObject(Instruction):
    """``iget-object vDst, vObj, field`` — pointer read (Section 5.3)."""

    dst: int
    obj: int
    field: str


@dataclass(frozen=True)
class IPutObject(Instruction):
    """``iput-object vSrc, vObj, field`` — pointer write.

    Writing null is a *free*; writing a reference is an *allocation*.
    """

    src: int
    obj: int
    field: str


# -- static fields -----------------------------------------------------------


@dataclass(frozen=True)
class SGet(Instruction):
    """``sget vDst, Cls.field`` — scalar static read."""

    dst: int
    cls: str
    field: str


@dataclass(frozen=True)
class SPut(Instruction):
    """``sput vSrc, Cls.field`` — scalar static write."""

    src: int
    cls: str
    field: str


@dataclass(frozen=True)
class SGetObject(Instruction):
    """``sget-object vDst, Cls.field`` — static pointer read."""

    dst: int
    cls: str
    field: str


@dataclass(frozen=True)
class SPutObject(Instruction):
    """``sput-object vSrc, Cls.field`` — static pointer write."""

    src: int
    cls: str
    field: str


# -- arrays ------------------------------------------------------------------


@dataclass(frozen=True)
class NewArray(Instruction):
    """``new-array vDst, vSize`` — allocate an array of null refs."""

    dst: int
    size: int  # register holding the length


@dataclass(frozen=True)
class AGet(Instruction):
    """``aget vDst, vArr, vIdx`` — scalar array read."""

    dst: int
    arr: int
    idx: int


@dataclass(frozen=True)
class APut(Instruction):
    """``aput vSrc, vArr, vIdx`` — scalar array write."""

    src: int
    arr: int
    idx: int


@dataclass(frozen=True)
class AGetObject(Instruction):
    """``aget-object vDst, vArr, vIdx`` — pointer read from an array
    slot (Section 5.3 lists this among the instrumented loads)."""

    dst: int
    arr: int
    idx: int


@dataclass(frozen=True)
class APutObject(Instruction):
    """``aput-object vSrc, vArr, vIdx`` — pointer write to an array
    slot; writing null is a free, like ``iput-object``."""

    src: int
    arr: int
    idx: int


# -- invocation --------------------------------------------------------------


@dataclass(frozen=True)
class Invoke(Instruction):
    """``invoke-virtual/static`` — call ``method`` with ``args``.

    When ``receiver`` is a register index, the call dereferences the
    receiver (null receiver raises a simulated NullPointerException)
    and the receiver is prepended to the callee's parameters.  The
    result, if any, lands in ``dst``.
    """

    method: str
    args: Sequence[int] = ()
    receiver: Optional[int] = None
    dst: Optional[int] = None


@dataclass(frozen=True)
class Return(Instruction):
    """``return [vSrc]``."""

    src: Optional[int] = None


# -- control flow ------------------------------------------------------------


@dataclass(frozen=True)
class Goto(Instruction):
    """``goto target``."""

    target: int


@dataclass(frozen=True)
class IfEqz(Instruction):
    """``if-eqz vA, target`` — jump when vA is zero/null.

    When vA holds a reference, the *not taken* outcome is logged for
    the if-guard check (the pointer is then known non-null).
    """

    a: int
    target: int


@dataclass(frozen=True)
class IfNez(Instruction):
    """``if-nez vA, target`` — jump when vA is non-zero/non-null.

    When vA holds a reference, the *taken* outcome is logged.
    """

    a: int
    target: int


@dataclass(frozen=True)
class IfEq(Instruction):
    """``if-eq vA, vB, target`` — jump when equal.

    When both operands are references, the *taken* outcome is logged
    (Section 5.3: ``if-eq`` on pointers gives the same guarantee as
    ``if-nez`` because it is typically a comparison against ``this``).
    """

    a: int
    b: int
    target: int


@dataclass(frozen=True)
class IfLt(Instruction):
    """``if-lt vA, vB, target`` — scalar comparison (never logged)."""

    a: int
    b: int
    target: int


# -- arithmetic / misc -------------------------------------------------------


@dataclass(frozen=True)
class BinOp(Instruction):
    """``add/sub/mul-int vDst, vA, vB``."""

    op: str  # one of "+", "-", "*"
    dst: int
    a: int
    b: int


@dataclass(frozen=True)
class Nop(Instruction):
    """``nop`` — consumes one cycle; padding for realistic pc layouts."""
