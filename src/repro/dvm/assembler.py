"""A small assembler: builds :class:`~repro.dvm.method.Method` objects
with symbolic labels.

Example — the guarded use of Figure 5's ``onFocus``::

    m = MethodBuilder("onFocus", params=1)       # register 0 = this
    m.iget_object(1, 0, "handler")               # pc 0: read pointer
    m.if_eqz(1, "skip")                          # pc 1: null check
    m.invoke(method="Handler.run", receiver=1)   # pc 2: the use
    m.label("skip")
    m.return_void()                              # pc 3
    method = m.build()
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .instructions import (
    AGet,
    AGetObject,
    APut,
    APutObject,
    BinOp,
    Const,
    ConstNull,
    Goto,
    IfEq,
    IfEqz,
    IfLt,
    IfNez,
    IGet,
    IGetObject,
    Instruction,
    Invoke,
    IPut,
    IPutObject,
    Move,
    NewArray,
    NewInstance,
    Nop,
    Return,
    SGet,
    SGetObject,
    SPut,
    SPutObject,
)
from .method import Method


class AssemblyError(Exception):
    """Raised for unresolved labels or malformed builder usage."""


class MethodBuilder:
    """Accumulates instructions and resolves labels to pcs."""

    def __init__(self, name: str, params: int = 0) -> None:
        self.name = name
        self.params = params
        self._code: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        #: (pc, attribute, label) fixups applied at build time
        self._fixups: List[Tuple[int, str, str]] = []
        self._catch_npe: Optional[str] = None

    # -- labels ------------------------------------------------------------

    def label(self, name: str) -> "MethodBuilder":
        """Bind ``name`` to the pc of the next instruction."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r} in {self.name}")
        self._labels[name] = len(self._code)
        return self

    def catch_npe(self, label: str) -> "MethodBuilder":
        """Install a catch-all NullPointerException handler at ``label``."""
        self._catch_npe = label
        return self

    def _emit(self, instr: Instruction) -> "MethodBuilder":
        self._code.append(instr)
        return self

    def _emit_branch(self, instr: Instruction, attr: str, target: Any) -> "MethodBuilder":
        if isinstance(target, str):
            self._fixups.append((len(self._code), attr, target))
            instr = replace(instr, **{attr: -1})
        else:
            instr = replace(instr, **{attr: int(target)})
        self._code.append(instr)
        return self

    # -- data movement ---------------------------------------------------

    def const(self, dst: int, value: Any) -> "MethodBuilder":
        return self._emit(Const(dst, value))

    def const_null(self, dst: int) -> "MethodBuilder":
        return self._emit(ConstNull(dst))

    def move(self, dst: int, src: int) -> "MethodBuilder":
        return self._emit(Move(dst, src))

    def new_instance(self, dst: int, cls: str) -> "MethodBuilder":
        return self._emit(NewInstance(dst, cls))

    # -- fields ------------------------------------------------------------

    def iget(self, dst: int, obj: int, fld: str) -> "MethodBuilder":
        return self._emit(IGet(dst, obj, fld))

    def iput(self, src: int, obj: int, fld: str) -> "MethodBuilder":
        return self._emit(IPut(src, obj, fld))

    def iget_object(self, dst: int, obj: int, fld: str) -> "MethodBuilder":
        return self._emit(IGetObject(dst, obj, fld))

    def iput_object(self, src: int, obj: int, fld: str) -> "MethodBuilder":
        return self._emit(IPutObject(src, obj, fld))

    def sget(self, dst: int, cls: str, fld: str) -> "MethodBuilder":
        return self._emit(SGet(dst, cls, fld))

    def sput(self, src: int, cls: str, fld: str) -> "MethodBuilder":
        return self._emit(SPut(src, cls, fld))

    def sget_object(self, dst: int, cls: str, fld: str) -> "MethodBuilder":
        return self._emit(SGetObject(dst, cls, fld))

    def sput_object(self, src: int, cls: str, fld: str) -> "MethodBuilder":
        return self._emit(SPutObject(src, cls, fld))

    # -- arrays --------------------------------------------------------

    def new_array(self, dst: int, size: int) -> "MethodBuilder":
        return self._emit(NewArray(dst, size))

    def aget(self, dst: int, arr: int, idx: int) -> "MethodBuilder":
        return self._emit(AGet(dst, arr, idx))

    def aput(self, src: int, arr: int, idx: int) -> "MethodBuilder":
        return self._emit(APut(src, arr, idx))

    def aget_object(self, dst: int, arr: int, idx: int) -> "MethodBuilder":
        return self._emit(AGetObject(dst, arr, idx))

    def aput_object(self, src: int, arr: int, idx: int) -> "MethodBuilder":
        return self._emit(APutObject(src, arr, idx))

    # -- invocation ----------------------------------------------------

    def invoke(
        self,
        method: str,
        args: Sequence[int] = (),
        receiver: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> "MethodBuilder":
        return self._emit(Invoke(method=method, args=tuple(args), receiver=receiver, dst=dst))

    def return_void(self) -> "MethodBuilder":
        return self._emit(Return(None))

    def return_value(self, src: int) -> "MethodBuilder":
        return self._emit(Return(src))

    # -- control flow ------------------------------------------------------

    def goto(self, target: Any) -> "MethodBuilder":
        return self._emit_branch(Goto(target=0), "target", target)

    def if_eqz(self, a: int, target: Any) -> "MethodBuilder":
        return self._emit_branch(IfEqz(a=a, target=0), "target", target)

    def if_nez(self, a: int, target: Any) -> "MethodBuilder":
        return self._emit_branch(IfNez(a=a, target=0), "target", target)

    def if_eq(self, a: int, b: int, target: Any) -> "MethodBuilder":
        return self._emit_branch(IfEq(a=a, b=b, target=0), "target", target)

    def if_lt(self, a: int, b: int, target: Any) -> "MethodBuilder":
        return self._emit_branch(IfLt(a=a, b=b, target=0), "target", target)

    # -- arithmetic ----------------------------------------------------

    def binop(self, op: str, dst: int, a: int, b: int) -> "MethodBuilder":
        return self._emit(BinOp(op=op, dst=dst, a=a, b=b))

    def add(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.binop("+", dst, a, b)

    def sub(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.binop("-", dst, a, b)

    def nop(self) -> "MethodBuilder":
        return self._emit(Nop())

    # -- finish ------------------------------------------------------------

    def build(self) -> Method:
        code = list(self._code)
        for pc, attr, label in self._fixups:
            if label not in self._labels:
                raise AssemblyError(f"unresolved label {label!r} in {self.name}")
            code[pc] = replace(code[pc], **{attr: self._labels[label]})
        catch_target: Optional[int] = None
        if self._catch_npe is not None:
            if self._catch_npe not in self._labels:
                raise AssemblyError(
                    f"unresolved catch label {self._catch_npe!r} in {self.name}"
                )
            catch_target = self._labels[self._catch_npe]
        return Method(
            name=self.name,
            param_count=self.params,
            code=code,
            catch_npe_target=catch_target,
        )
