"""Human-readable disassembly of mini-DVM methods.

Used by diagnostics and the test-suite; the mnemonics follow the Dalvik
naming the paper uses (``iget-object``, ``if-eqz``, ...).
"""

from __future__ import annotations

from typing import List

from .instructions import (
    AGet,
    AGetObject,
    APut,
    APutObject,
    BinOp,
    Const,
    ConstNull,
    Goto,
    IfEq,
    IfEqz,
    IfLt,
    IfNez,
    IGet,
    IGetObject,
    Instruction,
    Invoke,
    IPut,
    IPutObject,
    Move,
    NewArray,
    NewInstance,
    Nop,
    Return,
    SGet,
    SGetObject,
    SPut,
    SPutObject,
)
from .method import Method

_BINOP_NAMES = {"+": "add-int", "-": "sub-int", "*": "mul-int"}


def disassemble_instruction(instr: Instruction) -> str:
    """One instruction as a Dalvik-flavoured mnemonic line."""
    if isinstance(instr, Const):
        return f"const v{instr.dst}, {instr.value!r}"
    if isinstance(instr, ConstNull):
        return f"const v{instr.dst}, null"
    if isinstance(instr, Move):
        return f"move v{instr.dst}, v{instr.src}"
    if isinstance(instr, NewInstance):
        return f"new-instance v{instr.dst}, {instr.cls}"
    if isinstance(instr, IGet):
        return f"iget v{instr.dst}, v{instr.obj}, {instr.field}"
    if isinstance(instr, IPut):
        return f"iput v{instr.src}, v{instr.obj}, {instr.field}"
    if isinstance(instr, IGetObject):
        return f"iget-object v{instr.dst}, v{instr.obj}, {instr.field}"
    if isinstance(instr, IPutObject):
        return f"iput-object v{instr.src}, v{instr.obj}, {instr.field}"
    if isinstance(instr, SGet):
        return f"sget v{instr.dst}, {instr.cls}.{instr.field}"
    if isinstance(instr, SPut):
        return f"sput v{instr.src}, {instr.cls}.{instr.field}"
    if isinstance(instr, SGetObject):
        return f"sget-object v{instr.dst}, {instr.cls}.{instr.field}"
    if isinstance(instr, SPutObject):
        return f"sput-object v{instr.src}, {instr.cls}.{instr.field}"
    if isinstance(instr, NewArray):
        return f"new-array v{instr.dst}, v{instr.size}"
    if isinstance(instr, AGet):
        return f"aget v{instr.dst}, v{instr.arr}, v{instr.idx}"
    if isinstance(instr, APut):
        return f"aput v{instr.src}, v{instr.arr}, v{instr.idx}"
    if isinstance(instr, AGetObject):
        return f"aget-object v{instr.dst}, v{instr.arr}, v{instr.idx}"
    if isinstance(instr, APutObject):
        return f"aput-object v{instr.src}, v{instr.arr}, v{instr.idx}"
    if isinstance(instr, Invoke):
        args = ", ".join(f"v{a}" for a in instr.args)
        receiver = f"v{instr.receiver}" if instr.receiver is not None else None
        operands = ", ".join(x for x in (receiver, args) if x)
        result = f" -> v{instr.dst}" if instr.dst is not None else ""
        kind = "invoke-virtual" if instr.receiver is not None else "invoke-static"
        return f"{kind} {{{operands}}} {instr.method}{result}"
    if isinstance(instr, Return):
        return "return-void" if instr.src is None else f"return v{instr.src}"
    if isinstance(instr, Goto):
        return f"goto :{instr.target}"
    if isinstance(instr, IfEqz):
        return f"if-eqz v{instr.a}, :{instr.target}"
    if isinstance(instr, IfNez):
        return f"if-nez v{instr.a}, :{instr.target}"
    if isinstance(instr, IfEq):
        return f"if-eq v{instr.a}, v{instr.b}, :{instr.target}"
    if isinstance(instr, IfLt):
        return f"if-lt v{instr.a}, v{instr.b}, :{instr.target}"
    if isinstance(instr, BinOp):
        name = _BINOP_NAMES.get(instr.op, f"binop{instr.op}")
        return f"{name} v{instr.dst}, v{instr.a}, v{instr.b}"
    if isinstance(instr, Nop):
        return "nop"
    raise TypeError(f"unknown instruction {instr!r}")  # pragma: no cover


def disassemble(method: Method) -> str:
    """A full method listing with pcs, the catch handler annotated."""
    header = f".method {method.name} (params={method.param_count})"
    lines: List[str] = [header]
    for pc, instr in enumerate(method.code):
        catch = "   ; catch-NPE handler" if pc == method.catch_npe_target else ""
        lines.append(f"  {pc:4d}: {disassemble_instruction(instr)}{catch}")
    lines.append(".end method")
    return "\n".join(lines)
