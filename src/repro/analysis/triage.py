"""Two-stage corpus triage: sample first, fully detect only the flagged.

``triage_corpus`` fans a corpus of saved trace files out over the
shared process pool (:mod:`repro.parallel`), runs the sampled detector
(:mod:`repro.detect.sampling`) on each trace under a fixed per-trace
budget, and re-runs *full* detection only on the traces the sampler
flags — the throughput model for corpora far too large to pay the
happens-before closure on every member.  Damaged traces are reported
per item (named, like ``fan_out`` worker errors) instead of aborting
the run; with ``salvage=True`` the decodable prefix of a damaged trace
is triaged and the item is marked ``salvaged``.

``budget_curve`` is the evaluation side: a ``scaling_matrix``-style
sweep of budgets across the ten-app catalog recording, per budget,
trace-level recall/precision (did the racy apps get flagged, did any
clean trace waste an escalation), pair-level precision (suspects that
confirm concurrent), and the per-trace triage speedup vs. full
detection.  The recorded curve lives in ``benchmarks/bounds_pr10.json``
and ``docs/sampling.md``; the fidelity columns are deterministic in
``(scale, seed, sample_seed, budget)`` and re-verified by the
``test_triage_sampling`` benchmark gate.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Type

from ..apps.base import AppModel
from ..apps.catalog import ALL_APPS
from ..detect import (
    DetectorOptions,
    SampleProfile,
    SamplerOptions,
    UseFreeDetector,
    detect_sampled,
)
from ..obs.spans import span
from ..parallel import fan_out_profiled as _fan_out_profiled
from ..parallel import validate_jobs as _validate_jobs
from ..trace import TraceError


@dataclasses.dataclass
class TriageItem:
    """One corpus member's triage outcome."""

    name: str
    #: "flagged" (escalated to full detection), "clean", or "damaged"
    status: str
    ops: int = 0
    #: pairs the sampler inspected (the budget actually spent)
    budget_spent: int = 0
    suspects: int = 0
    #: races found by the escalation pass (flagged traces only)
    races: int = 0
    #: the escalation pass's report strings
    reports: List[str] = dataclasses.field(default_factory=list)
    #: decode error of a damaged item (also set for salvaged ones)
    error: Optional[str] = None
    #: True when a damaged trace's valid prefix was still triaged
    salvaged: bool = False
    sample: Optional[SampleProfile] = None
    triage_seconds: float = 0.0
    #: escalation cost (0.0 for clean/damaged traces)
    full_seconds: float = 0.0


@dataclasses.dataclass
class TriageReport:
    """The whole corpus run, JSON-ready (``repro triage --json``)."""

    budget: int
    seed: int
    salvage: bool
    items: List[TriageItem] = dataclasses.field(default_factory=list)

    @property
    def flagged(self) -> List[TriageItem]:
        return [i for i in self.items if i.status == "flagged"]

    @property
    def clean(self) -> List[TriageItem]:
        return [i for i in self.items if i.status == "clean"]

    @property
    def damaged(self) -> List[TriageItem]:
        return [i for i in self.items if i.status == "damaged"]

    @property
    def races_total(self) -> int:
        return sum(i.races for i in self.items)

    def as_dict(self) -> dict:
        return {
            "schema": "repro-triage/1",
            "budget": self.budget,
            "seed": self.seed,
            "salvage": self.salvage,
            "counts": {
                "traces": len(self.items),
                "flagged": len(self.flagged),
                "clean": len(self.clean),
                "damaged": len(self.damaged),
                "races": self.races_total,
            },
            "items": [dataclasses.asdict(item) for item in self.items],
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def format(self) -> str:
        lines = [
            f"triage of {len(self.items)} trace(s) "
            f"(budget {self.budget}, seed {self.seed}): "
            f"{len(self.flagged)} flagged, {len(self.clean)} clean, "
            f"{len(self.damaged)} damaged, {self.races_total} race(s)"
        ]
        for item in self.items:
            extra = ""
            if item.status == "flagged":
                extra = f"  races={item.races}"
            elif item.status == "damaged":
                extra = f"  ({item.error})"
            if item.salvaged:
                extra += "  [salvaged]"
            lines.append(
                f"  {item.status:<8} {item.name}  ops={item.ops}  "
                f"spent={item.budget_spent}{extra}"
            )
        return "\n".join(lines)


def _load_corpus_trace(path: str, columnar: bool, salvage: bool):
    """One corpus member -> (trace, error, salvaged).

    Strict decoding first; with ``salvage`` a damaged file is re-read
    through the sniffing decoder's degraded mode so its valid prefix
    is still triaged (the ``repro stream --salvage`` behaviour).
    """
    from ..trace import load_trace_file
    from ..trace.serialization import AnyTraceDecoder, _open_binary_for

    try:
        return load_trace_file(path, columnar=columnar), None, False
    except TraceError as exc:
        if not salvage:
            raise
        error = str(exc)
    decoder = AnyTraceDecoder(columnar=columnar, strict=False)
    with _open_binary_for(path, "r") as fp:
        read = getattr(fp, "read1", fp.read)
        while True:
            chunk = read(1 << 16)
            if not chunk:
                break
            decoder.feed(chunk)
    decoder.flush()
    return decoder.trace, error, True


def _triage_path(
    path: str,
    budget: int,
    seed: int,
    salvage: bool,
    columnar: bool,
    options: Optional[DetectorOptions],
) -> TriageItem:
    """One corpus member's sample -> escalate pipeline (pool worker)."""
    item = TriageItem(name=str(path), status="clean")
    try:
        trace, item.error, item.salvaged = _load_corpus_trace(
            path, columnar, salvage
        )
    except (TraceError, OSError) as exc:
        item.status = "damaged"
        item.error = str(exc)
        return item
    item.ops = len(trace)
    sampler = SamplerOptions(
        budget=budget, seed=seed, detector=options or DetectorOptions()
    )
    with span("triage.sample", trace=item.name):
        start = time.perf_counter()
        sampled = detect_sampled(trace, sampler)
        item.triage_seconds = time.perf_counter() - start
    item.sample = sampled.profile
    item.budget_spent = sampled.profile.pairs_sampled
    item.suspects = sampled.profile.suspects
    if sampled.flagged:
        item.status = "flagged"
        with span("triage.escalate", trace=item.name):
            start = time.perf_counter()
            result = UseFreeDetector(trace, options).detect()
            item.full_seconds = time.perf_counter() - start
        item.races = len(result.reports)
        item.reports = [str(r) for r in result.reports]
    return item


def triage_corpus(
    paths: Sequence[str],
    budget: int,
    seed: int = 0,
    *,
    salvage: bool = False,
    jobs: int = 1,
    columnar: bool = True,
    options: Optional[DetectorOptions] = None,
) -> TriageReport:
    """Triage a corpus of saved trace files (see the module docstring).

    Items come back in corpus order regardless of worker completion
    order; a damaged member becomes a named ``damaged`` item rather
    than aborting the run.
    """
    _validate_jobs(jobs)
    report = TriageReport(budget=budget, seed=seed, salvage=salvage)
    path_list = [str(p) for p in paths]
    if jobs == 1 or len(path_list) <= 1:
        for path in path_list:
            report.items.append(
                _triage_path(path, budget, seed, salvage, columnar, options)
            )
    else:
        items, _profile = _fan_out_profiled(
            _triage_path,
            path_list,
            (budget, seed, salvage, columnar, options),
            jobs,
            "triage",
            describe=lambda p: f"trace {p!r}",
        )
        report.items.extend(items)
    return report


# ---------------------------------------------------------------------------
# The precision/recall-vs-budget sweep
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class BudgetPoint:
    """One budget's aggregate fidelity + cost over the app catalog."""

    budget: int
    racy_apps: int
    flagged_apps: int
    #: racy apps the sampler flagged (the recall numerator)
    flagged_racy: int
    recall: float
    #: flagged apps that are racy (trace-level precision)
    trace_precision: float
    pairs_sampled: int
    suspects: int
    #: suspects full happens-before confirms concurrent-and-unfiltered
    confirmed: int
    pair_precision: float
    full_seconds: float
    triage_seconds: float
    #: aggregate full-detection time over aggregate sampler time
    speedup: float


@dataclasses.dataclass
class BudgetCurve:
    """The recorded sweep: one :class:`BudgetPoint` per budget."""

    scale: float
    seed: int
    sample_seed: int
    apps: List[str]
    points: List[BudgetPoint]

    def as_dict(self) -> dict:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "sample_seed": self.sample_seed,
            "apps": list(self.apps),
            "points": [dataclasses.asdict(p) for p in self.points],
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def format(self) -> str:
        lines = [
            f"budget sweep over {len(self.apps)} apps "
            f"(scale {self.scale}, seed {self.seed}, "
            f"sample seed {self.sample_seed}):",
            f"  {'budget':>8} {'recall':>7} {'trace-prec':>10} "
            f"{'pair-prec':>9} {'suspects':>8} {'speedup':>8}",
        ]
        for p in self.points:
            lines.append(
                f"  {p.budget:>8} {p.recall:>7.2f} "
                f"{p.trace_precision:>10.2f} {p.pair_precision:>9.2f} "
                f"{p.suspects:>8} {p.speedup:>7.1f}x"
            )
        return "\n".join(lines)


def _curve_cell(
    app_cls: Type[AppModel],
    budgets: Sequence[int],
    scale: float,
    seed: int,
    sample_seed: int,
) -> dict:
    """One app's column of the sweep (pool worker): full detection once,
    then every budget's screen pass and confirm pass over that trace."""
    trace = app_cls(scale=scale, seed=seed).run().trace
    start = time.perf_counter()
    full = UseFreeDetector(trace).detect()
    full_seconds = time.perf_counter() - start
    cell = {
        "app": app_cls.name,
        "racy": bool(full.reports),
        "full_seconds": full_seconds,
        "budgets": {},
    }
    for budget in budgets:
        start = time.perf_counter()
        screen = detect_sampled(
            trace, SamplerOptions(budget=budget, seed=sample_seed)
        )
        triage_seconds = time.perf_counter() - start
        confirm = detect_sampled(
            trace,
            SamplerOptions(budget=budget, seed=sample_seed, confirm=True),
        )
        cell["budgets"][budget] = {
            "flagged": screen.flagged,
            "pairs_sampled": screen.profile.pairs_sampled,
            "suspects": screen.profile.suspects,
            "confirmed": confirm.profile.confirmed,
            "triage_seconds": triage_seconds,
        }
    return cell


def budget_curve(
    apps: Optional[Sequence[Type[AppModel]]] = None,
    budgets: Optional[Sequence[int]] = None,
    scale: float = 0.1,
    seed: int = 0,
    sample_seed: int = 0,
    jobs: int = 1,
) -> BudgetCurve:
    """Sweep sampling budgets across the app catalog (default: all ten).

    The fidelity columns (recall, precisions, suspect counts) are
    deterministic in the arguments; only the timing columns vary by
    machine.
    """
    _validate_jobs(jobs)
    app_list = list(apps) if apps is not None else list(ALL_APPS)
    budget_list = (
        list(budgets) if budgets is not None else [1, 2, 4, 8, 16, 64, 256]
    )
    if not budget_list:
        raise ValueError("budget_curve needs at least one budget")
    if jobs == 1 or len(app_list) <= 1:
        cells = [
            _curve_cell(app_cls, budget_list, scale, seed, sample_seed)
            for app_cls in app_list
        ]
    else:
        cells, _profile = _fan_out_profiled(
            _curve_cell,
            app_list,
            (budget_list, scale, seed, sample_seed),
            jobs,
            "budget-curve",
        )
    points = []
    racy_apps = sum(1 for c in cells if c["racy"])
    full_seconds = sum(c["full_seconds"] for c in cells)
    for budget in budget_list:
        rows = [(c, c["budgets"][budget]) for c in cells]
        flagged = [(c, b) for c, b in rows if b["flagged"]]
        flagged_racy = sum(1 for c, _ in flagged if c["racy"])
        suspects = sum(b["suspects"] for _, b in rows)
        confirmed = sum(b["confirmed"] for _, b in rows)
        triage_seconds = sum(b["triage_seconds"] for _, b in rows)
        points.append(
            BudgetPoint(
                budget=budget,
                racy_apps=racy_apps,
                flagged_apps=len(flagged),
                flagged_racy=flagged_racy,
                recall=flagged_racy / racy_apps if racy_apps else 1.0,
                trace_precision=(
                    flagged_racy / len(flagged) if flagged else 1.0
                ),
                pairs_sampled=sum(b["pairs_sampled"] for _, b in rows),
                suspects=suspects,
                confirmed=confirmed,
                pair_precision=confirmed / suspects if suspects else 1.0,
                full_seconds=full_seconds,
                triage_seconds=triage_seconds,
                speedup=(
                    full_seconds / triage_seconds if triage_seconds else 0.0
                ),
            )
        )
    return BudgetCurve(
        scale=scale,
        seed=seed,
        sample_seed=sample_seed,
        apps=[app_cls.name for app_cls in app_list],
        points=points,
    )
