"""Performance evaluation — Figure 8 and the §6.4 analysis-time study.

Figure 8 reports the CPU-time slowdown of running each application on
the instrumented ROM versus the stock system (2x–6x).  Here the same
application workload is executed twice on the simulator — once with
the tracer enabled, once disabled — and the slowdown is the ratio of
total virtual CPU time, which emerges from each app's density of
instrumented operations relative to its plain computation.

Section 6.4 also notes that the offline analysis time grows with the
number of events in the trace (30 minutes to a day on the paper's
traces); :func:`analysis_scaling` measures our analyzer's wall-clock
time across a sweep of event counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Type

from ..apps.base import AppModel
from ..detect import detect_use_free_races
from ..hb import build_happens_before


@dataclass
class SlowdownResult:
    """One Figure 8 bar."""

    name: str
    traced_cpu: int
    untraced_cpu: int
    trace_records: int
    paper_slowdown: Optional[float] = None

    @property
    def slowdown(self) -> float:
        if self.untraced_cpu == 0:
            return float("nan")
        return self.traced_cpu / self.untraced_cpu


def measure_slowdown(
    app_cls: Type[AppModel], scale: float = 0.1, seed: int = 0
) -> SlowdownResult:
    """Run one workload with and without tracing; compare CPU time."""
    traced = app_cls(scale=scale, seed=seed).run(tracing=True)
    untraced = app_cls(scale=scale, seed=seed).run(tracing=False)
    return SlowdownResult(
        name=app_cls.name,
        traced_cpu=traced.system.total_cpu_time,
        untraced_cpu=untraced.system.total_cpu_time,
        trace_records=len(traced.trace) if traced.trace is not None else 0,
        paper_slowdown=getattr(app_cls, "paper_slowdown", None),
    )


@dataclass
class ScalingPoint:
    """One point of the §6.4 analysis-time scaling sweep.

    Besides wall-clock times, the point records the closure-work
    counters of the happens-before build: how many *full* transitive
    closures were computed and how many reachability bits incremental
    propagation touched.  ``benchmarks/test_analysis_scaling.py`` uses
    them to assert the fixpoint no longer recomputes the closure per
    round and that closure work grows sub-quadratically.
    """

    events: int
    trace_ops: int
    hb_seconds: float
    detect_seconds: float
    key_nodes: int = 0
    fixpoint_rounds: int = 0
    closure_recomputations: int = 0
    bits_propagated: int = 0

    @property
    def total_seconds(self) -> float:
        return self.hb_seconds + self.detect_seconds


def analysis_scaling(
    app_cls: Type[AppModel],
    scales: List[float],
    seed: int = 0,
    incremental: bool = True,
) -> List[ScalingPoint]:
    """Offline-analysis wall-clock time across event-count scales.

    ``incremental=False`` measures the historical
    closure-recompute-per-round builder for before/after comparisons.
    """
    points: List[ScalingPoint] = []
    for scale in scales:
        run = app_cls(scale=scale, seed=seed).run(tracing=True)
        assert run.trace is not None
        start = time.perf_counter()
        hb = build_happens_before(run.trace, incremental=incremental)
        hb_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        detect_use_free_races(run.trace)
        detect_elapsed = time.perf_counter() - start
        points.append(
            ScalingPoint(
                events=run.event_count,
                trace_ops=len(run.trace),
                hb_seconds=hb_elapsed,
                detect_seconds=detect_elapsed,
                key_nodes=hb.graph.node_count,
                fixpoint_rounds=hb.iterations,
                closure_recomputations=hb.graph.closure_recomputations,
                bits_propagated=hb.graph.bits_propagated,
            )
        )
    return points
