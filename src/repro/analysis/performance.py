"""Performance evaluation — Figure 8 and the §6.4 analysis-time study.

Figure 8 reports the CPU-time slowdown of running each application on
the instrumented ROM versus the stock system (2x–6x).  Here the same
application workload is executed twice on the simulator — once with
the tracer enabled, once disabled — and the slowdown is the ratio of
total virtual CPU time, which emerges from each app's density of
instrumented operations relative to its plain computation.

Section 6.4 also notes that the offline analysis time grows with the
number of events in the trace (30 minutes to a day on the paper's
traces); :func:`analysis_scaling` measures our analyzer's wall-clock
time across a sweep of event counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Tuple, Type

from ..apps.base import AppModel
from ..detect import (
    DetectorOptions,
    LowLevelDetector,
    UseFreeDetector,
    detect_use_free_races,
)
from ..hb import HappensBefore, QueryProfile, build_happens_before


@dataclass
class SlowdownResult:
    """One Figure 8 bar."""

    name: str
    traced_cpu: int
    untraced_cpu: int
    trace_records: int
    paper_slowdown: Optional[float] = None

    @property
    def slowdown(self) -> float:
        if self.untraced_cpu == 0:
            return float("nan")
        return self.traced_cpu / self.untraced_cpu


def measure_slowdown(
    app_cls: Type[AppModel], scale: float = 0.1, seed: int = 0
) -> SlowdownResult:
    """Run one workload with and without tracing; compare CPU time."""
    traced = app_cls(scale=scale, seed=seed).run(tracing=True)
    untraced = app_cls(scale=scale, seed=seed).run(tracing=False)
    return SlowdownResult(
        name=app_cls.name,
        traced_cpu=traced.system.total_cpu_time,
        untraced_cpu=untraced.system.total_cpu_time,
        trace_records=len(traced.trace) if traced.trace is not None else 0,
        paper_slowdown=getattr(app_cls, "paper_slowdown", None),
    )


@dataclass
class ScalingPoint:
    """One point of the §6.4 analysis-time scaling sweep.

    Besides wall-clock times, the point records the closure-work
    counters of the happens-before build: how many *full* transitive
    closures were computed and how many reachability bits incremental
    propagation touched.  ``benchmarks/test_analysis_scaling.py`` uses
    them to assert the fixpoint no longer recomputes the closure per
    round and that closure work grows sub-quadratically.
    """

    events: int
    trace_ops: int
    hb_seconds: float
    detect_seconds: float
    key_nodes: int = 0
    fixpoint_rounds: int = 0
    closure_recomputations: int = 0
    bits_propagated: int = 0
    #: ordering queries the detection phase evaluated
    hb_queries: int = 0
    #: candidate pairs answered through the batched query API
    batched_pairs: int = 0
    #: queries that had to touch the reachability bitsets (memo misses)
    query_memo_misses: int = 0
    #: bytes held by the closure's reachability bitsets (sharing-aware)
    closure_bytes: int = 0
    #: group members actually re-examined by the per-event dirty sets
    events_repropagated: int = 0
    #: members per-group granularity would have re-examined instead
    group_dirty_events: int = 0
    #: distinct chunk objects backing the sparse closure (0 when dense)
    chunks_allocated: int = 0
    #: chunk references satisfied by copy-on-write sharing (0 when dense)
    chunks_shared: int = 0

    @property
    def total_seconds(self) -> float:
        return self.hb_seconds + self.detect_seconds


def analysis_scaling(
    app_cls: Type[AppModel],
    scales: List[float],
    seed: int = 0,
    incremental: bool = True,
    dense_bits: bool = False,
) -> List[ScalingPoint]:
    """Offline-analysis wall-clock time across event-count scales.

    ``incremental=False`` measures the historical
    closure-recompute-per-round builder, ``dense_bits=True`` the
    historical dense big-int closure storage, for before/after
    comparisons.
    """
    points: List[ScalingPoint] = []
    for scale in scales:
        run = app_cls(scale=scale, seed=seed).run(tracing=True)
        assert run.trace is not None
        start = time.perf_counter()
        hb = build_happens_before(
            run.trace, incremental=incremental, dense_bits=dense_bits
        )
        hb_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        result = detect_use_free_races(
            run.trace, DetectorOptions(dense_bits=dense_bits)
        )
        detect_elapsed = time.perf_counter() - start
        query_profile = result.hb.query_profile
        profile = hb.profile
        points.append(
            ScalingPoint(
                events=run.event_count,
                trace_ops=len(run.trace),
                hb_seconds=hb_elapsed,
                detect_seconds=detect_elapsed,
                key_nodes=hb.graph.node_count,
                fixpoint_rounds=hb.iterations,
                closure_recomputations=hb.graph.closure_recomputations,
                bits_propagated=hb.graph.bits_propagated,
                hb_queries=query_profile.queries,
                batched_pairs=query_profile.batched_pairs,
                query_memo_misses=query_profile.memo_misses,
                closure_bytes=profile.closure_bytes,
                events_repropagated=profile.events_repropagated,
                group_dirty_events=profile.group_dirty_events,
                chunks_allocated=profile.chunks_allocated,
                chunks_shared=profile.chunks_shared,
            )
        )
    return points


def _matrix_cell(
    app_cls: Type[AppModel],
    scales: List[float],
    seed: int,
    dense_bits: bool,
) -> List[ScalingPoint]:
    """One app's row of the cross-app scaling matrix (pool worker)."""
    return analysis_scaling(app_cls, scales, seed=seed, dense_bits=dense_bits)


class _RecordingHB:
    """Happens-before stand-in that records every batched query.

    Duck-types the one method the detectors use (plus attribute
    passthrough), so the detection benchmark can capture the exact
    query workload a detection phase issues and replay it through both
    query paths.
    """

    def __init__(self, hb: HappensBefore, sink: List[Tuple[int, int]]):
        self._hb = hb
        self._sink = sink

    def concurrent_pairs(self, pairs: Iterable[Tuple[int, int]]) -> List[bool]:
        pairs = list(pairs)
        self._sink.extend(pairs)
        return self._hb.concurrent_pairs(pairs)

    def __getattr__(self, name):
        return getattr(self._hb, name)


@dataclass
class DetectionBenchmark:
    """Fast-vs-scan measurement of one trace's detection phase.

    Two timings per query path: the *detection phase* (use-free +
    low-level detectors, with the happens-before relation, access
    index, and site index prebuilt) and a *query-workload replay* (the
    exact ``concurrent_pairs`` workload the phase issued, replayed
    against a fresh relation with warmed per-op indexes and a cold
    memo — steady-state query cost with no detector overhead mixed
    in).  The fast path must win the replay outright and must not
    regress the full phase; the results must be bit-identical.
    """

    app: str
    scale: float
    trace_ops: int
    #: concurrency probes the detection phase issued
    workload_pairs: int
    #: full detection phase, prefix-mask + memo path
    fast_detect_seconds: float
    #: full detection phase, historical bit-scan path
    scan_detect_seconds: float
    #: workload replay through the fast path (cold memo)
    fast_replay_seconds: float
    #: workload replay through the scan path
    scan_replay_seconds: float
    #: query counters of the fast detection phase
    fast_profile: QueryProfile
    #: use-free reports identical between the two paths
    reports_identical: bool = False
    #: low-level baseline races identical between the two paths
    low_level_identical: bool = False
    use_free_reports: int = 0
    low_level_races: int = 0

    @property
    def replay_speedup(self) -> float:
        """How much faster the fast path answers the same workload."""
        return self.scan_replay_seconds / max(self.fast_replay_seconds, 1e-12)

    @property
    def detect_speedup(self) -> float:
        return self.scan_detect_seconds / max(self.fast_detect_seconds, 1e-12)

    @property
    def memo_misses_per_pair(self) -> float:
        """Reachability tests per batched candidate pair (< 1 means the
        memo collapses the workload to sub-linear query work)."""
        return self.fast_profile.memo_misses / max(
            self.fast_profile.batched_pairs, 1
        )


def detection_benchmark(
    app_cls: Type[AppModel],
    scale: float = 0.5,
    seed: int = 1,
    dense_bits: bool = False,
) -> DetectionBenchmark:
    """Measure the detection phase fast-vs-scan on one app workload."""
    run = app_cls(scale=scale, seed=seed).run(tracing=True)
    assert run.trace is not None
    trace = run.trace

    def detect_phase(fast: bool):
        options = DetectorOptions(fast_queries=fast, dense_bits=dense_bits)
        detector = UseFreeDetector(trace, options=options)
        hb = detector.hb  # prebuilt: the phase times queries, not builds
        accesses = detector.accesses
        low = LowLevelDetector(trace, hb=hb, accesses=accesses)
        low.sites  # prebuilt site index, common to both paths
        start = time.perf_counter()
        result = detector.detect()
        low_result = low.detect()
        elapsed = time.perf_counter() - start
        return elapsed, result, low_result, hb, accesses

    fast_elapsed, fast_result, fast_low, fast_hb, accesses = detect_phase(True)
    # snapshot before the recording pass below adds its own queries
    fast_profile = replace(fast_hb.query_profile)
    scan_elapsed, scan_result, scan_low, _, _ = detect_phase(False)

    # Capture the exact query workload of the phase ...
    workload: List[Tuple[int, int]] = []
    recorder = _RecordingHB(fast_hb, workload)
    UseFreeDetector(
        trace, hb=recorder, accesses=accesses  # type: ignore[arg-type]
    ).detect()
    LowLevelDetector(
        trace, hb=recorder, accesses=accesses  # type: ignore[arg-type]
    ).detect()

    # ... and replay it through each path.  The fast relation gets its
    # one-time per-op indexes and prefix masks warmed by a throwaway
    # replay, then the memo is reset: the timing below is steady-state
    # query work, every verdict recomputed.
    fast_replay_hb = build_happens_before(
        trace, fast_queries=True, dense_bits=dense_bits
    )
    fast_replay_hb.concurrent_pairs(workload)
    fast_replay_hb.reset_query_memo()
    start = time.perf_counter()
    fast_verdicts = fast_replay_hb.concurrent_pairs(workload)
    fast_replay = time.perf_counter() - start

    scan_replay_hb = build_happens_before(
        trace, fast_queries=False, dense_bits=dense_bits
    )
    start = time.perf_counter()
    scan_verdicts = scan_replay_hb.concurrent_pairs(workload)
    scan_replay = time.perf_counter() - start
    if fast_verdicts != scan_verdicts:  # pragma: no cover - differential bug
        raise AssertionError(
            "fast and scan query paths disagree on the replayed workload"
        )

    return DetectionBenchmark(
        app=app_cls.name,
        scale=scale,
        trace_ops=len(trace),
        workload_pairs=len(workload),
        fast_detect_seconds=fast_elapsed,
        scan_detect_seconds=scan_elapsed,
        fast_replay_seconds=fast_replay,
        scan_replay_seconds=scan_replay,
        fast_profile=fast_profile,
        reports_identical=(
            [str(r) for r in fast_result.reports]
            == [str(r) for r in scan_result.reports]
            and [str(r) for r in fast_result.filtered_reports]
            == [str(r) for r in scan_result.filtered_reports]
            and fast_result.dynamic_candidates == scan_result.dynamic_candidates
        ),
        low_level_identical=(
            [str(r) for r in fast_low.races] == [str(r) for r in scan_low.races]
        ),
        use_free_reports=len(fast_result.reports),
        low_level_races=fast_low.race_count(),
    )
