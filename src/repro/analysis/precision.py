"""Precision evaluation — the machinery behind Table 1.

For one application run: detect use-free races, join each static
report against the workload's ground-truth annotations, and tabulate
the row exactly as the paper does — races reported; true races split
into intra-thread (a) / inter-thread (b) / conventional (c); false
positives split into Types I / II / III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..apps.base import AppRun, Table1Row
from ..detect import (
    DetectionResult,
    DetectorOptions,
    ExpectedRace,
    RaceClass,
    RaceReport,
    Verdict,
    detect_use_free_races,
)


@dataclass
class AppEvaluation:
    """Detector output for one app joined with its ground truth."""

    name: str
    events: int
    result: DetectionResult
    #: reports with a matched ground-truth verdict
    matched: List[RaceReport] = field(default_factory=list)
    #: reports with no ground-truth annotation (should be empty)
    unmatched: List[RaceReport] = field(default_factory=list)
    #: annotations no report matched (should be empty)
    missed: List[ExpectedRace] = field(default_factory=list)

    # -- Table 1 cells ----------------------------------------------------

    @property
    def reported(self) -> int:
        return len(self.result.reports)

    def _true_of_class(self, race_class: RaceClass) -> int:
        return sum(
            1
            for r in self.matched
            if r.verdict is Verdict.HARMFUL and r.race_class is race_class
        )

    @property
    def a(self) -> int:
        return self._true_of_class(RaceClass.INTRA_THREAD)

    @property
    def b(self) -> int:
        return self._true_of_class(RaceClass.INTER_THREAD)

    @property
    def c(self) -> int:
        return self._true_of_class(RaceClass.CONVENTIONAL)

    def _fp_of(self, verdict: Verdict) -> int:
        return sum(1 for r in self.matched if r.verdict is verdict)

    @property
    def fp1(self) -> int:
        return self._fp_of(Verdict.FP_TYPE_I)

    @property
    def fp2(self) -> int:
        return self._fp_of(Verdict.FP_TYPE_II)

    @property
    def fp3(self) -> int:
        return self._fp_of(Verdict.FP_TYPE_III)

    @property
    def true_races(self) -> int:
        return self.a + self.b + self.c

    @property
    def precision(self) -> float:
        return self.true_races / self.reported if self.reported else 0.0

    def row(self) -> Table1Row:
        """This run's measured Table 1 row."""
        return Table1Row(
            events=self.events,
            reported=self.reported,
            a=self.a,
            b=self.b,
            c=self.c,
            fp1=self.fp1,
            fp2=self.fp2,
            fp3=self.fp3,
        )


def evaluate_run(
    run: AppRun, options: Optional[DetectorOptions] = None
) -> AppEvaluation:
    """Detect races on a finished run and join with its ground truth."""
    if run.trace is None:
        raise ValueError(f"run of {run.name!r} collected no trace")
    result = detect_use_free_races(run.trace, options)
    evaluation = AppEvaluation(
        name=run.name, events=run.event_count, result=result
    )
    remaining = list(run.expected)
    for report in result.reports:
        match = next((e for e in remaining if e.matches(report.key)), None)
        if match is None:
            evaluation.unmatched.append(report)
            continue
        report.verdict = match.verdict
        remaining.remove(match)
        evaluation.matched.append(report)
    evaluation.missed = remaining
    return evaluation


@dataclass
class Table1:
    """The full reproduced table: one evaluation per app + totals."""

    evaluations: List[AppEvaluation] = field(default_factory=list)

    def totals(self) -> Table1Row:
        return Table1Row(
            events=sum(e.events for e in self.evaluations),
            reported=sum(e.reported for e in self.evaluations),
            a=sum(e.a for e in self.evaluations),
            b=sum(e.b for e in self.evaluations),
            c=sum(e.c for e in self.evaluations),
            fp1=sum(e.fp1 for e in self.evaluations),
            fp2=sum(e.fp2 for e in self.evaluations),
            fp3=sum(e.fp3 for e in self.evaluations),
        )

    @property
    def overall_precision(self) -> float:
        totals = self.totals()
        return totals.true_races / totals.reported if totals.reported else 0.0
