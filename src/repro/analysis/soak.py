"""Streaming soak harness: replay traces record-by-record and check
that the online service reproduces the offline analysis exactly.

This is the executable form of the streaming mode's core claim (see
``docs/streaming.md``): for any complete trace, feeding its v2 stream
one record at a time through :class:`~repro.stream.StreamAnalyzer`
yields byte-identical race reports to the batch pipeline.  The harness
backs the differential tests and the ``repro stream --selftest`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..apps import ALL_APPS, make_app
from ..detect import DetectorOptions, UseFreeDetector
from ..stream import StreamAnalyzer, StreamProfile
from ..trace import Trace, dumps_trace


@dataclass
class SoakResult:
    """One replayed trace: both report lists plus the stream counters."""

    name: str
    ops: int
    #: str() of every authoritative online report, in emission order
    online: List[str]
    #: str() of every offline report, in the detector's sorted order
    offline: List[str]
    profile: StreamProfile

    @property
    def identical(self) -> bool:
        return self.online == self.offline

    def format(self) -> str:
        verdict = "identical" if self.identical else "MISMATCH"
        return (
            f"{self.name}: {self.ops} ops, "
            f"{len(self.online)} online / {len(self.offline)} offline "
            f"reports — {verdict}"
        )


def soak_trace(
    trace: Trace,
    name: str = "trace",
    options: Optional[DetectorOptions] = None,
    gc: bool = True,
) -> SoakResult:
    """Replay ``trace`` line-by-line online; compare against offline."""
    offline = [str(r) for r in UseFreeDetector(trace, options).detect().reports]
    analyzer = StreamAnalyzer(options, gc=gc)
    for line in dumps_trace(trace, version=2).splitlines():
        analyzer.feed_line(line)
    online = [str(r) for r in analyzer.finish()]
    return SoakResult(
        name=name,
        ops=len(trace),
        online=online,
        offline=offline,
        profile=analyzer.profile,
    )


def soak_app(
    app_name: str,
    scale: float = 0.02,
    seed: int = 1,
    options: Optional[DetectorOptions] = None,
    gc: bool = True,
) -> SoakResult:
    """Soak one stock app's trace at the given scale/seed."""
    run = make_app(app_name, scale=scale, seed=seed).run()
    return soak_trace(run.trace, name=app_name, options=options, gc=gc)


def soak_all(
    scale: float = 0.02,
    seed: int = 1,
    apps: Optional[Sequence[str]] = None,
    gc: bool = True,
) -> List[SoakResult]:
    """Soak every stock app (or the named subset), in catalog order."""
    names = list(apps) if apps else [app.name for app in ALL_APPS]
    return [soak_app(name, scale=scale, seed=seed, gc=gc) for name in names]
