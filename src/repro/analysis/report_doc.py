"""Self-contained evaluation report generation.

``generate_report`` runs the full pipeline (Table 1, the §4.1
motivation, Figure 8) at a chosen scale and renders one Markdown
document with per-app race listings and violation witnesses — the
artifact a user of the tool would attach to a bug report or a paper
artifact submission.  Exposed as ``python -m repro report``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type

from ..apps.base import AppModel
from ..apps.catalog import ALL_APPS
from ..detect import LowLevelDetector, UseFreeDetector
from .performance import measure_slowdown
from .precision import evaluate_run
from .tables import _t1_line, _T1_HEADER  # noqa: F401  (reuse the layout)
from .witness import WitnessError, build_witness


def generate_report(
    scale: float = 0.1,
    seed: int = 1,
    apps: Optional[Sequence[Type[AppModel]]] = None,
    include_witnesses: bool = True,
    include_slowdowns: bool = True,
) -> str:
    """Run the evaluation and render a Markdown report."""
    apps = list(apps) if apps is not None else list(ALL_APPS)
    lines: List[str] = [
        "# CAFA evaluation report",
        "",
        f"workload scale {scale}, scheduler seed {seed}",
        "",
        "## Races reported (Table 1 layout)",
        "",
        "```",
        _T1_HEADER,
    ]
    evaluations = []
    detectors = {}
    runs = {}
    for app_cls in apps:
        run = app_cls(scale=scale, seed=seed).run()
        detector = UseFreeDetector(run.trace)
        evaluation = evaluate_run(run)
        evaluations.append(evaluation)
        detectors[app_cls.name] = detector
        runs[app_cls.name] = run
        lines.append(_t1_line(evaluation.name, evaluation.row()))
    totals_reported = sum(e.reported for e in evaluations)
    totals_true = sum(e.true_races for e in evaluations)
    lines.append("```")
    lines.append("")
    precision = totals_true / totals_reported if totals_reported else 0.0
    lines.append(
        f"**{totals_reported} races reported, {totals_true} harmful "
        f"({precision:.0%} precision).**"
    )

    lines += ["", "## Per-application findings", ""]
    for evaluation in evaluations:
        lines.append(f"### {evaluation.name}")
        lines.append("")
        app_cls = next(a for a in apps if a.name == evaluation.name)
        lines.append(f"*Session:* {app_cls.session}")
        lines.append("")
        result = evaluation.result
        if not result.reports:
            lines.append("No use-free races reported.")
        for report in result.reports:
            verdict = report.verdict.value if report.verdict else "unlabelled"
            lines.append(f"- `{report.key}` — class ({report.race_class.value}), "
                         f"ground truth: {verdict}")
            if include_witnesses and report.verdict is not None:
                detector = detectors[evaluation.name]
                run = runs[evaluation.name]
                try:
                    witness = build_witness(run.trace, detector.hb, report)
                except WitnessError as error:
                    lines.append(f"  - witness: infeasible ({error})")
                else:
                    order = witness.event_order()
                    free_task = run.trace[report.witness().free.index].task
                    use_task = run.trace[report.witness().use.read_index].task
                    lines.append(
                        f"  - witness schedule runs `{free_task}` before "
                        f"`{use_task}` "
                        f"(positions {witness.free_position} < {witness.use_position} "
                        f"of {len(witness.order)} ops)"
                    )
        if result.filtered_reports:
            lines.append(
                f"- filtered as commutative: "
                + ", ".join(
                    f"`{r.key.field}` [{r.witnesses[0].filtered_by}]"
                    for r in result.filtered_reports
                )
            )
        lines.append("")

    lines += ["## Low-level baseline (first app)", ""]
    first = apps[0]
    detector = detectors[first.name]
    low = LowLevelDetector(runs[first.name].trace, hb=detector.hb).detect()
    lines.append(
        f"The conventional conflicting-access definition reports "
        f"**{low.race_count()}** races on {first.name} where CAFA reports "
        f"**{len(evaluations[0].result.reports)}**."
    )

    if include_slowdowns:
        lines += ["", "## Tracing slowdown (Figure 8 layout)", "", "```"]
        for app_cls in apps:
            slowdown = measure_slowdown(app_cls, scale=scale, seed=seed)
            lines.append(f"{app_cls.name:<12} {slowdown.slowdown:5.2f}x")
        lines.append("```")

    lines.append("")
    return "\n".join(lines)
