"""Self-contained evaluation report generation.

``generate_report`` runs the full pipeline (Table 1, the §4.1
motivation, Figure 8) at a chosen scale and renders one Markdown
document with per-app race listings and violation witnesses — the
artifact a user of the tool would attach to a bug report or a paper
artifact submission.  Exposed as ``python -m repro report``.

Each application's contribution to the report (its Table 1 line, its
findings section, its slowdown measurement, and — for the first app —
the low-level baseline count) is produced by one self-contained,
picklable worker, so ``generate_report(..., jobs=N)`` fans the apps
out across worker processes with the pipeline's usual contract: the
rendered document is byte-identical to the serial one, ``jobs < 1`` is
rejected, and a worker crash is re-raised naming the app that failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Type

from ..apps.base import AppModel
from ..apps.catalog import ALL_APPS
from ..detect import LowLevelDetector, UseFreeDetector
from .performance import measure_slowdown
from ..parallel import fan_out as _fan_out
from ..parallel import validate_jobs as _validate_jobs
from .precision import evaluate_run
from .tables import _t1_line, _T1_HEADER  # noqa: F401  (reuse the layout)
from .witness import WitnessError, build_witness


@dataclass
class _AppReport:
    """One app's contribution to the document (picklable worker output)."""

    name: str
    table_line: str
    reported: int
    true_races: int
    #: the "### <app>" findings section, fully rendered
    section: List[str] = field(default_factory=list)
    #: conflicting-access baseline count (first app only)
    low_level_races: Optional[int] = None
    #: tracing slowdown ratio, when requested
    slowdown: Optional[float] = None


def _report_app(
    app_cls: Type[AppModel],
    scale: float,
    seed: int,
    include_witnesses: bool,
    include_slowdowns: bool,
    low_level_app: str,
) -> _AppReport:
    """Run one app's full report pipeline (pool worker)."""
    run = app_cls(scale=scale, seed=seed).run()
    detector = UseFreeDetector(run.trace)
    evaluation = evaluate_run(run)
    result = evaluation.result

    section: List[str] = [f"### {evaluation.name}", ""]
    section.append(f"*Session:* {app_cls.session}")
    section.append("")
    if not result.reports:
        section.append("No use-free races reported.")
    for report in result.reports:
        verdict = report.verdict.value if report.verdict else "unlabelled"
        section.append(f"- `{report.key}` — class ({report.race_class.value}), "
                       f"ground truth: {verdict}")
        if include_witnesses and report.verdict is not None:
            try:
                witness = build_witness(run.trace, detector.hb, report)
            except WitnessError as error:
                section.append(f"  - witness: infeasible ({error})")
            else:
                free_task = run.trace.task_of(report.witness().free.index)
                use_task = run.trace.task_of(report.witness().use.read_index)
                section.append(
                    f"  - witness schedule runs `{free_task}` before "
                    f"`{use_task}` "
                    f"(positions {witness.free_position} < {witness.use_position} "
                    f"of {len(witness.order)} ops)"
                )
    if result.filtered_reports:
        section.append(
            f"- filtered as commutative: "
            + ", ".join(
                f"`{r.key.field}` [{r.witnesses[0].filtered_by}]"
                for r in result.filtered_reports
            )
        )
    section.append("")

    low_level_races = None
    if app_cls.name == low_level_app:
        low = LowLevelDetector(run.trace, hb=detector.hb).detect()
        low_level_races = low.race_count()
    slowdown = None
    if include_slowdowns:
        slowdown = measure_slowdown(app_cls, scale=scale, seed=seed).slowdown
    return _AppReport(
        name=evaluation.name,
        table_line=_t1_line(evaluation.name, evaluation.row()),
        reported=evaluation.reported,
        true_races=evaluation.true_races,
        section=section,
        low_level_races=low_level_races,
        slowdown=slowdown,
    )


def generate_report(
    scale: float = 0.1,
    seed: int = 1,
    apps: Optional[Sequence[Type[AppModel]]] = None,
    include_witnesses: bool = True,
    include_slowdowns: bool = True,
    jobs: int = 1,
) -> str:
    """Run the evaluation and render a Markdown report.

    ``jobs > 1`` distributes the per-app pipelines over a process
    pool; the rendered document is identical either way.
    """
    _validate_jobs(jobs)
    apps = list(apps) if apps is not None else list(ALL_APPS)
    args = (scale, seed, include_witnesses, include_slowdowns, apps[0].name)
    if jobs == 1 or len(apps) <= 1:
        parts = [_report_app(app_cls, *args) for app_cls in apps]
    else:
        parts = _fan_out(_report_app, apps, args, jobs, "report")

    lines: List[str] = [
        "# CAFA evaluation report",
        "",
        f"workload scale {scale}, scheduler seed {seed}",
        "",
        "## Races reported (Table 1 layout)",
        "",
        "```",
        _T1_HEADER,
    ]
    lines.extend(part.table_line for part in parts)
    totals_reported = sum(part.reported for part in parts)
    totals_true = sum(part.true_races for part in parts)
    lines.append("```")
    lines.append("")
    precision = totals_true / totals_reported if totals_reported else 0.0
    lines.append(
        f"**{totals_reported} races reported, {totals_true} harmful "
        f"({precision:.0%} precision).**"
    )

    lines += ["", "## Per-application findings", ""]
    for part in parts:
        lines.extend(part.section)

    lines += ["## Low-level baseline (first app)", ""]
    first = parts[0]
    lines.append(
        f"The conventional conflicting-access definition reports "
        f"**{first.low_level_races}** races on {first.name} where CAFA "
        f"reports **{first.reported}**."
    )

    if include_slowdowns:
        lines += ["", "## Tracing slowdown (Figure 8 layout)", "", "```"]
        for part in parts:
            lines.append(f"{part.name:<12} {part.slowdown:5.2f}x")
        lines.append("```")

    lines.append("")
    return "\n".join(lines)
