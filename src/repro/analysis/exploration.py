"""Schedule exploration: detector stability across interleavings.

CAFA is predictive — it reports races from *one* observed execution,
including races that did not manifest in it.  A practical consequence
the paper relies on implicitly is schedule robustness: traces of the
same session under different thread interleavings should yield the
same reports (the causal structure, not the accidental timing, drives
detection).  This module runs a workload under many scheduler seeds
and aggregates the reports, quantifying that stability.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Type

from ..apps.base import AppModel
from ..detect import RaceSiteKey, detect_use_free_races


@dataclass
class ExplorationResult:
    """Aggregated detection over several scheduler seeds."""

    app: str
    seeds: List[int]
    #: race key -> number of seeds in which it was reported
    occurrences: Dict[RaceSiteKey, int] = field(default_factory=dict)
    #: per-seed report counts
    reports_per_seed: List[int] = field(default_factory=list)

    @property
    def stable_races(self) -> List[RaceSiteKey]:
        """Races reported under every explored seed."""
        total = len(self.seeds)
        return sorted(
            (k for k, n in self.occurrences.items() if n == total), key=str
        )

    @property
    def flaky_races(self) -> List[RaceSiteKey]:
        """Races reported under some but not all seeds."""
        total = len(self.seeds)
        return sorted(
            (k for k, n in self.occurrences.items() if 0 < n < total), key=str
        )

    @property
    def stability(self) -> float:
        """Fraction of distinct races that are seed-stable."""
        if not self.occurrences:
            return 1.0
        return len(self.stable_races) / len(self.occurrences)


def explore_seeds(
    app_cls: Type[AppModel], seeds: Sequence[int], scale: float = 0.05
) -> ExplorationResult:
    """Run the workload once per seed; aggregate the race reports."""
    counter: Counter = Counter()
    per_seed: List[int] = []
    for seed in seeds:
        run = app_cls(scale=scale, seed=seed).run()
        result = detect_use_free_races(run.trace)
        per_seed.append(result.report_count())
        for report in result.reports:
            counter[report.key] += 1
    return ExplorationResult(
        app=app_cls.name,
        seeds=list(seeds),
        occurrences=dict(counter),
        reports_per_seed=per_seed,
    )
