"""Schedule exploration: detector stability across interleavings.

CAFA is predictive — it reports races from *one* observed execution,
including races that did not manifest in it.  A practical consequence
the paper relies on implicitly is schedule robustness: traces of the
same session under different thread interleavings should yield the
same reports (the causal structure, not the accidental timing, drives
detection).  This module runs a workload under many scheduler seeds
and aggregates the reports, quantifying that stability.

The per-seed runs are independent, so ``explore_seeds(..., jobs=N)``
fans them out across worker processes with the same contract as the
rest of the pipeline (:mod:`repro.parallel`): results are
aggregated in seed order regardless of completion order, ``jobs < 1``
is rejected, and a worker crash is re-raised naming the seed that
failed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Type

from ..apps.base import AppModel
from ..detect import RaceSiteKey, detect_use_free_races
from ..parallel import fan_out as _fan_out
from ..parallel import validate_jobs as _validate_jobs


@dataclass
class ExplorationResult:
    """Aggregated detection over several scheduler seeds."""

    app: str
    seeds: List[int]
    #: race key -> number of seeds in which it was reported
    occurrences: Dict[RaceSiteKey, int] = field(default_factory=dict)
    #: per-seed report counts
    reports_per_seed: List[int] = field(default_factory=list)

    @property
    def stable_races(self) -> List[RaceSiteKey]:
        """Races reported under every explored seed."""
        total = len(self.seeds)
        return sorted(
            (k for k, n in self.occurrences.items() if n == total), key=str
        )

    @property
    def flaky_races(self) -> List[RaceSiteKey]:
        """Races reported under some but not all seeds."""
        total = len(self.seeds)
        return sorted(
            (k for k, n in self.occurrences.items() if 0 < n < total), key=str
        )

    @property
    def stability(self) -> float:
        """Fraction of distinct races that are seed-stable."""
        if not self.occurrences:
            return 1.0
        return len(self.stable_races) / len(self.occurrences)


def _explore_seed(
    seed: int, app_cls: Type[AppModel], scale: float
) -> Tuple[int, List[RaceSiteKey]]:
    """One seed's simulate → detect pipeline (pool worker)."""
    run = app_cls(scale=scale, seed=seed).run()
    result = detect_use_free_races(run.trace)
    return result.report_count(), [report.key for report in result.reports]


def explore_seeds(
    app_cls: Type[AppModel],
    seeds: Sequence[int],
    scale: float = 0.05,
    jobs: int = 1,
) -> ExplorationResult:
    """Run the workload once per seed; aggregate the race reports.

    ``jobs > 1`` distributes the per-seed runs over a process pool;
    ``jobs=1`` (the default) runs serially in this process.  The
    aggregate is identical either way.
    """
    _validate_jobs(jobs)
    seed_list = list(seeds)
    if jobs == 1 or len(seed_list) <= 1:
        outcomes = [_explore_seed(seed, app_cls, scale) for seed in seed_list]
    else:
        outcomes = _fan_out(
            _explore_seed,
            seed_list,
            (app_cls, scale),
            jobs,
            "explore",
            describe=lambda seed: f"seed {seed} of app {app_cls.name!r}",
        )
    counter: Counter = Counter()
    per_seed: List[int] = []
    for count, keys in outcomes:
        per_seed.append(count)
        for key in keys:
            counter[key] += 1
    return ExplorationResult(
        app=app_cls.name,
        seeds=seed_list,
        occurrences=dict(counter),
        reports_per_seed=per_seed,
    )
