"""End-to-end evaluation pipeline: Table 1 precision, Figure 8
slowdowns, and the §6.4 analysis-time scaling study."""

from .exploration import ExplorationResult, explore_seeds
from .performance import (
    DetectionBenchmark,
    ScalingPoint,
    SlowdownResult,
    analysis_scaling,
    detection_benchmark,
    measure_slowdown,
)
from .pipeline import (
    SCALE_ENV_VAR,
    ScalingMatrix,
    bench_scale,
    paper_table1_rows,
    reproduce_figure8,
    reproduce_table1,
    scaling_matrix,
)
from .precision import AppEvaluation, Table1, evaluate_run
from .soak import SoakResult, soak_all, soak_app, soak_trace
from .tables import format_scaling, format_slowdowns, format_table1
from .triage import (
    BudgetCurve,
    BudgetPoint,
    TriageItem,
    TriageReport,
    budget_curve,
    triage_corpus,
)
from .witness import ViolationWitness, WitnessError, build_witness

__all__ = [
    "AppEvaluation",
    "DetectionBenchmark",
    "ExplorationResult",
    "explore_seeds",
    "detection_benchmark",
    "SCALE_ENV_VAR",
    "ScalingMatrix",
    "ScalingPoint",
    "scaling_matrix",
    "SlowdownResult",
    "SoakResult",
    "Table1",
    "soak_all",
    "soak_app",
    "soak_trace",
    "BudgetCurve",
    "BudgetPoint",
    "TriageItem",
    "TriageReport",
    "ViolationWitness",
    "WitnessError",
    "analysis_scaling",
    "budget_curve",
    "build_witness",
    "bench_scale",
    "triage_corpus",
    "evaluate_run",
    "format_scaling",
    "format_slowdowns",
    "format_table1",
    "measure_slowdown",
    "paper_table1_rows",
    "reproduce_figure8",
    "reproduce_table1",
]
