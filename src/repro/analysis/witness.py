"""Violation witnesses: alternate schedules that manifest a race.

CAFA is a *predictive* detector (Section 7.1.3): it reports a use-free
race when no happens-before edge orders the use and the free, claiming
some other execution runs the free first.  This module makes that claim
constructive — given a report, it builds an alternate total order of
the trace's operations that

* respects every happens-before edge of the causality model,
* keeps each looper's events atomic (no event of a looper interleaves
  another event of the same looper), and
* executes the free **before** the use,

i.e. a concrete schedule in which the use-after-free manifests (the
Figure 1b interleaving for the MyTracks report).  If no such order
exists the race claim would be refuted; for races the model certifies
as unordered one always exists at event granularity.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set

from ..detect import RaceReport
from ..hb import HappensBefore
from ..trace import OpKind, TaskKind, Trace


@dataclass
class ViolationWitness:
    """An alternate schedule manifesting a use-free race."""

    trace: Trace
    report: RaceReport
    #: trace operation indices in the alternate execution order
    order: List[int]

    def position(self, op_index: int) -> int:
        return self.order.index(op_index)

    @property
    def free_position(self) -> int:
        return self.position(self.report.witness().free.index)

    @property
    def use_position(self) -> int:
        return self.position(self.report.witness().use.read_index)

    def event_order(self) -> List[str]:
        """Task dispatch order (first operation of each task)."""
        seen: Set[str] = set()
        out: List[str] = []
        task_of = self.trace.task_of
        for op_index in self.order:
            task = task_of(op_index)
            if task not in seen:
                seen.add(task)
                out.append(task)
        return out

    def format(self, limit: int = 30) -> str:
        """Human-readable schedule (task switches; the use and free
        operations are always shown, eliding the middle if needed)."""
        witness = self.report.witness()
        entries = []  # (is_marked, text)
        previous = None
        task_of = self.trace.task_of
        kind_of = self.trace.kind_of
        for op_index in self.order:
            task = task_of(op_index)
            marker = ""
            if op_index == witness.free.index:
                marker = "   <-- the FREE"
            elif op_index == witness.use.read_index:
                marker = "   <-- the USE (after the free: violation!)"
            if task != previous or marker:
                entries.append(
                    (bool(marker), f"  {task}: {kind_of(op_index).value}{marker}")
                )
                previous = task
        lines = [f"alternate schedule manifesting: {self.report.key}"]
        if len(entries) <= limit:
            lines.extend(text for _, text in entries)
            return "\n".join(lines)
        # keep a prefix, every marked line, and some context around them
        marked = [i for i, (m, _) in enumerate(entries) if m]
        keep = set(range(min(limit // 2, len(entries))))
        for m in marked:
            keep.update(range(max(0, m - 2), min(len(entries), m + 2)))
        previous_kept = -1
        for i in sorted(keep):
            if i != previous_kept + 1:
                lines.append("  ...")
            lines.append(entries[i][1])
            previous_kept = i
        if previous_kept != len(entries) - 1:
            lines.append("  ...")
        return "\n".join(lines)


class WitnessError(Exception):
    """No alternate schedule exists (the race claim is infeasible)."""


def build_witness(
    trace: Trace, hb: HappensBefore, report: RaceReport
) -> ViolationWitness:
    """Construct an alternate schedule running the free before the use.

    A greedy topological sort over the operations: happens-before edges
    and per-task program order are hard constraints; each looper may
    have only one open event at a time; the begin of the use's task is
    held back until the free has executed.
    """
    race = report.witness()
    use_index = race.use.read_index
    free_index = race.free.index
    n = len(trace)
    # Per-op task names and kinds read straight from the columns — no
    # :class:`Operation` is materialized anywhere on this path.
    task_of = trace.task_of
    kind_of = trace.kind_of
    op_task = [task_of(i) for i in range(n)]
    use_task = op_task[use_index]
    free_task = op_task[free_index]

    # Dependency edges: program order within each task + key-graph edges.
    successors: Dict[int, List[int]] = defaultdict(list)
    indegree = [0] * n
    previous_of_task: Dict[str, int] = {}
    for i, task in enumerate(op_task):
        prev = previous_of_task.get(task)
        if prev is not None:
            successors[prev].append(i)
            indegree[i] += 1
        previous_of_task[task] = i
    graph = hb.graph
    for u, v, _rule in graph.edges():
        op_u, op_v = graph.op_of(u), graph.op_of(v)
        if op_task[op_u] != op_task[op_v]:
            successors[op_u].append(op_v)
            indegree[op_v] += 1

    ready: Set[int] = {i for i in range(n) if indegree[i] == 0}
    order: List[int] = []
    open_event: Dict[str, str] = {}  # looper -> open event task
    free_done = False

    def eligible(i: int) -> bool:
        task = op_task[i]
        info = trace.tasks.get(task)
        if info is not None and info.task_kind is TaskKind.EVENT and info.looper:
            current = open_event.get(info.looper)
            if current is not None and current != task:
                return False  # another event of this looper is open
            if (
                not free_done
                and task == use_task
                and kind_of(i) is OpKind.BEGIN
            ):
                return False  # hold the use's event back until the free ran
        return True

    def priority(i: int) -> tuple:
        # run the free's task as early as possible, the use's as late
        # as possible, everything else in original order
        task = op_task[i]
        if task == free_task:
            rank = 0
        elif task == use_task:
            rank = 2
        else:
            rank = 1
        return (rank, i)

    while ready:
        candidates = [i for i in ready if eligible(i)]
        if not candidates:
            raise WitnessError(
                f"no alternate schedule exists for {report.key} "
                "(the race claim is infeasible)"
            )
        chosen = min(candidates, key=priority)
        ready.remove(chosen)
        order.append(chosen)
        task = op_task[chosen]
        info = trace.tasks.get(task)
        if info is not None and info.task_kind is TaskKind.EVENT and info.looper:
            kind = kind_of(chosen)
            if kind is OpKind.BEGIN:
                open_event[info.looper] = task
            elif kind is OpKind.END:
                open_event.pop(info.looper, None)
        if chosen == free_index:
            free_done = True
        for succ in successors[chosen]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.add(succ)

    if len(order) != n:
        raise WitnessError(
            f"no alternate schedule exists for {report.key} "
            "(dependency cycle under the atomicity constraints)"
        )
    witness = ViolationWitness(trace=trace, report=report, order=order)
    if witness.free_position > witness.use_position:
        raise WitnessError(
            f"could not schedule the free before the use for {report.key}"
        )
    return witness
