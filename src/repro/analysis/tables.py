"""Plain-text rendering of the evaluation artifacts.

The formats mirror the paper: Table 1's columns (events, races
reported, true races (a)/(b)/(c), false positives I/II/III) and
Figure 8's per-app slowdown bars.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..apps.base import Table1Row
from .performance import ScalingPoint, SlowdownResult
from .precision import Table1

_T1_HEADER = (
    f"{'Application':<12} {'Events':>7} {'Reported':>9} "
    f"{'(a)':>4} {'(b)':>4} {'(c)':>4} {'I':>4} {'II':>4} {'III':>4}"
)


def _t1_line(name: str, row: Table1Row) -> str:
    return (
        f"{name:<12} {row.events:>7} {row.reported:>9} "
        f"{row.a:>4} {row.b:>4} {row.c:>4} "
        f"{row.fp1:>4} {row.fp2:>4} {row.fp3:>4}"
    )


def format_table1(
    table: Table1, paper_rows: Optional[Sequence[Table1Row]] = None
) -> str:
    """Render the reproduced Table 1 (optionally beside paper numbers)."""
    lines = ["Table 1: races reported by CAFA", _T1_HEADER, "-" * len(_T1_HEADER)]
    for i, evaluation in enumerate(table.evaluations):
        lines.append(_t1_line(evaluation.name, evaluation.row()))
        if paper_rows is not None:
            lines.append(_t1_line("  (paper)", paper_rows[i]))
    totals = table.totals()
    lines.append("-" * len(_T1_HEADER))
    lines.append(_t1_line("Overall", totals))
    lines.append(
        f"precision: {table.overall_precision:.0%} of reported races are "
        f"harmful (paper: 60%)"
    )
    return "\n".join(lines)


def format_slowdowns(results: Sequence[SlowdownResult]) -> str:
    """Render Figure 8 as text bars."""
    lines = [
        "Figure 8: CPU-time slowdown of trace collection",
        f"{'Application':<12} {'Slowdown':>9}  {'Paper':>6}  bar",
    ]
    for r in results:
        bar = "#" * int(round(r.slowdown * 4))
        paper = f"~{r.paper_slowdown:.1f}x" if r.paper_slowdown else "?"
        lines.append(f"{r.name:<12} {r.slowdown:>8.2f}x  {paper:>6}  {bar}")
    return "\n".join(lines)


def format_scaling(points: Sequence[ScalingPoint]) -> str:
    """Render the §6.4 analysis-time sweep."""
    lines = [
        "Offline analysis time vs. trace size (Section 6.4)",
        f"{'Events':>8} {'Ops':>9} {'HB build':>10} {'Detect':>9} {'Total':>9}",
    ]
    for p in points:
        lines.append(
            f"{p.events:>8} {p.trace_ops:>9} {p.hb_seconds:>9.2f}s "
            f"{p.detect_seconds:>8.2f}s {p.total_seconds:>8.2f}s"
        )
    return "\n".join(lines)
