"""The end-to-end evaluation pipeline.

``reproduce_table1`` runs every §6.1 workload through simulate → trace
→ detect → classify → tabulate; ``reproduce_figure8`` measures the
per-app tracing slowdown.  Both accept a ``scale`` factor controlling
the background event load (1.0 approximates the paper's event counts;
benchmarks default to a smaller scale via the ``REPRO_BENCH_SCALE``
environment variable) and a ``jobs`` count: with ``jobs > 1`` the
per-app pipelines fan out across worker processes.  Every app's
simulation and analysis is deterministic in ``(scale, seed)``, so the
parallel results are byte-identical to the serial ones and are always
returned in app order, regardless of which worker finishes first.

Worker failures are re-raised in the caller with the originating app's
name attached, so a crash inside a pool process is as diagnosable as a
serial one.  The pool machinery itself lives in :mod:`repro.parallel`
(shared with the per-seed exploration, the report generator, and the
sharded streaming daemon); this module only contributes the per-app
worker functions.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Type

from ..apps.base import AppModel, Table1Row
from ..apps.catalog import ALL_APPS
from ..detect import DetectorOptions
from ..obs.spans import span
from ..parallel import fan_out as _fan_out  # shared executor (repro.parallel)
from ..parallel import validate_jobs as _validate_jobs
from .performance import (
    ScalingPoint,
    SlowdownResult,
    _matrix_cell,
    measure_slowdown,
)
from .precision import AppEvaluation, Table1, evaluate_run

#: environment variable overriding the default benchmark scale
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


def bench_scale(default: float = 0.1) -> float:
    """The workload scale benchmarks should use."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{SCALE_ENV_VAR} must be a float, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {value}")
    return value


def _evaluate_app(
    app_cls: Type[AppModel],
    scale: float,
    seed: int,
    options: Optional[DetectorOptions],
    columnar: bool = True,
) -> AppEvaluation:
    """One app's simulate → detect → classify pipeline (pool worker)."""
    with span("pipeline.app", app=app_cls.name):
        run = app_cls(scale=scale, seed=seed).run(columnar=columnar)
        return evaluate_run(run, options)


def reproduce_table1(
    apps: Optional[Sequence[Type[AppModel]]] = None,
    scale: float = 0.1,
    seed: int = 0,
    options: Optional[DetectorOptions] = None,
    jobs: int = 1,
    columnar: bool = True,
) -> Table1:
    """Run the precision evaluation over the given apps (default: all ten).

    ``jobs > 1`` distributes the per-app pipelines over a process pool;
    ``jobs=1`` (the default) runs serially in this process.  The rows
    are identical and identically ordered either way.  ``columnar``
    selects the trace backend of every run (the legacy object path is
    the differential-testing baseline).
    """
    _validate_jobs(jobs)
    app_list = list(apps) if apps is not None else list(ALL_APPS)
    table = Table1()
    if jobs == 1 or len(app_list) <= 1:
        for app_cls in app_list:
            table.evaluations.append(
                _evaluate_app(app_cls, scale, seed, options, columnar)
            )
    else:
        table.evaluations.extend(
            _fan_out(
                _evaluate_app,
                app_list,
                (scale, seed, options, columnar),
                jobs,
                "table1",
            )
        )
    return table


def paper_table1_rows(
    apps: Optional[Sequence[Type[AppModel]]] = None,
) -> List[Table1Row]:
    """The published Table 1 rows, in the same order."""
    return [app.paper_row for app in (apps if apps is not None else ALL_APPS)]


@dataclasses.dataclass
class ScalingMatrix:
    """The cross-app §6.4 scaling sweep: apps x scales in one table.

    ``rows`` maps each app name to its :class:`ScalingPoint` list, one
    point per scale, in app order regardless of worker completion
    order.  ``as_dict``/``to_json`` render the whole matrix as a single
    JSON-friendly table for dashboards and regression diffing.
    """

    scales: List[float]
    seed: int
    dense_bits: bool
    rows: Dict[str, List[ScalingPoint]]

    def as_dict(self) -> dict:
        return {
            "scales": list(self.scales),
            "seed": self.seed,
            "dense_bits": self.dense_bits,
            "apps": {
                name: [dataclasses.asdict(p) for p in points]
                for name, points in self.rows.items()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)


def scaling_matrix(
    apps: Optional[Sequence[Type[AppModel]]] = None,
    scales: Optional[Sequence[float]] = None,
    seed: int = 0,
    jobs: int = 1,
    dense_bits: bool = False,
) -> ScalingMatrix:
    """Run the analysis-time scaling sweep over many apps in one call.

    Each app's sweep (all its scales) is one unit of work; ``jobs > 1``
    fans the per-app sweeps out across worker processes through the
    same pool machinery as ``reproduce_table1``.  Results are identical
    and identically ordered either way.
    """
    _validate_jobs(jobs)
    app_list = list(apps) if apps is not None else list(ALL_APPS)
    scale_list = list(scales) if scales is not None else [0.02, 0.05, 0.1]
    if not scale_list:
        raise ValueError("scaling_matrix needs at least one scale")
    if jobs == 1 or len(app_list) <= 1:
        results = [
            _matrix_cell(app_cls, scale_list, seed, dense_bits)
            for app_cls in app_list
        ]
    else:
        results = _fan_out(
            _matrix_cell,
            app_list,
            (scale_list, seed, dense_bits),
            jobs,
            "scaling-matrix",
        )
    return ScalingMatrix(
        scales=scale_list,
        seed=seed,
        dense_bits=dense_bits,
        rows={
            app_cls.name: points
            for app_cls, points in zip(app_list, results)
        },
    )


def reproduce_figure8(
    apps: Optional[Sequence[Type[AppModel]]] = None,
    scale: float = 0.1,
    seed: int = 0,
    jobs: int = 1,
) -> List[SlowdownResult]:
    """Measure the tracing slowdown for the given apps (default: all ten).

    Slowdowns are ratios of *virtual* CPU time, so fanning out over
    ``jobs`` worker processes cannot perturb the measurement.
    """
    _validate_jobs(jobs)
    app_list = list(apps) if apps is not None else list(ALL_APPS)
    if jobs == 1 or len(app_list) <= 1:
        return [
            measure_slowdown(app_cls, scale=scale, seed=seed)
            for app_cls in app_list
        ]
    return _fan_out(measure_slowdown, app_list, (scale, seed), jobs, "figure8")
