"""The end-to-end evaluation pipeline.

``reproduce_table1`` runs every §6.1 workload through simulate → trace
→ detect → classify → tabulate; ``reproduce_figure8`` measures the
per-app tracing slowdown.  Both accept a ``scale`` factor controlling
the background event load (1.0 approximates the paper's event counts;
benchmarks default to a smaller scale via the ``REPRO_BENCH_SCALE``
environment variable).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Type

from ..apps.base import AppModel, Table1Row
from ..apps.catalog import ALL_APPS
from ..detect import DetectorOptions
from .performance import SlowdownResult, measure_slowdown
from .precision import Table1, evaluate_run

#: environment variable overriding the default benchmark scale
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


def bench_scale(default: float = 0.1) -> float:
    """The workload scale benchmarks should use."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{SCALE_ENV_VAR} must be a float, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {value}")
    return value


def reproduce_table1(
    apps: Optional[Sequence[Type[AppModel]]] = None,
    scale: float = 0.1,
    seed: int = 0,
    options: Optional[DetectorOptions] = None,
) -> Table1:
    """Run the precision evaluation over the given apps (default: all ten)."""
    table = Table1()
    for app_cls in apps if apps is not None else ALL_APPS:
        run = app_cls(scale=scale, seed=seed).run()
        table.evaluations.append(evaluate_run(run, options))
    return table


def paper_table1_rows(
    apps: Optional[Sequence[Type[AppModel]]] = None,
) -> List[Table1Row]:
    """The published Table 1 rows, in the same order."""
    return [app.paper_row for app in (apps if apps is not None else ALL_APPS)]


def reproduce_figure8(
    apps: Optional[Sequence[Type[AppModel]]] = None,
    scale: float = 0.1,
    seed: int = 0,
) -> List[SlowdownResult]:
    """Measure the tracing slowdown for the given apps (default: all ten)."""
    return [
        measure_slowdown(app_cls, scale=scale, seed=seed)
        for app_cls in (apps if apps is not None else ALL_APPS)
    ]
