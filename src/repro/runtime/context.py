"""The task context: the API simulated application code runs against.

A :class:`TaskContext` belongs to one frame (a regular thread, a
binder/service thread, or a looper thread) and tracks which *task* is
currently executing — the thread itself, or the event being dispatched.
Every context operation emits the corresponding trace record stamped
with the current task and virtual time, and charges the cost model.

Conventions for simulated code:

* non-blocking operations are plain method calls
  (``ctx.write("x", 1)``, ``ctx.post(looper, handler)``);
* potentially blocking operations are generators and must be invoked
  with ``yield from`` (``yield from ctx.sleep(5)``,
  ``reply = yield from ctx.binder_call("gps", "getLastLocation")``).

The pointer-level helpers (:meth:`get_field`, :meth:`put_field`,
:meth:`use_field`, :meth:`guarded_use`) emit the same record shapes the
mini-DVM interpreter produces, with synthetic pcs that are stable
across executions of the same handler; handlers can also run real
bytecode via :meth:`call_method`.
"""

from __future__ import annotations

import inspect
import itertools
from typing import Any, Callable, Generator, Optional, Sequence

from ..dvm.heap import Heap, HeapObject, is_reference, object_id_of
from ..dvm.interpreter import DvmNullPointerError
from ..trace import (
    Acquire,
    Begin,
    Branch,
    BranchKind,
    Deref,
    End,
    Fork,
    IpcCall,
    IpcReturn,
    Join,
    MethodEnter,
    MethodExit,
    Notify,
    Perform,
    PtrRead,
    PtrWrite,
    Read,
    Register,
    Release,
    Send,
    SendAtFront,
    Wait,
    Write,
)
from .errors import SimulationError
from .clock import ms
from .queue import SimEvent
from .requests import (
    AcquireReq,
    BinderCallReq,
    JoinReq,
    PauseReq,
    SleepReq,
    StopLooperReq,
    WaitReq,
)


class _CtxSink:
    """Adapter exposing the :class:`~repro.dvm.interpreter.DvmSink`
    protocol on top of a context (avoids name clashes with the app
    API's ``read``/``write``)."""

    __slots__ = ("ctx",)

    def __init__(self, ctx: "TaskContext") -> None:
        self.ctx = ctx

    def ptr_read(self, address, object_id, method, pc):
        self.ctx._emit(
            PtrRead, address=address, object_id=object_id, method=method, pc=pc
        )

    def ptr_write(self, address, value, container, method, pc):
        self.ctx._emit(
            PtrWrite,
            address=address,
            value=value,
            container=container,
            method=method,
            pc=pc,
        )

    def deref(self, object_id, method, pc):
        self.ctx._emit(Deref, object_id=object_id, method=method, pc=pc)

    def branch(self, kind, pc, target, object_id, method):
        self.ctx._emit(
            Branch,
            branch_kind=kind,
            pc=pc,
            target=target,
            object_id=object_id,
            method=method,
        )

    def method_enter(self, method, return_pc):
        self.ctx._emit(MethodEnter, method=method, return_pc=return_pc)

    def method_exit(self, method, return_pc, via_exception):
        self.ctx._emit(
            MethodExit, method=method, return_pc=return_pc, via_exception=via_exception
        )

    def read(self, var, site):
        self.ctx._emit(Read, var=var, site=site)

    def write(self, var, site):
        self.ctx._emit(Write, var=var, site=site)


class TaskContext:
    """Execution context of one frame.  See the module docstring."""

    def __init__(self, system, process, frame) -> None:
        self.system = system
        self.process = process
        self.frame = frame
        #: the task currently executing on this frame (thread id, or an
        #: event id while the looper dispatches that event)
        self.current_task: str = frame.thread_id
        #: synthetic method name for ctx-level pointer records
        self._synthetic_method: str = frame.thread_id
        self._synth_pc = itertools.count()
        self.sink = _CtxSink(self)

    # ------------------------------------------------------------------
    # record emission & cost charging
    # ------------------------------------------------------------------

    def _emit(self, op_cls, **fields) -> None:
        system = self.system
        system.charge(system.time_model.base_op_cost)
        tracer = system.tracer
        if tracer.enabled:
            system.charge(system.time_model.trace_record_cost)
            tracer.emit_fields(op_cls, self.current_task, system.clock.now, fields)

    def compute(self, ticks: int) -> None:
        """Consume ``ticks`` of un-instrumented CPU time."""
        self.system.charge(ticks)

    def _fresh_pc(self) -> int:
        return next(self._synth_pc)

    def _reset_synthetic(self, method: str) -> None:
        self._synthetic_method = method
        self._synth_pc = itertools.count()

    # ------------------------------------------------------------------
    # shared variables (low-level reads/writes)
    # ------------------------------------------------------------------

    def read(self, var: str, site: str = "") -> Any:
        """Read a process-shared variable (emits a ``rd`` record)."""
        self._emit(
            Read,
            var=f"{self.process.name}:{var}",
            site=site or f"{self._synthetic_method}:rd[{var}]",
        )
        return self.process.store.get(var)

    def write(self, var: str, value: Any, site: str = "") -> None:
        """Write a process-shared variable (emits a ``wr`` record)."""
        self._emit(
            Write,
            var=f"{self.process.name}:{var}",
            site=site or f"{self._synthetic_method}:wr[{var}]",
        )
        self.process.store[var] = value

    # ------------------------------------------------------------------
    # heap / pointer operations (synthetic bytecode)
    # ------------------------------------------------------------------

    @property
    def heap(self) -> Heap:
        return self.process.heap

    def new_object(self, cls: str) -> HeapObject:
        """Allocate a heap object (un-instrumented, like new-instance)."""
        self.system.charge(self.system.time_model.base_op_cost)
        return self.process.heap.new(cls)

    def get_field(self, container: HeapObject, field: str) -> Any:
        """Pointer read of ``container.field`` (iget-object shape)."""
        pc = self._fresh_pc()
        method = self._synthetic_method
        self.sink.deref(container.object_id, method, pc)
        value = container.fields.get(field)
        self.sink.ptr_read(
            Heap.field_address(container, field), object_id_of(value), method, pc
        )
        return value

    def put_field(self, container: HeapObject, field: str, value: Optional[HeapObject]) -> None:
        """Pointer write of ``container.field`` (iput-object shape).

        Writing ``None`` is a *free*; writing an object is an
        *allocation* of the slot.
        """
        if not is_reference(value):
            raise SimulationError(f"put_field of non-reference {value!r}")
        pc = self._fresh_pc()
        method = self._synthetic_method
        self.sink.deref(container.object_id, method, pc)
        self.sink.ptr_write(
            Heap.field_address(container, field),
            object_id_of(value),
            container.object_id,
            method,
            pc,
        )
        container.fields[field] = value

    def get_static(self, cls: str, field: str) -> Any:
        """Pointer read of a static slot (sget-object shape)."""
        pc = self._fresh_pc()
        value = self.process.heap.get_static(cls, field)
        self.sink.ptr_read(
            Heap.static_address(cls, field),
            object_id_of(value),
            self._synthetic_method,
            pc,
        )
        return value

    def put_static(self, cls: str, field: str, value: Optional[HeapObject]) -> None:
        """Pointer write of a static slot (sput-object shape)."""
        if not is_reference(value):
            raise SimulationError(f"put_static of non-reference {value!r}")
        pc = self._fresh_pc()
        self.sink.ptr_write(
            Heap.static_address(cls, field),
            object_id_of(value),
            None,
            self._synthetic_method,
            pc,
        )
        self.process.heap.put_static(cls, field, value)

    def invoke_on(self, obj: Optional[HeapObject], label: str = "call") -> None:
        """Dereference ``obj`` (method-invocation shape); simulated NPE
        when ``obj`` is null."""
        pc = self._fresh_pc()
        if obj is None:
            raise DvmNullPointerError(self._synthetic_method, pc)
        self.sink.deref(obj.object_id, self._synthetic_method, pc)

    def use_field(self, container: HeapObject, field: str) -> HeapObject:
        """An (unguarded) *use*: pointer read followed by a dereference.

        This is the racy shape of Figure 1 — if a concurrent event
        frees the slot first, the dereference throws.
        """
        value = self.get_field(container, field)
        self.invoke_on(value)
        return value

    def use_static(self, cls: str, field: str) -> HeapObject:
        """An unguarded use of a static pointer slot."""
        value = self.get_static(cls, field)
        self.invoke_on(value)
        return value

    def guarded_use(self, container: HeapObject, field: str) -> Optional[HeapObject]:
        """A null-guarded use — the commutative shape of Figure 5.

        Emits the ``if-eqz`` fall-through branch record so the if-guard
        check (Section 4.3) recognizes the dereference as safe.
        """
        value = self.get_field(container, field)
        branch_pc = self._fresh_pc()
        method = self._synthetic_method
        if value is not None:
            self.sink.branch(
                BranchKind.IF_EQZ,
                branch_pc,
                branch_pc + 2,
                value.object_id,
                method,
            )
            deref_pc = self._fresh_pc()
            self.sink.deref(value.object_id, method, deref_pc)
            return value
        # keep the pc numbering identical on the null path
        self._fresh_pc()
        return None

    def guarded_use_static(self, cls: str, field: str) -> Optional[HeapObject]:
        """A null-guarded use of a static pointer slot."""
        value = self.get_static(cls, field)
        branch_pc = self._fresh_pc()
        method = self._synthetic_method
        if value is not None:
            self.sink.branch(
                BranchKind.IF_EQZ, branch_pc, branch_pc + 2, value.object_id, method
            )
            deref_pc = self._fresh_pc()
            self.sink.deref(value.object_id, method, deref_pc)
            return value
        self._fresh_pc()
        return None

    def call_method(self, name: str, args: Sequence[Any] = ()) -> Any:
        """Run a mini-DVM method of this process with tracing."""
        interpreter = self.process.interpreter
        previous_sink = interpreter.sink
        interpreter.sink = self.sink
        before = interpreter.executed
        try:
            return interpreter.invoke(name, args)
        finally:
            interpreter.sink = previous_sink
            executed = interpreter.executed - before
            self.system.charge(executed * self.system.time_model.base_op_cost)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def post(
        self,
        looper: str,
        handler: Callable,
        delay_ms: int = 0,
        label: Optional[str] = None,
        args: Sequence[Any] = (),
    ) -> str:
        """``send(t, e, delay)`` — enqueue an event at the queue tail."""
        return self._post(looper, handler, delay_ms, label, args, at_front=False)

    def post_at_front(
        self,
        looper: str,
        handler: Callable,
        label: Optional[str] = None,
        args: Sequence[Any] = (),
    ) -> str:
        """``sendAtFront(t, e)`` — enqueue an event at the queue front.

        Like the Android API, no delay can be specified.
        """
        return self._post(looper, handler, 0, label, args, at_front=True)

    def _post(
        self,
        looper: str,
        handler: Callable,
        delay_ms: int,
        label: Optional[str],
        args: Sequence[Any],
        at_front: bool,
        external: bool = False,
        listener: Optional[str] = None,
    ) -> str:
        system = self.system
        looper_frame = system.resolve_looper(looper)
        queue = looper_frame.event_queue
        label = label or getattr(handler, "__name__", "event")
        task_id = system.new_event_task(
            looper_frame, label, external, process=self.process.name
        )
        if at_front:
            self._emit(SendAtFront, event=task_id, queue=queue.name)
        else:
            self._emit(Send, event=task_id, delay=delay_ms, queue=queue.name)
        event = SimEvent(
            task_id=task_id,
            label=label,
            handler=handler,
            args=tuple(args),
            when=system.clock.now + ms(delay_ms),
            at_front=at_front,
            external=external,
            listener=listener,
        )
        if at_front:
            queue.enqueue_front(event)
        else:
            queue.enqueue(event)
        return task_id

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------

    def register_listener(
        self, name: str, handler: Callable, traced: bool = True
    ) -> None:
        """Register an event listener.

        ``traced=False`` models a listener living in a package CAFA did
        not instrument (Section 5.2 lists only four packages): the
        registration record is *not* emitted, so the analyzer misses
        the register-before-perform edge — the source of the paper's
        Type I false positives.
        """
        self.process.listeners[name] = handler
        if traced:
            self._emit(Register, listener=name)
        else:
            self.system.charge(self.system.time_model.base_op_cost)

    def fire_listener(
        self, looper: str, name: str, delay_ms: int = 0, label: Optional[str] = None
    ) -> str:
        """Send an event that performs the listener registered as ``name``."""
        return self._post(
            looper,
            handler=None,  # resolved at dispatch via the registry
            delay_ms=delay_ms,
            label=label or f"perform:{name}",
            args=(),
            at_front=False,
            listener=name,
        )

    # ------------------------------------------------------------------
    # event dispatch (used by the looper main loop)
    # ------------------------------------------------------------------

    def run_event(self, event: SimEvent) -> Generator:
        """Dispatch one event atomically on this looper frame."""
        previous_task = self.current_task
        previous_method = self._synthetic_method
        previous_pc = self._synth_pc
        self.current_task = event.task_id
        self._reset_synthetic(event.label)
        self._emit(Begin)
        try:
            if event.listener is not None:
                self._emit(Perform, listener=event.listener)
                handler = self.process.listeners.get(event.listener)
            else:
                handler = event.handler
            if handler is not None:
                try:
                    if inspect.isgeneratorfunction(handler):
                        yield from handler(self, *event.args)
                    else:
                        handler(self, *event.args)
                except DvmNullPointerError as exc:
                    self.system.record_violation(
                        task=event.task_id,
                        label=event.label,
                        method=exc.method,
                        pc=exc.pc,
                    )
        finally:
            self._emit(End)
            self.current_task = previous_task
            self._synthetic_method = previous_method
            self._synth_pc = previous_pc

    # ------------------------------------------------------------------
    # threads
    # ------------------------------------------------------------------

    def fork(self, name: str, body: Callable, daemon: bool = False) -> str:
        """Fork a regular thread; returns its thread/task id."""
        thread_id = self.system.spawn_thread(self.process, name, body, daemon=daemon)
        self._emit(Fork, child=thread_id)
        return thread_id

    def join(self, thread_id: str) -> Generator:
        """Block until ``thread_id`` ends (``yield from``); returns its
        result."""
        result = yield JoinReq(thread_id)
        self._emit(Join, child=thread_id)
        return result

    def sleep(self, milliseconds: float) -> Generator:
        """Suspend this frame for virtual ``milliseconds``."""
        yield SleepReq(until=self.system.clock.now + ms(milliseconds))

    def sleep_until(self, milliseconds: float) -> Generator:
        """Suspend until the absolute virtual time ``milliseconds``."""
        yield SleepReq(until=ms(milliseconds))

    def pause(self) -> Generator:
        """A voluntary preemption point."""
        yield PauseReq()

    def quit_looper(self, looper: str) -> Generator:
        """Ask a looper to stop after its current event (``yield from``).

        Models ``Looper.quit()``: already-queued events are discarded,
        the looper's end record is emitted, and the simulation can
        terminate even if the queue was not empty.
        """
        yield StopLooperReq(looper_id=looper)

    # ------------------------------------------------------------------
    # monitors & locks
    # ------------------------------------------------------------------

    def wait(self, monitor: str) -> Generator:
        """``wait(t, m)`` — block until the monitor is notified."""
        ticket = yield WaitReq(monitor)
        self._emit(Wait, monitor=monitor, ticket=ticket)

    def notify(self, monitor: str) -> None:
        """``notify(t, m)`` — wake one waiter."""
        ticket = self.system.notify_monitor(monitor, all_waiters=False)
        self._emit(Notify, monitor=monitor, ticket=ticket)

    def notify_all(self, monitor: str) -> None:
        """Wake every waiter of the monitor."""
        ticket = self.system.notify_monitor(monitor, all_waiters=True)
        self._emit(Notify, monitor=monitor, ticket=ticket)

    def acquire(self, lock: str) -> Generator:
        """Acquire a mutual-exclusion lock (``yield from``).

        Locks convey **no** happens-before in the model; the detector
        uses the acquire/release records for lockset checking only.
        """
        yield AcquireReq(lock)
        self._emit(Acquire, lock=lock)

    def release(self, lock: str) -> None:
        """Release a lock previously acquired by this task."""
        self.system.release_lock(lock, self.frame.frame_id, self.current_task)
        self._emit(Release, lock=lock)

    # ------------------------------------------------------------------
    # Binder IPC
    # ------------------------------------------------------------------

    def binder_call(
        self, service: str, method: str, *args: Any, oneway: bool = False
    ) -> Generator:
        """Issue an RPC to a service (``yield from``); returns the reply."""
        txn = self.system.next_txn()
        self._emit(IpcCall, txn=txn, service=service, oneway=oneway)
        reply = yield BinderCallReq(
            txn=txn, service=service, method=method, args=args, oneway=oneway
        )
        if not oneway:
            self._emit(IpcReturn, txn=txn, service=service)
        return reply

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------

    @property
    def now_ms(self) -> float:
        return self.system.clock.now_ms

    def __repr__(self) -> str:
        return f"<TaskContext {self.current_task}>"
