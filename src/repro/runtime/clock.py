"""Virtual time and the instrumentation cost model.

The simulator runs on a single virtual clock counted in *ticks*
(1 ms = :data:`TICKS_PER_MS` ticks).  Every simulated action charges
ticks to the clock and to the executing thread's CPU-time accumulator.
When tracing is enabled each emitted trace record charges an additional
per-record cost — this is the mechanism behind the Figure 8 experiment:
the 2x–6x tracing slowdown emerges from each application's density of
instrumented operations, exactly as it does on the instrumented ROM.
"""

from __future__ import annotations

from dataclasses import dataclass


#: virtual ticks per simulated millisecond
TICKS_PER_MS = 1000


@dataclass(frozen=True)
class TimeModel:
    """Tick costs of simulated actions.

    Attributes:
        base_op_cost: ticks charged for every simulated operation
            (framework calls, memory accesses, VM instructions),
            whether or not tracing is enabled.
        trace_record_cost: additional ticks charged per emitted trace
            record when tracing is enabled.  The ratio of these two
            constants bounds the maximum tracing slowdown; the per-app
            slowdown then depends on how much un-instrumented
            computation the app performs between instrumented
            operations.
    """

    base_op_cost: int = 1
    trace_record_cost: int = 5


class VirtualClock:
    """A monotonically advancing tick counter."""

    def __init__(self) -> None:
        self._now = 0

    @property
    def now(self) -> int:
        """Current virtual time in ticks."""
        return self._now

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now / TICKS_PER_MS

    def advance(self, ticks: int) -> None:
        """Move time forward by a non-negative number of ticks."""
        if ticks < 0:
            raise ValueError(f"cannot advance clock by {ticks}")
        self._now += ticks

    def advance_to(self, ticks: int) -> None:
        """Move time forward to an absolute tick count (never back)."""
        if ticks > self._now:
            self._now = ticks


def ms(milliseconds: float) -> int:
    """Convert milliseconds to ticks."""
    return int(milliseconds * TICKS_PER_MS)
