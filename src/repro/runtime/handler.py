"""Android-style ``Handler`` and ``AsyncTask`` facades.

The paper instruments ``android.os.Handler`` / ``android.os.Looper``
(Section 5.2); application code rarely touches event queues directly —
it posts through Handlers and offloads work through AsyncTasks.  These
facades provide that API surface on top of the simulator so workloads
read like Android code:

* :class:`Handler` — ``post`` / ``post_delayed`` / ``post_at_front`` /
  ``send_message`` with integer ``what`` codes dispatched to a
  ``handle_message`` callback;
* :class:`AsyncTask` — ``do_in_background`` on a fresh worker thread,
  ``on_post_execute`` posted back to the creating Handler's looper
  (the classic Android idiom, and a classic source of use-free races
  when the activity is destroyed while the task is in flight).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Sequence

from .context import TaskContext

_task_ids = itertools.count(1)


class Handler:
    """A handle for posting work to one looper, like ``android.os.Handler``.

    ``message_handler`` receives ``(ctx, what, obj)`` for messages sent
    with :meth:`send_message`; plain runnables go through :meth:`post`.
    """

    def __init__(
        self,
        looper: str,
        name: str = "handler",
        message_handler: Optional[Callable] = None,
    ) -> None:
        self.looper = looper
        self.name = name
        self.message_handler = message_handler

    def post(self, ctx: TaskContext, runnable: Callable, label: Optional[str] = None) -> str:
        """Enqueue ``runnable(ctx)`` at the tail of the looper's queue."""
        return ctx.post(self.looper, runnable, label=label or f"{self.name}.post")

    def post_delayed(
        self,
        ctx: TaskContext,
        runnable: Callable,
        delay_ms: int,
        label: Optional[str] = None,
    ) -> str:
        """``postDelayed`` — the event runs after ``delay_ms``."""
        return ctx.post(
            self.looper,
            runnable,
            delay_ms=delay_ms,
            label=label or f"{self.name}.postDelayed",
        )

    def post_at_front(
        self, ctx: TaskContext, runnable: Callable, label: Optional[str] = None
    ) -> str:
        """``postAtFrontOfQueue`` — jumps the queue; no delay allowed."""
        return ctx.post_at_front(
            self.looper, runnable, label=label or f"{self.name}.postAtFront"
        )

    def send_message(
        self,
        ctx: TaskContext,
        what: int,
        obj: Any = None,
        delay_ms: int = 0,
        at_front: bool = False,
    ) -> str:
        """Enqueue a message dispatched to ``message_handler``."""
        if self.message_handler is None:
            raise ValueError(f"handler {self.name!r} has no message_handler")
        handler = self.message_handler

        def dispatch(event_ctx, message_what=what, message_obj=obj):
            handler(event_ctx, message_what, message_obj)

        label = f"{self.name}.msg[{what}]"
        if at_front:
            return ctx.post_at_front(self.looper, dispatch, label=label)
        return ctx.post(self.looper, dispatch, delay_ms=delay_ms, label=label)


class AsyncTask:
    """The Android ``AsyncTask`` idiom on the simulator.

    ``execute`` forks a worker thread running ``do_in_background``;
    its result is then posted to ``handler``'s looper where
    ``on_post_execute`` consumes it.  Both callbacks receive a
    :class:`~repro.runtime.context.TaskContext` first.
    """

    def __init__(
        self,
        name: str,
        do_in_background: Callable,
        on_post_execute: Optional[Callable] = None,
    ) -> None:
        self.name = name
        self.do_in_background = do_in_background
        self.on_post_execute = on_post_execute

    def execute(
        self,
        ctx: TaskContext,
        handler: Handler,
        args: Sequence[Any] = (),
        thread_name: Optional[str] = None,
    ) -> str:
        """Start the task; returns the worker thread's id.

        ``thread_name`` pins the worker thread's name (useful when the
        name must be stable across runs); by default a fresh
        ``<task>-<n>`` name is generated.
        """
        background = self.do_in_background
        callback = self.on_post_execute
        looper = handler.looper
        label = f"{self.name}.onPostExecute"

        def worker(worker_ctx):
            import inspect

            if inspect.isgeneratorfunction(background):
                result = yield from background(worker_ctx, *args)
            else:
                result = background(worker_ctx, *args)
            if callback is not None:
                worker_ctx.post(looper, callback, args=(result,), label=label)
            return result

        name = thread_name or f"{self.name}-{next(_task_ids)}"
        return ctx.fork(name, worker)
