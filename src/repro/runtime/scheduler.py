"""The simulation scheduler.

Frames (regular threads, binder threads, looper threads) are Python
generators; the scheduler repeatedly picks a ready frame — using a
seeded RNG, so runs are reproducible and different seeds explore
different interleavings — and resumes it until it blocks on a
:mod:`~repro.runtime.requests` request or finishes.

Virtual time advances only when no frame is ready: the clock jumps to
the earliest tick at which a sleeping frame wakes or a queued event
becomes eligible.  If nothing can ever make progress the simulation
either ends (only daemon frames remain blocked) or raises
:class:`~repro.runtime.errors.DeadlockError`.
"""

from __future__ import annotations

import enum
import random
from typing import Any, Dict, List, Optional

from .errors import DeadlockError, SchedulerError
from .requests import (
    AcquireReq,
    BinderCallReq,
    BinderRecvReq,
    JoinReq,
    NextEventReq,
    PauseReq,
    Request,
    SleepReq,
    StopLooperReq,
    WaitReq,
)


class FrameState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


class Frame:
    """One schedulable activity and its generator."""

    def __init__(self, frame_id: str, thread_id: str, daemon: bool = False) -> None:
        self.frame_id = frame_id
        self.thread_id = thread_id
        self.daemon = daemon
        self.state = FrameState.READY
        self.generator = None  # set by the system after ctx creation
        self.ctx = None
        self.request: Optional[Request] = None
        self.send_value: Any = None
        self.result: Any = None
        self.started = False
        #: set by a notify to wake a frame blocked in WaitReq
        self.wait_ticket: Optional[int] = None
        #: loopers: the event queue this frame drains
        self.event_queue = None
        #: loopers: set to stop after the current event
        self.stop_requested = False

    @property
    def is_looper(self) -> bool:
        return self.event_queue is not None

    def block(self, request: Request) -> None:
        self.state = FrameState.BLOCKED
        self.request = request

    def unblock(self, value: Any = None) -> None:
        self.state = FrameState.READY
        self.request = None
        self.send_value = value

    def __repr__(self) -> str:
        return f"<Frame {self.frame_id} {self.state.value}>"


class Scheduler:
    """Drives the frames of an :class:`~repro.runtime.system.AndroidSystem`."""

    def __init__(self, system, seed: int = 0) -> None:
        self.system = system
        self.rng = random.Random(seed)
        self.frames: Dict[str, Frame] = {}
        self.current_frame: Optional[Frame] = None
        self.steps = 0

    def add_frame(self, frame: Frame) -> None:
        if frame.frame_id in self.frames:
            raise SchedulerError(f"duplicate frame {frame.frame_id!r}")
        self.frames[frame.frame_id] = frame

    # -- main loop -----------------------------------------------------------

    def run(self, max_ticks: Optional[int] = None, max_steps: int = 2_000_000) -> None:
        clock = self.system.clock
        while True:
            if self.steps >= max_steps:
                raise SchedulerError(f"step budget ({max_steps}) exhausted")
            self._unblock_satisfiable()
            ready = [f for f in self.frames.values() if f.state is FrameState.READY]
            if not ready:
                wake = self._next_wake_time()
                if wake is None:
                    self._check_deadlock()
                    return
                if max_ticks is not None and wake > max_ticks:
                    return
                clock.advance_to(wake)
                continue
            if max_ticks is not None and clock.now > max_ticks:
                return
            frame = ready[self.rng.randrange(len(ready))]
            self._resume(frame)
            self.steps += 1

    def _resume(self, frame: Frame) -> None:
        self.current_frame = frame
        value, frame.send_value = frame.send_value, None
        try:
            if not frame.started:
                frame.started = True
                request = next(frame.generator)
            else:
                request = frame.generator.send(value)
        except StopIteration as stop:
            frame.state = FrameState.DONE
            frame.result = stop.value
            return
        finally:
            self.current_frame = None
        self._handle_request(frame, request)

    # -- request handling -----------------------------------------------

    def _handle_request(self, frame: Frame, request: Request) -> None:
        system = self.system
        if isinstance(request, PauseReq):
            frame.unblock()
        elif isinstance(request, SleepReq):
            frame.block(request)
        elif isinstance(request, (JoinReq, NextEventReq, BinderRecvReq)):
            frame.block(request)
        elif isinstance(request, WaitReq):
            frame.wait_ticket = None
            system.monitor(request.monitor).add_waiter(frame.frame_id)
            frame.block(request)
        elif isinstance(request, AcquireReq):
            system.lock(request.lock).waiters.append(frame.frame_id)
            frame.block(request)
        elif isinstance(request, BinderCallReq):
            transaction = system.dispatch_transaction(request, frame)
            if request.oneway:
                frame.unblock(None)
            else:
                frame.block(request)
                frame.pending_txn = transaction  # type: ignore[attr-defined]
        elif isinstance(request, StopLooperReq):
            target = request.looper_id or frame.frame_id
            looper = self.frames.get(target)
            if looper is None or not looper.is_looper:
                raise SchedulerError(f"{target!r} is not a looper")
            looper.stop_requested = True
            frame.unblock()
        else:
            raise SchedulerError(
                f"frame {frame.frame_id!r} yielded non-request {request!r}"
            )

    # -- unblocking --------------------------------------------------------

    def _unblock_satisfiable(self) -> None:
        now = self.system.clock.now
        for frame in self.frames.values():
            if frame.state is not FrameState.BLOCKED:
                continue
            request = frame.request
            if isinstance(request, SleepReq):
                if now >= request.until:
                    frame.unblock()
            elif isinstance(request, NextEventReq):
                queue = self.system.queue(request.queue_name)
                if frame.stop_requested:
                    frame.unblock(None)  # looper main interprets None as quit
                elif queue.has_ready(now):
                    frame.unblock(queue.pop_ready(now))
            elif isinstance(request, JoinReq):
                target = self.frames.get(request.thread_id)
                if target is None:
                    raise SchedulerError(f"join on unknown thread {request.thread_id!r}")
                if target.state is FrameState.DONE:
                    frame.unblock(target.result)
            elif isinstance(request, WaitReq):
                if frame.wait_ticket is not None:
                    ticket, frame.wait_ticket = frame.wait_ticket, None
                    frame.unblock(ticket)
            elif isinstance(request, AcquireReq):
                lock = self.system.lock(request.lock)
                if not lock.held and lock.waiters and lock.waiters[0] == frame.frame_id:
                    lock.waiters.popleft()
                    lock.take(frame.frame_id, frame.ctx.current_task)
                    frame.unblock()
            elif isinstance(request, BinderRecvReq):
                service = self.system.service(request.service)
                transaction = service.pop()
                if transaction is not None:
                    frame.unblock(transaction)
            elif isinstance(request, BinderCallReq):
                transaction = getattr(frame, "pending_txn", None)
                if transaction is not None and transaction.completed:
                    frame.pending_txn = None  # type: ignore[attr-defined]
                    frame.unblock(transaction.reply)

    def _next_wake_time(self) -> Optional[int]:
        candidates: List[int] = []
        for frame in self.frames.values():
            if frame.state is not FrameState.BLOCKED:
                continue
            request = frame.request
            if isinstance(request, SleepReq):
                candidates.append(request.until)
            elif isinstance(request, NextEventReq):
                when = self.system.queue(request.queue_name).next_when()
                if when is not None:
                    candidates.append(when)
        return min(candidates) if candidates else None

    def _check_deadlock(self) -> None:
        stuck = [
            f.frame_id
            for f in self.frames.values()
            if f.state is FrameState.BLOCKED
            and not f.daemon
            and not isinstance(f.request, NextEventReq)
        ]
        if stuck:
            raise DeadlockError(stuck)

    # -- finalization ------------------------------------------------------

    def shutdown(self) -> None:
        """Close every unfinished frame; their ``finally`` blocks emit
        the end-of-task records."""
        # Close loopers last so events posted by dying threads are not
        # spuriously dispatched (close() does not run new events, but
        # the End records read better in dispatch order).
        ordered = sorted(self.frames.values(), key=lambda f: f.is_looper)
        for frame in ordered:
            if frame.state is FrameState.DONE:
                continue
            if frame.generator is not None and frame.started:
                frame.generator.close()
            frame.state = FrameState.DONE
