"""The Binder IPC framework stand-in (Section 5.2).

All RPCs between simulated processes go through here.  Each call gets
a unique transaction id; the four trace records of a transaction
(``ipc_call``, ``ipc_handle``, ``ipc_reply``, ``ipc_return``) share
that id, which is how the offline analyzer derives the cross-process
happens-before edges — exactly the piggybacking scheme the paper
describes for the instrumented Binder driver.

A service is a named set of methods executed by a dedicated binder
thread in the service's owning process.  Methods receive the service
thread's :class:`~repro.runtime.context.TaskContext` plus the call
arguments, and may themselves block (``yield from``), post events into
app loopers, or issue further RPCs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Sequence


@dataclass
class Transaction:
    """One in-flight Binder transaction."""

    txn: int
    service: str
    method: str
    args: Sequence[Any]
    oneway: bool
    caller_frame: Optional[str] = None
    reply: Any = None
    completed: bool = False


class Service:
    """A Binder service: named methods + an inbox of transactions."""

    def __init__(
        self,
        name: str,
        process: str,
        methods: Dict[str, Callable],
    ) -> None:
        self.name = name
        self.process = process
        self.methods = dict(methods)
        self.inbox: Deque[Transaction] = deque()
        #: frame id of the binder thread blocked on recv, if any
        self.recv_waiter: Optional[str] = None
        self.handled = 0

    def method(self, name: str) -> Callable:
        try:
            return self.methods[name]
        except KeyError:
            raise KeyError(
                f"service {self.name!r} has no method {name!r}; "
                f"available: {sorted(self.methods)}"
            ) from None

    def push(self, transaction: Transaction) -> None:
        self.inbox.append(transaction)

    def pop(self) -> Optional[Transaction]:
        return self.inbox.popleft() if self.inbox else None
