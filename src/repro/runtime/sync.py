"""Monitors and locks.

The model treats these two synchronization mechanisms differently
(Section 3.1):

* ``wait``/``notify`` on a monitor *does* induce happens-before
  (the signal-and-wait rule);
* locks guarantee only mutual exclusion — no happens-before is derived
  from an unlock to a later lock.  The detector instead checks locksets
  to dismiss conflicting accesses inside critical sections protected by
  a common lock.

The classes here hold the runtime state; blocking/waking is the
scheduler's job.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .errors import LockError


class Monitor:
    """A wait/notify monitor; waiters are woken in FIFO order."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: frame ids currently blocked in ``wait``
        self.waiters: Deque[str] = deque()

    def add_waiter(self, frame_id: str) -> None:
        self.waiters.append(frame_id)

    def pop_waiter(self) -> Optional[str]:
        return self.waiters.popleft() if self.waiters else None

    def pop_all_waiters(self) -> list:
        out = list(self.waiters)
        self.waiters.clear()
        return out


class Lock:
    """A non-reentrant mutual-exclusion lock.

    Ownership is tracked per *task* (thread id or event id): the model
    requires critical sections to be contained within a single task so
    that the offline lockset reconstruction from per-task
    acquire/release records is exact.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.owner_frame: Optional[str] = None
        self.owner_task: Optional[str] = None
        self.waiters: Deque[str] = deque()

    @property
    def held(self) -> bool:
        return self.owner_frame is not None

    def take(self, frame_id: str, task_id: str) -> None:
        if self.held:
            raise LockError(f"lock {self.name!r} already held by {self.owner_frame}")
        self.owner_frame = frame_id
        self.owner_task = task_id

    def drop(self, frame_id: str, task_id: str) -> None:
        if self.owner_frame != frame_id:
            raise LockError(
                f"frame {frame_id!r} releasing lock {self.name!r} "
                f"owned by {self.owner_frame!r}"
            )
        if self.owner_task != task_id:
            raise LockError(
                f"lock {self.name!r} acquired by task {self.owner_task!r} "
                f"but released by task {task_id!r}; critical sections must "
                "not span task boundaries"
            )
        self.owner_frame = None
        self.owner_task = None
