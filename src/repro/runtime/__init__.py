"""A discrete-event simulator of the Android event-driven programming
model (Section 2.1): looper threads draining FIFO event queues with
delays and ``sendAtFront``, regular threads with fork/join and
monitors, listener registration, Binder IPC between processes, and
external input sources — all instrumented to emit the trace records of
Figure 3 and Section 5."""

from .binder import Service, Transaction
from .clock import TICKS_PER_MS, TimeModel, VirtualClock, ms
from .context import TaskContext
from .errors import DeadlockError, LockError, SchedulerError, SimulationError
from .external import ExternalSource, Injection
from .handler import AsyncTask, Handler
from .queue import EventQueue, SimEvent
from .requests import (
    AcquireReq,
    BinderCallReq,
    BinderRecvReq,
    JoinReq,
    NextEventReq,
    PauseReq,
    Request,
    SleepReq,
    StopLooperReq,
    WaitReq,
)
from .scheduler import Frame, FrameState, Scheduler
from .sync import Lock, Monitor
from .system import AndroidSystem, Process, Violation
from .tracer import Tracer

__all__ = [
    "AcquireReq",
    "AndroidSystem",
    "AsyncTask",
    "Handler",
    "BinderCallReq",
    "BinderRecvReq",
    "DeadlockError",
    "EventQueue",
    "ExternalSource",
    "Frame",
    "FrameState",
    "Injection",
    "JoinReq",
    "Lock",
    "LockError",
    "Monitor",
    "NextEventReq",
    "PauseReq",
    "Process",
    "Request",
    "Scheduler",
    "SchedulerError",
    "Service",
    "SimEvent",
    "SimulationError",
    "SleepReq",
    "StopLooperReq",
    "TICKS_PER_MS",
    "TaskContext",
    "TaskContext",
    "TimeModel",
    "Tracer",
    "Transaction",
    "Violation",
    "VirtualClock",
    "WaitReq",
    "ms",
]
