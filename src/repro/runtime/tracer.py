"""The trace collector — the stand-in for CAFA's logger device.

On device, every instrumented component writes records to a kernel
logger device that the offline analyzer later drains (Section 5.1).
Here the :class:`Tracer` accumulates an in-memory
:class:`~repro.trace.Trace`; a disabled tracer models the
uninstrumented system used as the Figure 8 baseline.
"""

from __future__ import annotations

from typing import Optional

from ..trace import Operation, TaskInfo, Trace


class Tracer:
    """Collects operations and task metadata during a simulation.

    ``columnar`` selects the backend of the collected trace: the
    columnar :class:`~repro.trace.TraceStore` (default — the runtime
    appends straight into the typed columns) or the legacy
    one-object-per-operation list.
    """

    def __init__(self, enabled: bool = True, columnar: bool = True) -> None:
        self.enabled = enabled
        self.trace: Optional[Trace] = (
            Trace(columnar=columnar) if enabled else None
        )
        #: number of records emitted (counted even when disabled would
        #: have skipped them — callers check ``enabled`` first)
        self.records = 0

    def add_task(self, info: TaskInfo) -> None:
        """Register a task; a no-op when tracing is disabled."""
        if self.trace is not None:
            self.trace.add_task(info)

    def emit(self, op: Operation) -> bool:
        """Record one operation; returns True if it was stored."""
        if self.trace is None:
            return False
        self.trace.append(op)
        self.records += 1
        return True

    def emit_fields(self, op_cls: type, task: str, time: int, fields: dict) -> bool:
        """Record one operation from its class and keyword payload.

        The runtime's hot path: on the columnar backend the payload
        goes straight into the typed columns and no
        :class:`~repro.trace.Operation` instance is ever built.
        """
        if self.trace is None:
            return False
        self.trace.append_fields(op_cls, task, time, **fields)
        self.records += 1
        return True

    def result(self) -> Trace:
        """The collected trace (raises if tracing was disabled)."""
        if self.trace is None:
            raise RuntimeError("tracing was disabled for this run")
        return self.trace
