"""Runtime simulator errors."""

from __future__ import annotations

from typing import List


class SimulationError(Exception):
    """Base class for simulator failures (bugs in the simulated app or
    misuse of the runtime API)."""


class DeadlockError(SimulationError):
    """No task can make progress but non-daemon tasks are still blocked."""

    def __init__(self, blocked: List[str]):
        self.blocked = blocked
        super().__init__(
            "deadlock: blocked non-daemon tasks: " + ", ".join(sorted(blocked))
        )


class LockError(SimulationError):
    """Lock protocol violation (releasing an un-owned lock, etc.)."""


class SchedulerError(SimulationError):
    """Internal protocol violation between frames and the scheduler."""
