"""The simulated Android system: processes, loopers, threads, services.

:class:`AndroidSystem` is the top-level facade.  A typical workload::

    system = AndroidSystem(seed=1)
    app = system.process("mytracks")
    main = app.looper("main")                  # the UI looper
    app.thread("init", init_body)              # a regular thread
    system.add_service("TrackRecordingService", app2, {"bind": on_bind})
    system.run(max_ms=2000)
    trace = system.trace()

Each process owns a heap, a mini-DVM program/interpreter, a shared
variable store, and a listener registry.  The system owns the clock,
the tracer, the scheduler, monitors/locks, Binder services, and the
violation log (simulated NullPointerExceptions observed at runtime).
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..dvm.heap import Heap
from ..dvm.interpreter import DvmNullPointerError, Interpreter, NullSink
from ..dvm.method import Program
from ..trace import Begin, End, IpcHandle, IpcReply, TaskInfo, TaskKind, Trace
from .binder import Service, Transaction
from .clock import TimeModel, VirtualClock, ms
from .context import TaskContext
from .errors import SimulationError
from .queue import EventQueue
from .requests import BinderCallReq, BinderRecvReq, NextEventReq
from .scheduler import Frame, Scheduler
from .sync import Lock, Monitor
from .tracer import Tracer


@dataclass
class Violation:
    """A use-after-free that actually manifested during simulation
    (a simulated NullPointerException reached a handler boundary)."""

    task: str
    label: str
    method: str
    pc: int
    time: int


class Process:
    """One simulated OS process."""

    def __init__(self, system: "AndroidSystem", name: str) -> None:
        self.system = system
        self.name = name
        self.heap = Heap()
        self.program = Program()
        self.interpreter = Interpreter(self.program, self.heap, NullSink())
        self.store: Dict[str, Any] = {}
        self.listeners: Dict[str, Callable] = {}
        self.loopers: Dict[str, str] = {}  # short name -> frame id

    def looper(self, name: str = "main") -> str:
        """Create (or fetch) a looper thread; returns its id."""
        if name in self.loopers:
            return self.loopers[name]
        looper_id = self.system.spawn_looper(self, name)
        self.loopers[name] = looper_id
        return looper_id

    def thread(self, name: str, body: Callable, daemon: bool = False) -> str:
        """Create a root regular thread (no fork record — it exists
        before tracing starts, like an app's main thread)."""
        return self.system.spawn_thread(self, name, body, daemon=daemon)


def _thread_main(ctx: TaskContext, body: Callable):
    ctx._emit(Begin)
    try:
        try:
            if inspect.isgeneratorfunction(body):
                result = yield from body(ctx)
            else:
                result = body(ctx)
        except DvmNullPointerError as exc:
            ctx.system.record_violation(
                task=ctx.current_task,
                label=ctx.frame.thread_id,
                method=exc.method,
                pc=exc.pc,
            )
            result = None
        return result
    finally:
        ctx._emit(End)


def _looper_main(ctx: TaskContext, frame: Frame):
    ctx._emit(Begin)
    try:
        while True:
            event = yield NextEventReq(frame.event_queue.name)
            if event is None:  # quit requested
                break
            yield from ctx.run_event(event)
    finally:
        ctx._emit(End)


def _service_main(ctx: TaskContext, service: Service):
    ctx._emit(Begin)
    try:
        while True:
            transaction = yield BinderRecvReq(service.name)
            ctx._emit(IpcHandle, txn=transaction.txn, service=service.name)
            handler = service.method(transaction.method)
            try:
                if inspect.isgeneratorfunction(handler):
                    result = yield from handler(ctx, *transaction.args)
                else:
                    result = handler(ctx, *transaction.args)
            except DvmNullPointerError as exc:
                ctx.system.record_violation(
                    task=ctx.current_task,
                    label=f"{service.name}.{transaction.method}",
                    method=exc.method,
                    pc=exc.pc,
                )
                result = None
            service.handled += 1
            if not transaction.oneway:
                ctx._emit(IpcReply, txn=transaction.txn, service=service.name)
            ctx.system.complete_transaction(transaction, result)
    finally:
        ctx._emit(End)


class AndroidSystem:
    """Top-level simulator facade.  See the module docstring."""

    def __init__(
        self,
        seed: int = 0,
        tracing: bool = True,
        time_model: Optional[TimeModel] = None,
        columnar_trace: bool = True,
    ) -> None:
        self.clock = VirtualClock()
        self.tracer = Tracer(enabled=tracing, columnar=columnar_trace)
        self.time_model = time_model or TimeModel()
        self.scheduler = Scheduler(self, seed=seed)
        self.processes: Dict[str, Process] = {}
        self.monitors: Dict[str, Monitor] = {}
        self.locks: Dict[str, Lock] = {}
        self.services: Dict[str, Service] = {}
        self.queues: Dict[str, EventQueue] = {}
        self.violations: List[Violation] = []
        #: per-thread virtual CPU time (ticks) — the Figure 8 metric
        self.cpu_time: Dict[str, int] = {}
        self._event_counter = itertools.count(1)
        self._txn_counter = itertools.count(1)
        self._ticket_counter = itertools.count(1)
        self._external_counter = itertools.count(0)

    # -- construction -----------------------------------------------------

    def process(self, name: str) -> Process:
        """Create or fetch a process by name."""
        if name not in self.processes:
            self.processes[name] = Process(self, name)
        return self.processes[name]

    def spawn_thread(
        self, process: Process, name: str, body: Callable, daemon: bool = False
    ) -> str:
        thread_id = f"{process.name}/{name}"
        frame = Frame(frame_id=thread_id, thread_id=thread_id, daemon=daemon)
        ctx = TaskContext(self, process, frame)
        frame.ctx = ctx
        frame.generator = _thread_main(ctx, body)
        self.scheduler.add_frame(frame)
        self.tracer.add_task(
            TaskInfo(
                task=thread_id,
                task_kind=TaskKind.THREAD,
                process=process.name,
                label=name,
            )
        )
        return thread_id

    def spawn_looper(self, process: Process, name: str) -> str:
        looper_id = f"{process.name}/{name}"
        queue = EventQueue(f"{looper_id}.queue")
        self.queues[queue.name] = queue
        frame = Frame(frame_id=looper_id, thread_id=looper_id, daemon=True)
        frame.event_queue = queue
        ctx = TaskContext(self, process, frame)
        frame.ctx = ctx
        frame.generator = _looper_main(ctx, frame)
        self.scheduler.add_frame(frame)
        self.tracer.add_task(
            TaskInfo(
                task=looper_id,
                task_kind=TaskKind.LOOPER,
                process=process.name,
                label=name,
            )
        )
        return looper_id

    def add_service(
        self, name: str, process: Process, methods: Dict[str, Callable]
    ) -> Service:
        """Register a Binder service with a dedicated binder thread."""
        if name in self.services:
            raise SimulationError(f"duplicate service {name!r}")
        service = Service(name, process.name, methods)
        self.services[name] = service
        thread_id = f"{process.name}/binder:{name}"
        frame = Frame(frame_id=thread_id, thread_id=thread_id, daemon=True)
        ctx = TaskContext(self, process, frame)
        frame.ctx = ctx
        frame.generator = _service_main(ctx, service)
        self.scheduler.add_frame(frame)
        self.tracer.add_task(
            TaskInfo(
                task=thread_id,
                task_kind=TaskKind.THREAD,
                process=process.name,
                label=f"binder:{name}",
            )
        )
        return service

    # -- registries ------------------------------------------------------

    def monitor(self, name: str) -> Monitor:
        if name not in self.monitors:
            self.monitors[name] = Monitor(name)
        return self.monitors[name]

    def lock(self, name: str) -> Lock:
        if name not in self.locks:
            self.locks[name] = Lock(name)
        return self.locks[name]

    def service(self, name: str) -> Service:
        try:
            return self.services[name]
        except KeyError:
            raise SimulationError(f"unknown service {name!r}") from None

    def queue(self, name: str) -> EventQueue:
        try:
            return self.queues[name]
        except KeyError:
            raise SimulationError(f"unknown queue {name!r}") from None

    def resolve_looper(self, looper_id: str) -> Frame:
        frame = self.scheduler.frames.get(looper_id)
        if frame is None or not frame.is_looper:
            raise SimulationError(f"{looper_id!r} is not a looper")
        return frame

    # -- event / txn / ticket identity ------------------------------------

    def new_event_task(
        self, looper_frame: Frame, label: str, external: bool, process: str
    ) -> str:
        task_id = f"ev{next(self._event_counter)}:{label}"
        self.tracer.add_task(
            TaskInfo(
                task=task_id,
                task_kind=TaskKind.EVENT,
                process=process,
                looper=looper_frame.thread_id,
                queue=looper_frame.event_queue.name,
                external=external,
                external_seq=next(self._external_counter) if external else -1,
                label=label,
            )
        )
        return task_id

    def next_txn(self) -> int:
        return next(self._txn_counter)

    # -- scheduler services ----------------------------------------------

    def charge(self, ticks: int) -> None:
        """Charge ``ticks`` to the clock and the running thread."""
        self.clock.advance(ticks)
        frame = self.scheduler.current_frame
        if frame is not None:
            key = frame.thread_id
            self.cpu_time[key] = self.cpu_time.get(key, 0) + ticks

    def notify_monitor(self, name: str, all_waiters: bool) -> int:
        ticket = next(self._ticket_counter)
        monitor = self.monitor(name)
        if all_waiters:
            woken = monitor.pop_all_waiters()
        else:
            one = monitor.pop_waiter()
            woken = [one] if one is not None else []
        for frame_id in woken:
            self.scheduler.frames[frame_id].wait_ticket = ticket
        return ticket

    def release_lock(self, name: str, frame_id: str, task_id: str) -> None:
        self.lock(name).drop(frame_id, task_id)

    def dispatch_transaction(self, request: BinderCallReq, caller: Frame) -> Transaction:
        service = self.service(request.service)
        transaction = Transaction(
            txn=request.txn,
            service=request.service,
            method=request.method,
            args=request.args,
            oneway=request.oneway,
            caller_frame=caller.frame_id,
        )
        service.push(transaction)
        return transaction

    def complete_transaction(self, transaction: Transaction, result: Any) -> None:
        transaction.reply = result
        transaction.completed = True

    def record_violation(self, task: str, label: str, method: str, pc: int) -> None:
        self.violations.append(
            Violation(task=task, label=label, method=method, pc=pc, time=self.clock.now)
        )

    # -- running -----------------------------------------------------------

    def run(self, max_ms: Optional[float] = None, max_steps: int = 2_000_000) -> None:
        """Run the simulation to quiescence (or the time budget)."""
        max_ticks = ms(max_ms) if max_ms is not None else None
        try:
            self.scheduler.run(max_ticks=max_ticks, max_steps=max_steps)
        finally:
            self.scheduler.shutdown()

    def trace(self) -> Trace:
        """The collected trace (raises if tracing was disabled)."""
        return self.tracer.result()

    @property
    def total_cpu_time(self) -> int:
        """Total virtual CPU ticks consumed across all threads."""
        return sum(self.cpu_time.values())

    def event_count(self) -> int:
        """Number of event tasks in the collected trace."""
        trace = self.tracer.trace
        if trace is None:
            return 0
        return len(trace.events())
