"""Blocking requests yielded by simulated code to the scheduler.

Simulated thread bodies and event handlers are Python generators; any
potentially blocking operation is expressed by *yielding* one of these
request objects (always via the corresponding ``yield from
ctx.<operation>()`` helper, which also emits the right trace records
around the blocking point).  The scheduler interprets the request,
blocks or continues the frame, and sends the result back into the
generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence


class Request:
    """Base class for scheduler requests."""


@dataclass
class SleepReq(Request):
    """Block until an absolute virtual tick."""

    until: int


@dataclass
class JoinReq(Request):
    """Block until the named thread finishes; resumes with its result."""

    thread_id: str


@dataclass
class WaitReq(Request):
    """Block until the monitor is notified; resumes with the ticket of
    the waking notify."""

    monitor: str


@dataclass
class AcquireReq(Request):
    """Block until the lock can be taken (granted atomically)."""

    lock: str


@dataclass
class NextEventReq(Request):
    """(Loopers only) block until the queue has a ready event; resumes
    with the popped :class:`~repro.runtime.queue.SimEvent`."""

    queue_name: str


@dataclass
class BinderCallReq(Request):
    """Dispatch a Binder transaction; blocks until the reply unless
    ``oneway``.  Resumes with the reply value."""

    txn: int
    service: str
    method: str
    args: Sequence[Any]
    oneway: bool = False


@dataclass
class BinderRecvReq(Request):
    """(Service threads) block until a transaction arrives; resumes
    with the :class:`~repro.runtime.binder.Transaction`."""

    service: str


@dataclass
class PauseReq(Request):
    """A voluntary preemption point; resumes with ``None``."""


@dataclass
class StopLooperReq(Request):
    """Ask the scheduler to stop the looper after the current event."""

    looper_id: Optional[str] = None
