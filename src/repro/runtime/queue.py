"""Event queues with the semantics of Section 2.1.

* Once an event is generated it is placed in the queue; it may carry a
  time constraint (a delay relative to enqueue time).
* Events whose time constraints have elapsed are processed **in the
  order they were queued** (not in deadline order — this is the
  property the paper's queue rules are derived from).
* ``sendAtFront`` places an event at the very front of the queue and
  carries no delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence


@dataclass
class SimEvent:
    """One enqueued event: an identity, a handler, and a time constraint."""

    task_id: str
    label: str
    handler: Callable
    args: Sequence[Any] = ()
    when: int = 0  # earliest tick at which the event may be processed
    at_front: bool = False
    external: bool = False
    #: listener to perform instead of calling ``handler`` directly
    listener: Optional[str] = None


class EventQueue:
    """A FIFO of events with per-event readiness times."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._entries: List[SimEvent] = []
        #: total number of events ever enqueued (statistics)
        self.enqueued = 0

    def __len__(self) -> int:
        return len(self._entries)

    def enqueue(self, event: SimEvent) -> None:
        """Place ``event`` at the back of the queue."""
        self._entries.append(event)
        self.enqueued += 1

    def enqueue_front(self, event: SimEvent) -> None:
        """Place ``event`` at the very front of the queue."""
        self._entries.insert(0, event)
        self.enqueued += 1

    def pop_ready(self, now: int) -> Optional[SimEvent]:
        """Remove and return the first event whose constraint elapsed.

        "First" is queue order among ready events, matching the
        Android looper's behaviour the causality model relies on.
        """
        for i, event in enumerate(self._entries):
            if event.when <= now:
                return self._entries.pop(i)
        return None

    def has_ready(self, now: int) -> bool:
        return any(event.when <= now for event in self._entries)

    def next_when(self) -> Optional[int]:
        """The earliest tick at which some event becomes ready."""
        if not self._entries:
            return None
        return min(event.when for event in self._entries)

    def pending(self) -> List[SimEvent]:
        """A snapshot of the queued events (for inspection/tests)."""
        return list(self._entries)
