"""Chunked sparse bitsets for the happens-before closure engine.

The incremental closure historically stored one dense Python big-int
bitset per key node.  A big int's size is set by its *highest* bit, so
a node that reaches a single late node pays for the whole id range —
on traces past ~10⁵ key nodes the closure memory grows quadratically
even when actual reachability is sparse (most event pairs are
concurrent, which is the whole point of the analysis).

:class:`SparseBits` stores the same bitset as fixed-width word chunks
keyed by block index: bit ``i`` lives in chunk ``i >> CHUNK_SHIFT`` at
offset ``i & CHUNK_LOW``.  Only populated blocks exist (the zero chunk
is never stored), so memory tracks the set's *population layout*, not
the id range.  All bulk operations — union, subset, popcount,
intersection, iteration — run in chunk space: one Python-int word op
per populated block instead of one op over the whole range.  A chunk
equal to :data:`FULL_CHUNK` is *dense* and gets a fast path (union
into it is a no-op, subset against it always holds).

Sharing is copy-on-write at chunk granularity.  Chunks are immutable
Python ints, so :meth:`SparseBits.ior` adopts blocks the receiver
lacks *by reference*: after ``reach[u] |= reach[v]`` the predecessor's
blocks alias the successor's, and :meth:`SparseBits.copy` is a shallow
block-table copy that keeps every chunk shared until a mutation
replaces that one block.  On the key graphs produced from real traces
— long program-order chains where ``reach[i]`` is ``reach[i+1]`` plus
one bit — almost every block of a node's reach set aliases its
successor's, which is where the measured memory win comes from (see
``benchmarks/bounds_pr5.json``).  :func:`vector_stats` measures that
sharing by object identity.

Both Roemer & Bond (arXiv:1907.08337) and Mathur et al.
(arXiv:1808.00185) support the underlying bet: set representations
tuned to the analysis' access pattern beat uniform dense state, and
HB reasoning stays sound when the closure state is maintained
incrementally — the representation may change, the relation may not.
The dense big-int path is preserved behind ``dense_bits=True`` and
differentially tested against this one.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Sequence

#: bits per chunk.  Power of two so bit->block is a shift.  1024 is the
#: sweet spot measured on the stock app traces: wide enough that the
#: block tables stay small (~4 populated blocks per key node at
#: K≈10⁴), narrow enough that one changed bit does not clone a large
#: chunk and destroy sharing.
CHUNK_BITS = 1024
CHUNK_SHIFT = CHUNK_BITS.bit_length() - 1
assert 1 << CHUNK_SHIFT == CHUNK_BITS, "CHUNK_BITS must be a power of two"
#: low-bits mask: offset of a bit inside its chunk
CHUNK_LOW = CHUNK_BITS - 1
#: the all-ones chunk — the "dense chunk" of the fast paths
FULL_CHUNK = (1 << CHUNK_BITS) - 1


class SparseBits:
    """A set of non-negative ints as fixed-width chunks keyed by block.

    Invariant: ``chunks`` never stores a zero value — an absent block
    *is* the zero chunk.  All methods preserve it, and equality,
    hashing-free comparison, and the byte accounting rely on it.

    Mutating methods (:meth:`set`, :meth:`ior`) mutate in place;
    :meth:`copy` is O(blocks) and shares every chunk with the source
    until a mutation replaces that block (chunks are immutable ints,
    so sharing is always safe — copy-on-write comes for free).
    """

    __slots__ = ("chunks",)

    def __init__(self, chunks: Dict[int, int] | None = None) -> None:
        self.chunks: Dict[int, int] = chunks if chunks is not None else {}

    # -- constructors ---------------------------------------------------

    @classmethod
    def single(cls, i: int) -> "SparseBits":
        """The singleton set ``{i}``."""
        return cls({i >> CHUNK_SHIFT: 1 << (i & CHUNK_LOW)})

    @classmethod
    def from_int(cls, value: int) -> "SparseBits":
        """Build from a dense big-int bitset (differential tests)."""
        if value < 0:
            raise ValueError("SparseBits holds non-negative bit indices only")
        chunks: Dict[int, int] = {}
        block = 0
        while value:
            low = value & FULL_CHUNK
            if low:
                chunks[block] = low
            value >>= CHUNK_BITS
            block += 1
        return cls(chunks)

    @classmethod
    def from_indices(cls, indices: Iterable[int]) -> "SparseBits":
        bits = cls()
        for i in indices:
            bits.set(i)
        return bits

    def to_int(self) -> int:
        """The equivalent dense big-int bitset."""
        acc = 0
        for block, chunk in self.chunks.items():
            acc |= chunk << (block << CHUNK_SHIFT)
        return acc

    def copy(self) -> "SparseBits":
        """Shallow block-table copy; every chunk stays shared."""
        return SparseBits(dict(self.chunks))

    # -- point operations ----------------------------------------------

    def test(self, i: int) -> bool:
        """Is bit ``i`` set?"""
        chunk = self.chunks.get(i >> CHUNK_SHIFT)
        return chunk is not None and (chunk >> (i & CHUNK_LOW)) & 1 == 1

    __contains__ = test

    def set(self, i: int) -> None:
        """Set bit ``i`` (in place; clones at most one chunk)."""
        block = i >> CHUNK_SHIFT
        self.chunks[block] = self.chunks.get(block, 0) | (1 << (i & CHUNK_LOW))

    # -- bulk operations (all in chunk space) ---------------------------

    def ior(self, other: "SparseBits") -> int:
        """In-place union; returns the number of bits newly set.

        Blocks the receiver lacks are adopted from ``other`` *by
        reference* (chunk sharing); a receiver chunk that is already
        :data:`FULL_CHUNK` is dense and skipped without any word work.
        """
        gained = 0
        chunks = self.chunks
        get = chunks.get
        for block, theirs in other.chunks.items():
            mine = get(block)
            if mine is None:
                chunks[block] = theirs  # adopted: shared by reference
                gained += theirs.bit_count()
            elif mine is not theirs and mine != FULL_CHUNK:
                new = (theirs & ~mine)
                if new:
                    gained += new.bit_count()
                    chunks[block] = mine | theirs
        return gained

    def intersects(self, other: "SparseBits") -> bool:
        """Is the intersection non-empty?  O(min(blocks))."""
        a, b = self.chunks, other.chunks
        if len(b) < len(a):
            a, b = b, a
        get = b.get
        for block, chunk in a.items():
            theirs = get(block)
            if theirs is not None and chunk & theirs:
                return True
        return False

    def and_iter(self, other: "SparseBits") -> Iterator[int]:
        """Iterate set bits of the intersection in ascending order."""
        a, b = self.chunks, other.chunks
        if len(b) < len(a):
            a, b = b, a
        get = b.get
        for block in sorted(a):
            theirs = get(block)
            if theirs is None:
                continue
            word = a[block] & theirs
            base = block << CHUNK_SHIFT
            while word:
                low = word & -word
                word ^= low
                yield base + low.bit_length() - 1

    def issubset(self, other: "SparseBits") -> bool:
        """Is every bit of self set in ``other``?"""
        get = other.chunks.get
        for block, chunk in self.chunks.items():
            theirs = get(block)
            if theirs is None:
                return False
            if theirs != FULL_CHUNK and chunk & ~theirs:
                return False
        return True

    def any_in_range(self, lo: int, hi: int) -> bool:
        """Is any bit in ``[lo, hi)`` set?  O(blocks overlapping range).

        The query path's replacement for the dense prefix-mask AND:
        a task's key nodes occupy a contiguous id range, so "is any of
        the first ``hi`` key nodes reachable" is a range probe.
        """
        if hi <= lo:
            return False
        chunks = self.chunks
        first, last = lo >> CHUNK_SHIFT, (hi - 1) >> CHUNK_SHIFT
        if first == last:
            chunk = chunks.get(first)
            if chunk is None:
                return False
            mask = ((1 << (hi - lo)) - 1) << (lo & CHUNK_LOW)
            return bool(chunk & mask)
        chunk = chunks.get(first)
        if chunk is not None and chunk >> (lo & CHUNK_LOW):
            return True
        # Any populated interior block is a hit (zero chunks are never
        # stored).  Walk whichever is smaller: the range or the table.
        if last - first - 1 <= len(chunks):
            for block in range(first + 1, last):
                if block in chunks:
                    return True
        else:
            for block in chunks:
                if first < block < last:
                    return True
        chunk = chunks.get(last)
        if chunk is not None:
            mask = (1 << (((hi - 1) & CHUNK_LOW) + 1)) - 1
            if chunk & mask:
                return True
        return False

    # -- whole-set queries ---------------------------------------------

    def bit_count(self) -> int:
        """Population count (named after ``int.bit_count``)."""
        return sum(chunk.bit_count() for chunk in self.chunks.values())

    def __bool__(self) -> bool:
        return bool(self.chunks)

    def __iter__(self) -> Iterator[int]:
        """Iterate set bits in ascending order."""
        chunks = self.chunks
        for block in sorted(chunks):
            word = chunks[block]
            base = block << CHUNK_SHIFT
            while word:
                low = word & -word
                word ^= low
                yield base + low.bit_length() - 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseBits):
            return self.chunks == other.chunks
        if isinstance(other, int):
            return self.to_int() == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # type: ignore[assignment]  # mutable

    def __repr__(self) -> str:
        n = self.bit_count()
        return f"<SparseBits {n} bits in {len(self.chunks)} chunks>"

    def nbytes(self) -> int:
        """Retained bytes of this set alone (no cross-set sharing)."""
        return (
            sys.getsizeof(self)
            + sys.getsizeof(self.chunks)
            + sum(sys.getsizeof(chunk) for chunk in self.chunks.values())
        )


@dataclass
class ChunkStats:
    """Storage accounting over a vector of :class:`SparseBits`.

    ``chunk_refs`` counts block-table entries; ``chunks_allocated``
    counts distinct chunk objects (by identity, so a chunk adopted by
    reference through :meth:`SparseBits.ior` or :meth:`SparseBits.copy`
    is counted once); the difference is ``chunks_shared``.
    ``dense_chunk_ratio`` is the fraction of references whose chunk is
    the all-ones :data:`FULL_CHUNK` (the dense fast path).
    """

    sets: int = 0
    chunk_refs: int = 0
    chunks_allocated: int = 0
    chunks_shared: int = 0
    dense_chunks: int = 0
    bytes: int = 0

    @property
    def dense_chunk_ratio(self) -> float:
        return self.dense_chunks / self.chunk_refs if self.chunk_refs else 0.0

    @property
    def share_ratio(self) -> float:
        return self.chunks_shared / self.chunk_refs if self.chunk_refs else 0.0


def vector_stats(sets: Sequence[SparseBits]) -> ChunkStats:
    """Sharing-aware storage accounting for a closure's reach vector.

    Chunk bytes are attributed once per distinct chunk *object*:
    CPython ints are immutable, so two block tables referencing the
    same chunk genuinely share its memory.
    """
    stats = ChunkStats(sets=len(sets))
    seen: Dict[int, None] = {}
    for bits in sets:
        stats.bytes += sys.getsizeof(bits) + sys.getsizeof(bits.chunks)
        for chunk in bits.chunks.values():
            stats.chunk_refs += 1
            if chunk == FULL_CHUNK:
                stats.dense_chunks += 1
            key = id(chunk)
            if key not in seen:
                seen[key] = None
                stats.chunks_allocated += 1
                stats.bytes += sys.getsizeof(chunk)
            else:
                stats.chunks_shared += 1
    return stats
