"""The event-driven causality model (Section 3) and its offline
happens-before analysis (Section 4.2)."""

from .builder import (
    BuildProfile,
    EventRecord,
    RULE_ATOMICITY,
    RULE_EXTERNAL,
    RULE_FORK,
    RULE_IPC_CALL,
    RULE_IPC_REPLY,
    RULE_JOIN,
    RULE_LISTENER,
    RULE_LOCK,
    RULE_PROGRAM_ORDER,
    RULE_QUEUE_1,
    RULE_QUEUE_2,
    RULE_QUEUE_3,
    RULE_QUEUE_4,
    RULE_SEND,
    RULE_SEND_AT_FRONT,
    RULE_SIGNAL_WAIT,
    ModelNotApplicableError,
    build_happens_before,
)
from .config import CAFA_MODEL, CONVENTIONAL_MODEL, NO_QUEUE_MODEL, ModelConfig
from .graph import (
    HappensBefore,
    HBCycleError,
    HBInvariantError,
    KeyGraph,
    QueryProfile,
)
from .dot import to_dot
from .stats import HBStats, hb_stats
from .vector_clock import VectorClock, VectorClockAnalysis

__all__ = [
    "BuildProfile",
    "CAFA_MODEL",
    "CONVENTIONAL_MODEL",
    "NO_QUEUE_MODEL",
    "EventRecord",
    "HBCycleError",
    "HBInvariantError",
    "HBStats",
    "HappensBefore",
    "KeyGraph",
    "ModelConfig",
    "ModelNotApplicableError",
    "QueryProfile",
    "RULE_ATOMICITY",
    "RULE_EXTERNAL",
    "RULE_FORK",
    "RULE_IPC_CALL",
    "RULE_IPC_REPLY",
    "RULE_JOIN",
    "RULE_LISTENER",
    "RULE_LOCK",
    "RULE_PROGRAM_ORDER",
    "RULE_QUEUE_1",
    "RULE_QUEUE_2",
    "RULE_QUEUE_3",
    "RULE_QUEUE_4",
    "RULE_SEND",
    "RULE_SEND_AT_FRONT",
    "RULE_SIGNAL_WAIT",
    "VectorClock",
    "VectorClockAnalysis",
    "build_happens_before",
    "hb_stats",
    "to_dot",
]
