"""A brute-force reference implementation of the causality model.

This module exists for *differential testing only*: it implements the
rules of Section 3.3 in the most literal way possible — one vertex per
trace operation, a dense reachability matrix recomputed from scratch
every round, and a fixpoint that re-scans every rule instance on every
round quantifying over **all** operation pairs.  No key-node reduction,
no incremental maintenance, no seeding, no candidate masks.  (The
matrix rows are stored as big-int bitsets and each round's conclusions
are staged and applied together — pure mechanics that keep the oracle
usable on whole app traces without changing the computed relation.)
It is O(n^3/64)-ish and only usable on small traces, which is exactly
what the property and differential tests feed it: the optimized
builder in :mod:`repro.hb.builder` must agree with this oracle on
every ordering query.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from .bits import SparseBits
from ..trace import (
    Begin,
    End,
    Fork,
    IpcCall,
    IpcHandle,
    IpcReply,
    IpcReturn,
    Join,
    Notify,
    Perform,
    Register,
    Send,
    SendAtFront,
    TaskKind,
    Trace,
    Wait,
)
from .config import CAFA_MODEL, ModelConfig


class ReferenceHappensBefore:
    """The literal model.  Query with :meth:`ordered`.

    ``dense_bits`` mirrors the optimized builder's representation
    switch so *both* closure backends can be differentially tested
    against an oracle using the same storage they use: ``True`` keeps
    the rows as big ints, ``False`` (the default, matching the
    builder) stores them as chunked :class:`~repro.hb.bits.SparseBits`.
    The Floyd-Warshall staging and the computed relation are identical
    either way.
    """

    def __init__(
        self,
        trace: Trace,
        config: ModelConfig = CAFA_MODEL,
        dense_bits: bool = False,
    ) -> None:
        self.trace = trace
        self.config = config
        self.dense_bits = dense_bits
        n = len(trace)
        self._n = n
        #: adjacency: edge[i][j] True if i -> j directly
        self._edge: List[Set[int]] = [set() for _ in range(n)]
        #: per-row reachability bitsets: bit j of _reach[i] set iff i ->* j
        self._reach: Optional[List[Union[int, SparseBits]]] = None
        self._build()

    # -- construction -----------------------------------------------------

    def _add(self, i: int, j: int) -> bool:
        if j in self._edge[i]:
            return False
        self._edge[i].add(j)
        self._reach = None
        return True

    def _closure(self) -> List[Union[int, SparseBits]]:
        if self._reach is not None:
            return self._reach
        n = self._n
        reach: List[Union[int, SparseBits]]
        if self.dense_bits:
            reach = [(1 << i) for i in range(n)]
            for i in range(n):
                for j in self._edge[i]:
                    reach[i] |= 1 << j  # type: ignore[operator]
            # Floyd-Warshall, one big-int row per vertex
            for k in range(n):
                row_k = reach[k]
                for i in range(n):
                    if (reach[i] >> k) & 1:  # type: ignore[operator]
                        reach[i] |= row_k  # type: ignore[operator]
        else:
            reach = [
                SparseBits.from_indices([i, *self._edge[i]]) for i in range(n)
            ]
            # Floyd-Warshall, one sparse row per vertex
            for k in range(n):
                row_k = reach[k]
                for i in range(n):
                    if reach[i].test(k):  # type: ignore[union-attr]
                        reach[i].ior(row_k)  # type: ignore[union-attr, arg-type]
        self._reach = reach
        return reach

    def _lt(self, a: int, b: int) -> bool:
        """Strict: a < b (reflexive closure minus identity)."""
        if a == b:
            return False
        row = self._closure()[a]
        if isinstance(row, SparseBits):
            return row.test(b)
        return (row >> b) & 1 == 1

    def _build(self) -> None:
        trace, config = self.trace, self.config
        n = self._n

        def effective_task(op) -> str:
            if config.sequential_events:
                info = trace.tasks.get(op.task)
                if info is not None and info.task_kind is TaskKind.EVENT and info.looper:
                    return info.looper
            return op.task

        # program order
        last: Dict[str, int] = {}
        for i, op in enumerate(trace.ops):
            task = effective_task(op)
            if task in last:
                self._add(last[task], i)
            last[task] = i

        begin_of: Dict[str, int] = {}
        end_of: Dict[str, int] = {}
        for i, op in enumerate(trace.ops):
            if isinstance(op, Begin):
                begin_of.setdefault(op.task, i)
            elif isinstance(op, End):
                end_of[op.task] = i

        notifies: List[Tuple[int, Notify]] = []
        registers: List[Tuple[int, Register]] = []
        calls: Dict[int, int] = {}
        replies: Dict[int, int] = {}
        for i, op in enumerate(trace.ops):
            if isinstance(op, Fork) and config.fork_join:
                if op.child in begin_of:
                    self._add(i, begin_of[op.child])
            elif isinstance(op, Join) and config.fork_join:
                if op.child in end_of:
                    self._add(end_of[op.child], i)
            elif isinstance(op, Notify):
                notifies.append((i, op))
            elif isinstance(op, Wait) and config.signal_wait:
                for j, notify in notifies:
                    if j >= i or notify.monitor != op.monitor:
                        continue
                    if op.ticket >= 0:
                        if notify.ticket == op.ticket:
                            self._add(j, i)
                    else:
                        self._add(j, i)
            elif isinstance(op, Register):
                registers.append((i, op))
            elif isinstance(op, Perform) and config.listener:
                for j, reg in registers:
                    if j < i and reg.listener == op.listener:
                        self._add(j, i)
            elif isinstance(op, (Send, SendAtFront)) and config.send_begin:
                if op.event in begin_of:
                    self._add(i, begin_of[op.event])
            elif isinstance(op, IpcCall) and config.ipc:
                calls[op.txn] = i
            elif isinstance(op, IpcHandle) and config.ipc:
                if op.txn in calls:
                    self._add(calls[op.txn], i)
            elif isinstance(op, IpcReply) and config.ipc:
                replies[op.txn] = i
            elif isinstance(op, IpcReturn) and config.ipc:
                if op.txn in replies:
                    self._add(replies[op.txn], i)

        if config.external_input:
            external = trace.external_events()
            for e1, e2 in zip(external, external[1:]):
                if e1 in end_of and e2 in begin_of:
                    self._add(end_of[e1], begin_of[e2])

        if not config.sequential_events:
            self._fixpoint(begin_of, end_of)

    def _fixpoint(self, begin_of: Dict[str, int], end_of: Dict[str, int]) -> None:
        trace, config = self.trace, self.config

        events = [
            (task, info)
            for task, info in trace.tasks.items()
            if info.task_kind is TaskKind.EVENT
            and task in begin_of
            and task in end_of
        ]
        sends: List[Tuple[int, Send]] = []
        fronts: List[Tuple[int, SendAtFront]] = []
        for i, op in enumerate(trace.ops):
            if isinstance(op, Send) and op.event in begin_of and op.event in end_of:
                sends.append((i, op))
            elif isinstance(op, SendAtFront) and op.event in begin_of and op.event in end_of:
                fronts.append((i, op))

        # Each round scans every rule instance against the closure of the
        # edges known at the start of the round; the round's conclusions
        # are applied together afterwards.  The loop still runs to the
        # least fixpoint (the rules are monotone), it just rebuilds the
        # closure once per round instead of once per added edge.
        changed = True
        while changed:
            staged: List[Tuple[int, int]] = []
            if config.atomicity:
                for t1, i1 in events:
                    for t2, i2 in events:
                        if t1 == t2 or i1.looper != i2.looper or not i1.looper:
                            continue
                        if self._lt(begin_of[t1], end_of[t2]):
                            staged.append((end_of[t1], begin_of[t2]))
            if config.queue_rule_1:
                for i, s1 in sends:
                    for j, s2 in sends:
                        if i == j or s1.queue != s2.queue:
                            continue
                        if s1.delay <= s2.delay and self._lt(i, j):
                            staged.append((end_of[s1.event], begin_of[s2.event]))
            if config.queue_rule_2:
                for i, s1 in sends:
                    for j, f2 in fronts:
                        if s1.queue != f2.queue:
                            continue
                        if self._lt(i, j) and self._lt(j, begin_of[s1.event]):
                            staged.append((end_of[f2.event], begin_of[s1.event]))
            if config.queue_rule_3:
                for i, f1 in fronts:
                    for j, s2 in sends:
                        if f1.queue != s2.queue:
                            continue
                        if self._lt(i, j):
                            staged.append((end_of[f1.event], begin_of[s2.event]))
            if config.queue_rule_4:
                for i, f1 in fronts:
                    for j, f2 in fronts:
                        if i == j or f1.queue != f2.queue:
                            continue
                        if self._lt(i, j) and self._lt(j, begin_of[f1.event]):
                            staged.append((end_of[f2.event], begin_of[f1.event]))
            reach = self._closure()
            changed = False
            for src, dst in staged:
                row = reach[src]
                implied = (
                    row.test(dst)
                    if isinstance(row, SparseBits)
                    else (row >> dst) & 1
                )
                if not implied:
                    if self._add(src, dst):
                        changed = True

    # -- queries ----------------------------------------------------------

    def ordered(self, a: int, b: int) -> bool:
        """Strict happens-before between operation indices."""
        if self.trace[a].task == self.trace[b].task:
            return a < b
        if self.config.sequential_events:
            ta = self._effective(a)
            tb = self._effective(b)
            if ta == tb:
                return a < b
        return self._lt(a, b)

    def _effective(self, i: int) -> str:
        op = self.trace[i]
        info = self.trace.tasks.get(op.task)
        if info is not None and info.task_kind is TaskKind.EVENT and info.looper:
            return info.looper
        return op.task

    def concurrent(self, a: int, b: int) -> bool:
        return not self.ordered(a, b) and not self.ordered(b, a)
