"""Construction of the happens-before relation from a trace.

This is the offline analysis of Section 4.2: build a graph whose
vertices are the trace operations and whose edges encode the causality
model of Section 3.3, then answer ordering queries by reachability.

The base rules (program order, fork-join, signal-and-wait, event
listener, send, external input, IPC) produce edges directly from the
trace.  The atomicity rule and the four event-queue rules are *derived*
rules: their premises are happens-before facts, so they are applied to
a fixpoint — each round finds every rule instance whose premise holds
and whose conclusion is not yet implied, adds the concluded edges, and
repeats until no rule fires.

The fixpoint is *incremental*: the transitive closure is computed once
before round one and maintained in place by
:meth:`repro.hb.graph.KeyGraph.add_edge` as conclusions land, so the
rules read live reach sets instead of per-round snapshots.  Dirty
tracking makes later rounds cheap, at two granularities: a looper's
atomicity group or a queue's rule group is only re-examined when the
reach set of one of its premise nodes (event begins, send operations)
actually changed since the group last ran, and *inside* a dirty group
only the members whose own premise node changed are re-read — one
moving event in a thousand-event looper re-examines one member, not a
thousand (``events_repropagated`` vs ``group_dirty_events`` in the
:class:`BuildProfile`).  Edges concluded in a round are still staged
and applied between rounds, which keeps the produced edge set
bit-for-bit identical to the historical snapshot-per-round
implementation (available as ``build_happens_before(...,
incremental=False)`` for differential testing).
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from ..trace import (
    Acquire,
    Begin,
    End,
    Fork,
    IpcCall,
    IpcHandle,
    IpcReply,
    IpcReturn,
    Join,
    Notify,
    OpKind,
    Perform,
    Register,
    Release,
    Send,
    SendAtFront,
    SYNC_KINDS,
    TaskKind,
    Trace,
    Wait,
)
from ..obs.spans import span
from ..trace.store import KIND_LIST
from .bits import SparseBits
from .config import CAFA_MODEL, DEFAULT_DENSE_BITS, ModelConfig
from .graph import HappensBefore, KeyGraph

# Rule labels used as edge provenance.
RULE_PROGRAM_ORDER = "program-order"
RULE_FORK = "fork"
RULE_JOIN = "join"
RULE_SIGNAL_WAIT = "signal-wait"
RULE_LISTENER = "listener"
RULE_SEND = "send"
RULE_SEND_AT_FRONT = "sendAtFront"
RULE_EXTERNAL = "external-input"
RULE_IPC_CALL = "ipc-call"
RULE_IPC_REPLY = "ipc-reply"
RULE_LOCK = "lock"
RULE_ATOMICITY = "atomicity"
RULE_QUEUE_1 = "queue-rule-1"
RULE_QUEUE_2 = "queue-rule-2"
RULE_QUEUE_3 = "queue-rule-3"
RULE_QUEUE_4 = "queue-rule-4"


@dataclass
class BuildProfile:
    """Per-phase timings and closure-work counters of one build.

    Attached to :class:`~repro.hb.graph.HappensBefore` as ``profile``
    and surfaced by ``repro.hb.stats`` / ``python -m repro stats`` so
    the cost of each phase — and the effect of the incremental closure
    — is observable without a profiler.
    """

    #: trace scan + event-record harvesting
    scan_seconds: float = 0.0
    #: key-graph construction + base-rule edges
    base_seconds: float = 0.0
    #: full transitive-closure computations (initial + final check)
    closure_seconds: float = 0.0
    #: derived-rule fixpoint (rule evaluation + incremental closure upkeep)
    fixpoint_seconds: float = 0.0
    #: fixpoint rounds (== HappensBefore.iterations)
    rounds: int = 0
    #: derived edges applied after each round (excludes the final empty round)
    edges_per_round: List[int] = field(default_factory=list)
    #: full closure rebuilds (1 for an incremental build, ~rounds+1 legacy)
    closure_recomputations: int = 0
    #: reachability bits newly set by incremental propagation
    bits_propagated: int = 0
    #: rule groups (per looper / per queue) evaluated across all rounds
    groups_examined: int = 0
    #: rule groups skipped because no premise node's reach set changed
    groups_skipped: int = 0
    #: whether the closure used the legacy dense big-int representation
    dense_bits: bool = False
    #: sparse backend: distinct chunk objects in the final reach vector
    chunks_allocated: int = 0
    #: sparse backend: block-table entries resolved by sharing a chunk
    #: already owned by another node (copy-on-write adoption)
    chunks_shared: int = 0
    #: sparse backend: fraction of chunk references that are the
    #: all-ones FULL_CHUNK (served by the dense-chunk fast path)
    dense_chunk_ratio: float = 0.0
    #: bytes retained by the final closure (sharing-aware when sparse)
    closure_bytes: int = 0
    #: rule members whose premise reach sets were re-read in dirty
    #: (post-first) fixpoint rounds — the per-event dirty granularity
    events_repropagated: int = 0
    #: rule members the historical per-group dirty tracking would have
    #: re-read in those same rounds (every member of a dirty group);
    #: ``events_repropagated <= group_dirty_events`` always, and the
    #: gap is the win of per-event tracking
    group_dirty_events: int = 0

    @property
    def total_seconds(self) -> float:
        return (
            self.scan_seconds
            + self.base_seconds
            + self.closure_seconds
            + self.fixpoint_seconds
        )


@dataclass
class EventRecord:
    """Send/dispatch facts about one event, harvested from the trace."""

    event: str
    queue: Optional[str] = None
    looper: Optional[str] = None
    send_index: Optional[int] = None
    delay: int = 0
    at_front: bool = False
    begin_index: Optional[int] = None
    end_index: Optional[int] = None

    @property
    def dispatched(self) -> bool:
        return self.begin_index is not None and self.end_index is not None


@dataclass
class _BuildState:
    """Internal indices shared by the edge-derivation passes."""

    trace: Trace
    config: ModelConfig
    op_task: List[str] = field(default_factory=list)
    op_pos: List[int] = field(default_factory=list)
    task_ops: Dict[str, List[int]] = field(default_factory=dict)
    events: Dict[str, EventRecord] = field(default_factory=dict)
    task_begin: Dict[str, int] = field(default_factory=dict)
    task_end: Dict[str, int] = field(default_factory=dict)
    #: per-op key flags, precomputed on the columnar path (None = legacy,
    #: resolved per op by :func:`_is_key`)
    is_key: Optional[List[bool]] = None


def _effective_task(state: _BuildState, op_index: int) -> str:
    """The task an op belongs to under the configured event model.

    With ``sequential_events`` (the conventional baseline) every event's
    operations are folded into its looper thread's program order.
    """
    op = state.trace[op_index]
    if not state.config.sequential_events:
        return op.task
    info = state.trace.tasks.get(op.task)
    if info is not None and info.task_kind is TaskKind.EVENT and info.looper:
        return info.looper
    return op.task


def _harvest(state: _BuildState, i: int, op) -> None:
    """Record task bounds and event send/dispatch facts for one op."""
    trace = state.trace
    if isinstance(op, Begin):
        state.task_begin.setdefault(op.task, i)
        info = trace.tasks.get(op.task)
        if info is not None and info.task_kind is TaskKind.EVENT:
            rec = state.events.setdefault(op.task, EventRecord(op.task))
            rec.begin_index = i
            rec.looper = info.looper
            rec.queue = info.queue
    elif isinstance(op, End):
        state.task_end[op.task] = i
        info = trace.tasks.get(op.task)
        if info is not None and info.task_kind is TaskKind.EVENT:
            state.events.setdefault(op.task, EventRecord(op.task)).end_index = i
    elif isinstance(op, Send):
        rec = state.events.setdefault(op.event, EventRecord(op.event))
        rec.send_index = i
        rec.delay = op.delay
        rec.at_front = False
        if op.queue:
            rec.queue = op.queue
    elif isinstance(op, SendAtFront):
        rec = state.events.setdefault(op.event, EventRecord(op.event))
        rec.send_index = i
        rec.delay = 0
        rec.at_front = True
        if op.queue:
            rec.queue = op.queue


def _scan(state: _BuildState) -> None:
    """First pass: positions, task bounds, and event records."""
    trace = state.trace
    store = trace.store
    if store is not None:
        _scan_store(state, store)
        return
    for i, op in enumerate(trace.ops):
        task = _effective_task(state, i)
        ops = state.task_ops.setdefault(task, [])
        state.op_task.append(task)
        state.op_pos.append(len(ops))
        ops.append(i)
        _harvest(state, i, op)


def _scan_store(state: _BuildState, store) -> None:
    """Columnar first pass: per-op bookkeeping straight from the int
    columns (no :class:`Operation` materialization), then a sparse
    harvest over only the kinds that carry event/bound facts."""
    trace, config = state.trace, state.config
    tasks = trace.tasks
    sequential = config.sequential_events
    symbols = store.symbols
    # task symbol id -> effective task name, resolved lazily (the
    # symbol table also interns non-task strings).
    effective: List[Optional[str]] = [None] * len(symbols)
    op_task, op_pos, task_ops = state.op_task, state.op_pos, state.task_ops
    for i, tid in enumerate(store.task_ids):
        name = effective[tid]
        if name is None:
            name = symbols.value(tid)
            if sequential:
                info = tasks.get(name)
                if (
                    info is not None
                    and info.task_kind is TaskKind.EVENT
                    and info.looper
                ):
                    name = info.looper
            effective[tid] = name
        ops = task_ops.get(name)
        if ops is None:
            ops = task_ops[name] = []
        op_task.append(name)
        op_pos.append(len(ops))
        ops.append(i)
    # Key-op flags from the kind column alone; _build_key_graph indexes
    # this instead of materializing one op per candidate.
    lock_kinds = (OpKind.ACQUIRE, OpKind.RELEASE)
    key_by_code = [
        kind in SYNC_KINDS or (config.lock_edges and kind in lock_kinds)
        for kind in KIND_LIST
    ]
    state.is_key = [key_by_code[code] for code in store.kinds]
    _harvest_store(state, store)


def _harvest_store(state: _BuildState, store) -> None:
    """Columnar :func:`_harvest`: the same facts in the same overwrite
    order, read straight from the kind buckets.

    The four kinds' entries are merged back into trace order because
    their writes interact: a Send after a SendAtFront overwrites
    ``send_index``/``at_front`` (and vice versa), and ``rec.queue`` is
    written by Begin (from the task table) *and* by sends (from the op)
    — last writer in trace order must win, exactly as in the
    materializing sweep.
    """
    tasks = state.trace.tasks
    events = state.events
    task_begin, task_end = state.task_begin, state.task_end
    sym = store.symbols.value
    task_of = store.task_of

    begin_idx = store.by_kind(OpKind.BEGIN)
    end_idx = store.by_kind(OpKind.END)
    send_idx, send_event = store.column(OpKind.SEND, "event")
    _, send_delay = store.column(OpKind.SEND, "delay")
    _, send_queue = store.column(OpKind.SEND, "queue")
    front_idx, front_event = store.column(OpKind.SEND_AT_FRONT, "event")
    _, front_queue = store.column(OpKind.SEND_AT_FRONT, "queue")

    entries = [(i, 0, r) for r, i in enumerate(begin_idx)]
    entries += [(i, 1, r) for r, i in enumerate(end_idx)]
    entries += [(i, 2, r) for r, i in enumerate(send_idx)]
    entries += [(i, 3, r) for r, i in enumerate(front_idx)]
    entries.sort()
    for i, tag, r in entries:
        if tag == 0:  # Begin
            task = task_of(i)
            task_begin.setdefault(task, i)
            info = tasks.get(task)
            if info is not None and info.task_kind is TaskKind.EVENT:
                rec = events.setdefault(task, EventRecord(task))
                rec.begin_index = i
                rec.looper = info.looper
                rec.queue = info.queue
        elif tag == 1:  # End
            task = task_of(i)
            task_end[task] = i
            info = tasks.get(task)
            if info is not None and info.task_kind is TaskKind.EVENT:
                events.setdefault(task, EventRecord(task)).end_index = i
        elif tag == 2:  # Send
            event = sym(send_event[r])
            rec = events.setdefault(event, EventRecord(event))
            rec.send_index = i
            rec.delay = send_delay[r]
            rec.at_front = False
            queue = sym(send_queue[r])
            if queue:
                rec.queue = queue
        else:  # SendAtFront
            event = sym(front_event[r])
            rec = events.setdefault(event, EventRecord(event))
            rec.send_index = i
            rec.delay = 0
            rec.at_front = True
            queue = sym(front_queue[r])
            if queue:
                rec.queue = queue


def _is_key(state: _BuildState, op_index: int) -> bool:
    op = state.trace[op_index]
    if op.kind in SYNC_KINDS:
        return True
    if state.config.lock_edges and op.kind in (OpKind.ACQUIRE, OpKind.RELEASE):
        return True
    return False


def _build_key_graph(
    state: _BuildState,
    incremental: bool = True,
    dense_bits: bool = DEFAULT_DENSE_BITS,
) -> Tuple[KeyGraph, Dict[str, List[int]], Dict[str, List[int]]]:
    """Create nodes for every key op and chain them per task.

    Each task's chain goes through :meth:`KeyGraph.add_chain`, which
    allocates its nodes in one uninterrupted run and thereby
    *guarantees* the contiguous-id invariant behind the sparse query
    path's range probes (a broken run raises instead of degrading).
    """
    graph = KeyGraph(incremental=incremental, dense_bits=dense_bits)
    task_key_positions: Dict[str, List[int]] = {}
    task_key_nodes: Dict[str, List[int]] = {}
    if state.is_key is not None:
        is_key = state.is_key.__getitem__
    else:
        def is_key(op_index: int) -> bool:
            return _is_key(state, op_index)
    for task, ops in state.task_ops.items():
        last = len(ops) - 1
        positions = [
            pos
            for pos, op_index in enumerate(ops)
            if is_key(op_index) or pos == last
        ]
        task_key_positions[task] = positions
        task_key_nodes[task] = graph.add_chain(
            [ops[pos] for pos in positions], RULE_PROGRAM_ORDER
        )
    return graph, task_key_positions, task_key_nodes


def _add_base_edges(state: _BuildState, graph: KeyGraph) -> None:
    """Edges whose premises are syntactic facts of the trace."""
    trace, config = state.trace, state.config
    notify_by_ticket: Dict[int, int] = {}
    notify_by_monitor: Dict[str, List[int]] = {}
    registers: Dict[str, List[int]] = {}
    ipc_calls: Dict[int, int] = {}
    ipc_replies: Dict[int, int] = {}
    last_release: Dict[str, int] = {}

    def edge(u_op: int, v_op: int, rule: str) -> None:
        graph.add_edge(graph.node_of(u_op), graph.node_of(v_op), rule)

    def step(i: int, op) -> None:
        if isinstance(op, Fork) and config.fork_join:
            begin = state.task_begin.get(op.child)
            if begin is not None:
                edge(i, begin, RULE_FORK)
        elif isinstance(op, Join) and config.fork_join:
            end = state.task_end.get(op.child)
            if end is not None:
                edge(end, i, RULE_JOIN)
        elif isinstance(op, Notify) and config.signal_wait:
            if op.ticket >= 0:
                notify_by_ticket[op.ticket] = i
            notify_by_monitor.setdefault(op.monitor, []).append(i)
        elif isinstance(op, Wait) and config.signal_wait:
            if op.ticket >= 0 and op.ticket in notify_by_ticket:
                edge(notify_by_ticket[op.ticket], i, RULE_SIGNAL_WAIT)
            else:
                # No pairing information: apply the rule as written —
                # every earlier notify of the monitor orders the wait.
                for n in notify_by_monitor.get(op.monitor, ()):
                    edge(n, i, RULE_SIGNAL_WAIT)
        elif isinstance(op, Register) and config.listener:
            registers.setdefault(op.listener, []).append(i)
        elif isinstance(op, Perform) and config.listener:
            for r in registers.get(op.listener, ()):
                edge(r, i, RULE_LISTENER)
        elif isinstance(op, (Send, SendAtFront)) and config.send_begin:
            begin = state.task_begin.get(op.event)
            if begin is not None:
                rule = RULE_SEND if isinstance(op, Send) else RULE_SEND_AT_FRONT
                edge(i, begin, rule)
        elif isinstance(op, IpcCall) and config.ipc:
            ipc_calls[op.txn] = i
        elif isinstance(op, IpcHandle) and config.ipc:
            call = ipc_calls.get(op.txn)
            if call is not None:
                edge(call, i, RULE_IPC_CALL)
        elif isinstance(op, IpcReply) and config.ipc:
            ipc_replies[op.txn] = i
        elif isinstance(op, IpcReturn) and config.ipc:
            reply = ipc_replies.get(op.txn)
            if reply is not None:
                edge(reply, i, RULE_IPC_REPLY)
        elif isinstance(op, Release) and config.lock_edges:
            last_release[op.lock] = i
        elif isinstance(op, Acquire) and config.lock_edges:
            rel = last_release.get(op.lock)
            if rel is not None:
                edge(rel, i, RULE_LOCK)

    store = trace.store
    if store is None:
        for i, op in enumerate(trace.ops):
            step(i, op)
    else:
        # Columnar path: per-kind handlers over the raw columns — no
        # :class:`Operation` is ever materialized.  Entries of every
        # enabled kind are merged back into trace order before dispatch
        # because the base rules are stateful scans (a Wait pairs with
        # *earlier* Notifies, an Acquire with the *latest* Release).
        sym = store.symbols.value
        handlers: List[Callable[[int, int], None]] = []
        entries: List[Tuple[int, int, int]] = []

        def add_kind(kind: OpKind, handler: Callable[[int, int], None]) -> None:
            indices = store.by_kind(kind)
            if indices:
                tag = len(handlers)
                handlers.append(handler)
                entries.extend((i, tag, r) for r, i in enumerate(indices))

        if config.fork_join:
            _, fork_child = store.column(OpKind.FORK, "child")

            def h_fork(i: int, r: int) -> None:
                begin = state.task_begin.get(sym(fork_child[r]))
                if begin is not None:
                    edge(i, begin, RULE_FORK)

            add_kind(OpKind.FORK, h_fork)
            _, join_child = store.column(OpKind.JOIN, "child")

            def h_join(i: int, r: int) -> None:
                end = state.task_end.get(sym(join_child[r]))
                if end is not None:
                    edge(end, i, RULE_JOIN)

            add_kind(OpKind.JOIN, h_join)
        if config.signal_wait:
            _, notify_mon = store.column(OpKind.NOTIFY, "monitor")
            _, notify_ticket = store.column(OpKind.NOTIFY, "ticket")

            def h_notify(i: int, r: int) -> None:
                ticket = notify_ticket[r]
                if ticket >= 0:
                    notify_by_ticket[ticket] = i
                notify_by_monitor.setdefault(sym(notify_mon[r]), []).append(i)

            add_kind(OpKind.NOTIFY, h_notify)
            _, wait_mon = store.column(OpKind.WAIT, "monitor")
            _, wait_ticket = store.column(OpKind.WAIT, "ticket")

            def h_wait(i: int, r: int) -> None:
                ticket = wait_ticket[r]
                if ticket >= 0 and ticket in notify_by_ticket:
                    edge(notify_by_ticket[ticket], i, RULE_SIGNAL_WAIT)
                else:
                    # No pairing information: apply the rule as written —
                    # every earlier notify of the monitor orders the wait.
                    for n in notify_by_monitor.get(sym(wait_mon[r]), ()):
                        edge(n, i, RULE_SIGNAL_WAIT)

            add_kind(OpKind.WAIT, h_wait)
        if config.listener:
            _, reg_listener = store.column(OpKind.REGISTER, "listener")

            def h_register(i: int, r: int) -> None:
                registers.setdefault(sym(reg_listener[r]), []).append(i)

            add_kind(OpKind.REGISTER, h_register)
            _, perf_listener = store.column(OpKind.PERFORM, "listener")

            def h_perform(i: int, r: int) -> None:
                for x in registers.get(sym(perf_listener[r]), ()):
                    edge(x, i, RULE_LISTENER)

            add_kind(OpKind.PERFORM, h_perform)
        if config.send_begin:
            _, send_event = store.column(OpKind.SEND, "event")

            def h_send(i: int, r: int) -> None:
                begin = state.task_begin.get(sym(send_event[r]))
                if begin is not None:
                    edge(i, begin, RULE_SEND)

            add_kind(OpKind.SEND, h_send)
            _, front_event = store.column(OpKind.SEND_AT_FRONT, "event")

            def h_front(i: int, r: int) -> None:
                begin = state.task_begin.get(sym(front_event[r]))
                if begin is not None:
                    edge(i, begin, RULE_SEND_AT_FRONT)

            add_kind(OpKind.SEND_AT_FRONT, h_front)
        if config.ipc:
            _, call_txn = store.column(OpKind.IPC_CALL, "txn")

            def h_call(i: int, r: int) -> None:
                ipc_calls[call_txn[r]] = i

            add_kind(OpKind.IPC_CALL, h_call)
            _, handle_txn = store.column(OpKind.IPC_HANDLE, "txn")

            def h_handle(i: int, r: int) -> None:
                call = ipc_calls.get(handle_txn[r])
                if call is not None:
                    edge(call, i, RULE_IPC_CALL)

            add_kind(OpKind.IPC_HANDLE, h_handle)
            _, reply_txn = store.column(OpKind.IPC_REPLY, "txn")

            def h_reply(i: int, r: int) -> None:
                ipc_replies[reply_txn[r]] = i

            add_kind(OpKind.IPC_REPLY, h_reply)
            _, return_txn = store.column(OpKind.IPC_RETURN, "txn")

            def h_return(i: int, r: int) -> None:
                reply = ipc_replies.get(return_txn[r])
                if reply is not None:
                    edge(reply, i, RULE_IPC_REPLY)

            add_kind(OpKind.IPC_RETURN, h_return)
        if config.lock_edges:
            _, release_lock = store.column(OpKind.RELEASE, "lock")

            def h_release(i: int, r: int) -> None:
                last_release[sym(release_lock[r])] = i

            add_kind(OpKind.RELEASE, h_release)
            _, acquire_lock = store.column(OpKind.ACQUIRE, "lock")

            def h_acquire(i: int, r: int) -> None:
                rel = last_release.get(sym(acquire_lock[r]))
                if rel is not None:
                    edge(rel, i, RULE_LOCK)

            add_kind(OpKind.ACQUIRE, h_acquire)
        entries.sort()
        for i, tag, r in entries:
            handlers[tag](i, r)

    if config.external_input:
        external = trace.external_events()
        for e1, e2 in zip(external, external[1:]):
            end1 = state.task_end.get(e1)
            begin2 = state.task_begin.get(e2)
            if end1 is not None and begin2 is not None:
                edge(end1, begin2, RULE_EXTERNAL)

    if config.queue_rule_1 and not config.sequential_events:
        _seed_queue_rule_1_chains(state, graph)


def _seed_queue_rule_1_chains(state: _BuildState, graph: KeyGraph) -> None:
    """Pre-apply queue rule 1 along each task's own send sequence.

    A task that sends many events to one queue orders them pairwise by
    rule 1 (its sends are in program order).  Left to the fixpoint this
    produces a quadratic number of derived edges for event-dense traces;
    seeding the *consecutive* conclusions here keeps the later rounds'
    implied-edge check effective, so the fixpoint only adds the edges
    transitivity cannot reach.  This is purely an optimization: the
    edges added are ordinary rule-1 conclusions.
    """
    per_task_queue: Dict[Tuple[str, str], List[EventRecord]] = {}
    task_of = state.trace.task_of
    for rec in state.events.values():
        if rec.send_index is None or rec.at_front or not rec.dispatched:
            continue
        if not rec.queue:
            continue
        per_task_queue.setdefault((task_of(rec.send_index), rec.queue), []).append(rec)
    for recs in per_task_queue.values():
        recs.sort(key=lambda r: r.send_index)  # type: ignore[arg-type, return-value]
        for i, rec in enumerate(recs):
            for later in recs[i + 1 :]:
                if later.delay >= rec.delay:
                    graph.add_edge(
                        graph.node_of(rec.end_index),  # type: ignore[arg-type]
                        graph.node_of(later.begin_index),  # type: ignore[arg-type]
                        RULE_QUEUE_1,
                    )
                    break


class ModelNotApplicableError(Exception):
    """The trace violates a structural assumption of the model.

    Section 3.1: the causality model applies to systems that allocate
    one looper thread per event queue; if multiple loopers share a
    queue, the FIFO-processing guarantees behind the queue rules do
    not hold and no causal order can be derived from them.
    """


def _check_one_looper_per_queue(state: _BuildState) -> None:
    looper_of_queue: Dict[str, str] = {}
    for rec in state.events.values():
        if not rec.queue or not rec.looper:
            continue
        existing = looper_of_queue.setdefault(rec.queue, rec.looper)
        if existing != rec.looper:
            raise ModelNotApplicableError(
                f"queue {rec.queue!r} is drained by loopers {existing!r} "
                f"and {rec.looper!r}; the causality model assumes one "
                "looper thread per event queue (Section 3.1)"
            )


#: a candidate mask in the active closure representation
_Mask = Union[int, SparseBits]


@dataclass
class _AtomicityGroup:
    """One looper's dispatched events, in execution order."""

    recs: List[EventRecord]
    begin_node: List[int]
    #: end-node suffix masks: suffix[i] = OR of end nodes after position i-1
    suffix: List[_Mask]
    event_of_end_node: Dict[int, EventRecord]
    #: nodes whose reach sets the rule's premise reads
    premise: FrozenSet[int]


@dataclass
class _QueueGroup:
    """One queue's dispatched sends (sorted by delay) and sendAtFronts."""

    sends: List[EventRecord]
    fronts: List[EventRecord]
    delays: List[int]
    send_node: List[int]
    #: send-node suffix masks over the delay-sorted sends
    suffix: List[_Mask]
    event_of_send_node: Dict[int, EventRecord]
    all_sends_mask: _Mask
    front_node: List[int]
    front_begin_node: List[int]
    #: premise node sets per rule — re-examine only when one of these
    #: nodes' reach set changed
    premise_sends: FrozenSet[int]
    premise_fronts: FrozenSet[int]
    #: union of both premise sets, for the either-sided rule 2
    premise_any: FrozenSet[int]


# Representation adapters: the derived rules are written once against
# these four operations and bound to the dense or sparse implementation
# when the rule engine is constructed, so both closure backends run the
# exact same rule logic.

def _dense_node_mask(node: int) -> int:
    return 1 << node


def _dense_extend_mask(mask: int, node: int) -> int:
    return mask | (1 << node)


def _sparse_extend_mask(mask: SparseBits, node: int) -> SparseBits:
    out = mask.copy()
    out.set(node)
    return out


def _dense_and_nodes(reach_row: int, mask: int) -> Iterator[int]:
    candidates = reach_row & mask
    while candidates:
        low = candidates & -candidates
        candidates ^= low
        yield low.bit_length() - 1


def _dense_test(reach_row: int, node: int) -> bool:
    return bool((reach_row >> node) & 1)


_sparse_and_nodes: Callable[[SparseBits, SparseBits], Iterator[int]] = (
    SparseBits.and_iter
)
_sparse_test: Callable[[SparseBits, int], bool] = SparseBits.test


class _DerivedRules:
    """Applies the atomicity + event-queue rules to a fixpoint.

    All per-looper / per-queue candidate structures (suffix masks,
    node maps, premise sets) are precomputed once; each round then
    reads the graph's *live* reach vector.  When the caller hands a
    ``dirty`` node set, skipping happens at two granularities.  First
    per group, as before: a group none of whose premise nodes changed
    cannot produce a new conclusion.  Second — the refinement — *per
    event inside a dirty group*: a rule instance's premise is a
    reachability fact read from specific source nodes, so only members
    whose own premise node is in ``dirty`` are re-examined.  One huge
    looper with a single moving event no longer repays its whole
    group; ``events_repropagated`` (members actually re-read) against
    ``group_dirty_events`` (what group granularity would have re-read)
    makes the gap observable.
    """

    def __init__(self, state: _BuildState, graph: KeyGraph) -> None:
        self.state = state
        self.graph = graph
        self.groups_examined = 0
        self.groups_skipped = 0
        #: rule members re-examined in dirty rounds (per-event tracking)
        self.events_repropagated = 0
        #: rule members the per-group scheme would have re-examined
        self.group_dirty_events = 0
        dense = graph.dense_bits
        if dense:
            self._node_mask = _dense_node_mask
            self._extend_mask = _dense_extend_mask
            self._and_nodes = _dense_and_nodes
            self._test = _dense_test
        else:
            self._node_mask = SparseBits.single
            self._extend_mask = _sparse_extend_mask
            self._and_nodes = _sparse_and_nodes
            self._test = _sparse_test
        config = state.config
        dispatched = [
            rec for rec in state.events.values() if rec.dispatched and rec.queue
        ]
        # Events grouped per looper, in actual execution order.
        per_looper: Dict[str, List[EventRecord]] = {}
        if config.atomicity:
            for rec in dispatched:
                if rec.looper:
                    per_looper.setdefault(rec.looper, []).append(rec)
        empty: _Mask = 0 if dense else SparseBits()
        self.atom_groups: List[_AtomicityGroup] = []
        for recs in per_looper.values():
            if len(recs) < 2:
                continue
            recs.sort(key=lambda r: r.begin_index)  # type: ignore[arg-type, return-value]
            begin_node = [self._node(r.begin_index) for r in recs]  # type: ignore[arg-type]
            end_node = [self._node(r.end_index) for r in recs]  # type: ignore[arg-type]
            suffix: List[_Mask] = [empty] * (len(recs) + 1)
            for i in range(len(recs) - 1, -1, -1):
                suffix[i] = self._extend_mask(suffix[i + 1], end_node[i])
            self.atom_groups.append(
                _AtomicityGroup(
                    recs=recs,
                    begin_node=begin_node,
                    suffix=suffix,
                    event_of_end_node={n: r for n, r in zip(end_node, recs)},
                    premise=frozenset(begin_node[:-1]),
                )
            )
        # Sends grouped per queue for the queue rules.
        sends: Dict[str, List[EventRecord]] = {}
        fronts: Dict[str, List[EventRecord]] = {}
        if config.any_queue_rule:
            for rec in dispatched:
                if rec.send_index is None:
                    continue
                bucket = fronts if rec.at_front else sends
                bucket.setdefault(rec.queue, []).append(rec)  # type: ignore[arg-type]
        self.queue_groups: List[_QueueGroup] = []
        for queue in sorted(sends.keys() | fronts.keys()):
            s = sorted(sends.get(queue, []), key=lambda r: r.delay)
            f = fronts.get(queue, [])
            send_node = [self._node(r.send_index) for r in s]  # type: ignore[arg-type]
            qsuffix: List[_Mask] = [empty] * (len(s) + 1)
            for i in range(len(s) - 1, -1, -1):
                qsuffix[i] = self._extend_mask(qsuffix[i + 1], send_node[i])
            front_node = [self._node(r.send_index) for r in f]  # type: ignore[arg-type]
            premise_sends = frozenset(send_node)
            premise_fronts = frozenset(front_node)
            self.queue_groups.append(
                _QueueGroup(
                    sends=s,
                    fronts=f,
                    delays=[r.delay for r in s],
                    send_node=send_node,
                    suffix=qsuffix,
                    event_of_send_node={n: r for n, r in zip(send_node, s)},
                    all_sends_mask=qsuffix[0],
                    front_node=front_node,
                    front_begin_node=[self._node(r.begin_index) for r in f],  # type: ignore[arg-type]
                    premise_sends=premise_sends,
                    premise_fronts=premise_fronts,
                    premise_any=premise_sends | premise_fronts,
                )
            )

    def _node(self, op_index: int) -> int:
        return self.graph.node_of(op_index)

    def _fresh(self, dirty: Optional[Set[int]], premise: FrozenSet[int]) -> bool:
        """Should a group with these premise nodes run this round?"""
        if dirty is None or not premise.isdisjoint(dirty):
            self.groups_examined += 1
            return True
        self.groups_skipped += 1
        return False

    def apply(
        self, dirty: Optional[Set[int]] = None
    ) -> List[Tuple[int, int, str]]:
        """One round: all rule instances enabled by the current closure.

        ``dirty`` is the node set from ``KeyGraph.drain_dirty`` —
        groups none of whose premise nodes appear in it are skipped,
        and inside a surviving group only the members whose own premise
        node changed are re-examined (``None`` examines everything, as
        in round one).  Concluded edges are returned, *not* added:
        staging them keeps each round a function of the closure at
        round entry, so the edge set matches the historical
        snapshot-per-round builder exactly.
        """
        reach = self.graph.reach_vector()
        new_edges: List[Tuple[int, int, str]] = []
        seen = set()
        test = self._test

        def conclude(e1: EventRecord, e2: EventRecord, rule: str) -> None:
            """Record conclusion end(e1) < begin(e2) unless implied."""
            u = self._node(e1.end_index)  # type: ignore[arg-type]
            v = self._node(e2.begin_index)  # type: ignore[arg-type]
            if (u, v) in seen:
                return
            if test(reach[u], v):
                return
            seen.add((u, v))
            new_edges.append((u, v, rule))

        config = self.state.config
        if config.atomicity:
            self._atomicity(reach, conclude, dirty)
        if config.queue_rule_1:
            self._queue_rule_1(reach, conclude, dirty)
        if config.queue_rule_2:
            self._queue_rule_2(reach, conclude, dirty)
        if config.queue_rule_3:
            self._queue_rule_3(reach, conclude, dirty)
        if config.queue_rule_4:
            self._queue_rule_4(reach, conclude, dirty)
        return new_edges

    # -- Atomicity rule ---------------------------------------------------
    # If begin(e1) < end(e2) then end(e1) < begin(e2), for events of the
    # same looper thread.  Only pairs in actual execution order can
    # satisfy the premise in a consistent trace, so we scan each looper's
    # events in dispatch order and intersect the reachability set of
    # begin(e_i) with the end-nodes of later events in one bitset AND.

    def _atomicity(self, reach, conclude, dirty) -> None:
        and_nodes = self._and_nodes
        for g in self.atom_groups:
            if not self._fresh(dirty, g.premise):
                continue
            track = dirty is not None
            if track:
                self.group_dirty_events += len(g.recs) - 1
            for i, rec in enumerate(g.recs[:-1]):
                # Per-event: the premise begin(e_i) < end(e_j) is a
                # fact about reach[begin(e_i)] — unchanged reach set,
                # no new conclusions from this member.
                if track:
                    if g.begin_node[i] not in dirty:
                        continue
                    self.events_repropagated += 1
                for n in and_nodes(reach[g.begin_node[i]], g.suffix[i + 1]):
                    conclude(rec, g.event_of_end_node[n], RULE_ATOMICITY)

    # -- Queue rule 1 -------------------------------------------------------
    # send(t1,e1,d1) < send(t2,e2,d2) and d1 <= d2  =>  end(e1) < begin(e2).

    def _queue_rule_1(self, reach, conclude, dirty) -> None:
        and_nodes = self._and_nodes
        for g in self.queue_groups:
            if len(g.sends) < 2:
                continue
            if not self._fresh(dirty, g.premise_sends):
                continue
            track = dirty is not None
            if track:
                self.group_dirty_events += len(g.sends)
            for i, rec in enumerate(g.sends):
                self_node = g.send_node[i]
                if track:
                    if self_node not in dirty:
                        continue
                    self.events_repropagated += 1
                # Candidate partners: delay >= d1 (sends sorted by delay).
                mask = g.suffix[bisect_left(g.delays, rec.delay)]
                for n in and_nodes(reach[self_node], mask):
                    if n == self_node:
                        continue
                    conclude(rec, g.event_of_send_node[n], RULE_QUEUE_1)

    # -- Queue rule 2 -------------------------------------------------------
    # send(t1,e1,d1) < sendAtFront(t2,e2) and sendAtFront(t2,e2) < begin(e1)
    #   =>  end(e2) < begin(e1).

    def _queue_rule_2(self, reach, conclude, dirty) -> None:
        test = self._test
        for g in self.queue_groups:
            if not g.fronts or not g.sends:
                continue
            if not self._fresh(dirty, g.premise_any):
                continue
            track = dirty is not None
            if track:
                self.group_dirty_events += len(g.fronts) * len(g.sends)
            for j, front in enumerate(g.fronts):
                f_node = g.front_node[j]
                # The pair's premise reads reach[send] (send < front)
                # and reach[front] (front < begin) — re-examine when
                # either side moved.
                front_dirty = track and f_node in dirty
                for i, send in enumerate(g.sends):
                    s_node = g.send_node[i]
                    if track:
                        if not front_dirty and s_node not in dirty:
                            continue
                        self.events_repropagated += 1
                    b_node = self._node(send.begin_index)  # type: ignore[arg-type]
                    if test(reach[s_node], f_node) and test(
                        reach[f_node], b_node
                    ):
                        conclude(front, send, RULE_QUEUE_2)

    # -- Queue rule 3 -------------------------------------------------------
    # sendAtFront(t1,e1) < send(t2,e2,d2)  =>  end(e1) < begin(e2).

    def _queue_rule_3(self, reach, conclude, dirty) -> None:
        and_nodes = self._and_nodes
        for g in self.queue_groups:
            if not g.fronts or not g.sends:
                continue
            if not self._fresh(dirty, g.premise_fronts):
                continue
            track = dirty is not None
            if track:
                self.group_dirty_events += len(g.fronts)
            for j, front in enumerate(g.fronts):
                if track:
                    if g.front_node[j] not in dirty:
                        continue
                    self.events_repropagated += 1
                for n in and_nodes(reach[g.front_node[j]], g.all_sends_mask):
                    conclude(front, g.event_of_send_node[n], RULE_QUEUE_3)

    # -- Queue rule 4 -------------------------------------------------------
    # sendAtFront(t1,e1) < sendAtFront(t2,e2) and
    # sendAtFront(t2,e2) < begin(e1)  =>  end(e2) < begin(e1).

    def _queue_rule_4(self, reach, conclude, dirty) -> None:
        test = self._test
        for g in self.queue_groups:
            if len(g.fronts) < 2:
                continue
            if not self._fresh(dirty, g.premise_fronts):
                continue
            track = dirty is not None
            if track:
                self.group_dirty_events += len(g.fronts) * (len(g.fronts) - 1)
            for i, f1 in enumerate(g.fronts):
                n1 = g.front_node[i]
                b1 = g.front_begin_node[i]
                # Premise reads reach[n1] and reach[n2]; skip pairs
                # where neither moved.
                n1_dirty = track and n1 in dirty
                for j, f2 in enumerate(g.fronts):
                    if f1 is f2:
                        continue
                    n2 = g.front_node[j]
                    if track:
                        if not n1_dirty and n2 not in dirty:
                            continue
                        self.events_repropagated += 1
                    if test(reach[n1], n2) and test(reach[n2], b1):
                        conclude(f2, f1, RULE_QUEUE_4)


def build_happens_before(
    trace: Trace,
    config: ModelConfig = CAFA_MODEL,
    incremental: bool = True,
    fast_queries: bool = True,
    memo_capacity: Optional[int] = None,
    dense_bits: bool = DEFAULT_DENSE_BITS,
) -> HappensBefore:
    """Build the happens-before relation of ``trace`` under ``config``.

    Returns a :class:`~repro.hb.graph.HappensBefore` answering ordering
    queries between arbitrary operation indices.  Raises
    :class:`~repro.hb.graph.HBCycleError` *here, at build time,* if the
    derived relation is cyclic (an inconsistent trace) — under every
    configuration, including the ablations that disable the derived
    rules.

    ``incremental=False`` selects the historical
    full-closure-recompute-per-round fixpoint; it produces the exact
    same relation and exists as a differential-testing target and
    performance baseline.  ``fast_queries=False`` likewise restores the
    historical per-query bit-scan in place of the prefix-mask +
    memoization query path — same verdicts, kept for differential
    testing and before/after measurement.

    ``memo_capacity`` bounds the query memoization tables (LRU):
    ``None`` uses :data:`~repro.hb.graph.DEFAULT_MEMO_CAPACITY`, ``0``
    keeps them unbounded, any positive value is the entry cap.

    ``dense_bits=True`` stores the closure as one big int per key node
    (the historical representation) instead of the default chunked
    sparse bitsets; same edges and verdicts, different memory and speed
    profile — see :mod:`repro.hb.bits`.
    """
    profile = BuildProfile()
    tick = time.perf_counter
    t0 = tick()
    with span("hb.scan", ops=len(trace)):
        state = _BuildState(trace=trace, config=config)
        _scan(state)
        _check_one_looper_per_queue(state)
    profile.scan_seconds = tick() - t0

    t0 = tick()
    with span("hb.base_edges"):
        graph, task_key_positions, task_key_nodes = _build_key_graph(
            state, incremental, dense_bits
        )
        _add_base_edges(state, graph)
    profile.base_seconds = tick() - t0

    # Build-time consistency check: close (and thereby cycle-check) the
    # base graph unconditionally, so a cyclic trace fails here rather
    # than from whichever ordered() query happens to run first.
    t0 = tick()
    with span("hb.closure"):
        graph.close()
    profile.closure_seconds += tick() - t0

    iterations = 0
    derived_edges = 0
    if not config.sequential_events and (config.atomicity or config.any_queue_rule):
        t0 = tick()
        with span("hb.fixpoint"):
            rules = _DerivedRules(state, graph)
            graph.drain_dirty()  # the initial closure marked every node dirty
            dirty: Optional[Set[int]] = None  # round one examines every group
            while True:
                iterations += 1
                new_edges = rules.apply(dirty)
                if not new_edges:
                    break
                added = 0
                for u, v, rule in new_edges:
                    if graph.add_edge(u, v, rule):
                        added += 1
                derived_edges += added
                profile.edges_per_round.append(added)
                # Only candidates whose reachability changed need another look.
                dirty = graph.drain_dirty() if incremental else None
        profile.fixpoint_seconds = tick() - t0
        profile.groups_examined = rules.groups_examined
        profile.groups_skipped = rules.groups_skipped
        profile.events_repropagated = rules.events_repropagated
        profile.group_dirty_events = rules.group_dirty_events
        # Legacy mode invalidated the closure on every added edge; make
        # sure the final state is closed and cycle-checked.  A no-op for
        # incremental builds, whose closure is maintained live.
        t0 = tick()
        with span("hb.closure"):
            graph.close()
        profile.closure_seconds += tick() - t0

    profile.rounds = iterations
    profile.closure_recomputations = graph.closure_recomputations
    profile.bits_propagated = graph.bits_propagated
    profile.dense_bits = graph.dense_bits
    profile.closure_bytes = graph.closure_bytes()
    chunk_stats = graph.chunk_stats()
    if chunk_stats is not None:
        profile.chunks_allocated = chunk_stats.chunks_allocated
        profile.chunks_shared = chunk_stats.chunks_shared
        profile.dense_chunk_ratio = chunk_stats.dense_chunk_ratio

    bounds: Dict[str, Tuple[int, int]] = {}
    for task, begin in state.task_begin.items():
        end = state.task_end.get(task)
        if end is None:
            ops = state.task_ops.get(_effective_task_of_id(state, task), [])
            end = ops[-1] if ops else begin
        bounds[task] = (begin, end)

    return HappensBefore(
        graph=graph,
        op_task=state.op_task,
        op_pos=state.op_pos,
        task_key_positions=task_key_positions,
        task_key_nodes=task_key_nodes,
        event_bounds=bounds,
        iterations=iterations,
        derived_edges=derived_edges,
        profile=profile,
        fast_queries=fast_queries,
        memo_capacity=memo_capacity,
    )


def _effective_task_of_id(state: _BuildState, task: str) -> str:
    if not state.config.sequential_events:
        return task
    info = state.trace.tasks.get(task)
    if info is not None and info.task_kind is TaskKind.EVENT and info.looper:
        return info.looper
    return task
