"""The happens-before graph and its reachability index.

Section 4.2 explains why CAFA runs offline: the atomicity and
event-queue rules depend on *future* operations and on reachability
between *past* operations, so the happens-before relation is computed
as a fixpoint over a graph rather than with vector clocks.

The graph here is a *key-node* graph.  Operations that can source or
sink a cross-task edge (begin/end, fork/join, wait/notify, send,
sendAtFront, register/perform, the IPC records — see
:data:`repro.trace.SYNC_KINDS`) become graph nodes; all other
operations (memory accesses, pointer records, branches) are located
purely by their position inside their task's program order.  Because a
task's operations form a chain, the reachable set of an arbitrary
operation equals the reachable set of the first key node at or after it
in the same task, so ordering queries between arbitrary operations
reduce to key-node reachability plus two index comparisons.

Reachability over key nodes is kept as one Python big-int bitset per
node.  The *first* closure is computed in reverse topological order —
O(K^2/64) — and from then on the index is maintained *incrementally*:
``add_edge(u, v)`` on a closed graph ORs ``reach[v]`` into ``reach[u]``
and propagates the gained bits backward through predecessors with a
worklist, stopping as soon as a bitset stops changing.  The builder's
fixpoint therefore pays one full closure total instead of one per
round, which is what makes it scale (Section 4.2 reports offline
analysis times of minutes to hours on real traces; see
``docs/model.md`` for the algorithm's invariants).

Two counters make the closure work observable:
``closure_recomputations`` (full from-scratch closure builds) and
``bits_propagated`` (reachability bits newly set by incremental
propagation).  ``benchmarks/test_analysis_scaling.py`` asserts the
former stays constant across the fixpoint.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class HBCycleError(Exception):
    """The derived happens-before relation contains a cycle.

    A cycle means the trace is inconsistent with the model (e.g. a
    hand-written trace violates the looper atomicity guarantee).  The
    offending cycle is reported as a list of operation indices.
    """

    def __init__(self, cycle: Sequence[int]):
        self.cycle = list(cycle)
        super().__init__(f"happens-before cycle through ops {self.cycle}")


class HBInvariantError(RuntimeError):
    """An internal consistency invariant of the reachability index broke.

    Raised instead of ``assert`` so the checks survive ``python -O``
    and fail with a descriptive message rather than a downstream
    ``TypeError``.  Seeing this exception always indicates a bug in
    :mod:`repro.hb`, never a property of the analyzed trace.
    """


class KeyGraph:
    """A DAG over key operations with bitset transitive closure.

    Nodes are identified by dense integer ids; each node corresponds to
    one trace operation index.  Edges carry a provenance label (the
    name of the rule that created them) for explanation output.

    With ``incremental=True`` (the default) the transitive closure is
    maintained across ``add_node``/``add_edge`` once it has been
    computed; ``incremental=False`` restores the historical behaviour
    of invalidating and rebuilding the whole closure, kept only as a
    differential-testing target.
    """

    def __init__(self, incremental: bool = True) -> None:
        self._op_of_node: List[int] = []
        self._node_of_op: Dict[int, int] = {}
        self._succ: List[List[int]] = []
        self._pred: List[List[int]] = []
        self._edge_rule: Dict[Tuple[int, int], str] = {}
        self._reach: Optional[List[int]] = None
        self._incremental = incremental
        #: nodes whose reach set changed since the last :meth:`drain_dirty`
        self._dirty = 0
        #: full from-scratch transitive-closure builds performed
        self.closure_recomputations = 0
        #: reachability bits newly set by incremental edge propagation
        self.bits_propagated = 0

    # -- construction -----------------------------------------------------

    def add_node(self, op_index: int) -> int:
        """Register ``op_index`` as a key node; returns its node id."""
        existing = self._node_of_op.get(op_index)
        if existing is not None:
            return existing
        node = len(self._op_of_node)
        self._op_of_node.append(op_index)
        self._node_of_op[op_index] = node
        self._succ.append([])
        self._pred.append([])
        if self._incremental and self._reach is not None:
            # A fresh node has no edges yet: it reaches only itself.
            self._reach.append(1 << node)
            self._dirty |= 1 << node
        else:
            self._reach = None
        return node

    def node_of(self, op_index: int) -> int:
        """Node id for a key operation index (KeyError if not a key)."""
        return self._node_of_op[op_index]

    def op_of(self, node: int) -> int:
        """Operation index of a node id."""
        return self._op_of_node[node]

    def has_node(self, op_index: int) -> bool:
        return op_index in self._node_of_op

    def add_edge(self, u: int, v: int, rule: str) -> bool:
        """Add edge ``u -> v`` between node ids; returns False if present.

        On a graph whose closure is already computed (incremental mode)
        the reachability index is updated in place, and an edge that
        closes a cycle raises :class:`HBCycleError` immediately; on a
        never-closed graph cycles are detected by the next closure
        computation, as before.
        """
        if (u, v) in self._edge_rule:
            return False
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._edge_rule[(u, v)] = rule
        if self._incremental and self._reach is not None:
            self._propagate(u, v)
        else:
            self._reach = None
        return True

    def edge_rule(self, u: int, v: int) -> Optional[str]:
        return self._edge_rule.get((u, v))

    @property
    def node_count(self) -> int:
        return len(self._op_of_node)

    @property
    def edge_count(self) -> int:
        return len(self._edge_rule)

    def edges(self) -> Iterable[Tuple[int, int, str]]:
        """All edges as ``(u, v, rule)`` triples (node ids)."""
        for (u, v), rule in self._edge_rule.items():
            yield u, v, rule

    # -- closure -----------------------------------------------------------

    def _propagate(self, u: int, v: int) -> None:
        """Fold the new edge ``u -> v`` into the live closure.

        OR ``reach[v]`` into ``reach[u]``, then push the gained bits
        backward through predecessors with a worklist; a node is
        revisited only while its bitset actually changes, so already-
        implied edges cost one big-int AND and nothing else.
        """
        reach = self._reach
        if reach is None:  # pragma: no cover - guarded by add_edge/add_node
            raise HBInvariantError("_propagate called without a closure")
        if (reach[v] >> u) & 1:
            # v already reaches u, so u -> v closes a cycle.
            raise HBCycleError(self._find_cycle())
        gained = reach[v] & ~reach[u]
        if not gained:
            return
        reach[u] |= gained
        self.bits_propagated += gained.bit_count()
        self._dirty |= 1 << u
        stack = [u]
        while stack:
            x = stack.pop()
            rx = reach[x]
            for p in self._pred[x]:
                gained = rx & ~reach[p]
                if gained:
                    reach[p] |= gained
                    self.bits_propagated += gained.bit_count()
                    self._dirty |= 1 << p
                    stack.append(p)

    def _toposort(self) -> List[int]:
        n = self.node_count
        indegree = [len(self._pred[v]) for v in range(n)]
        queue = deque(v for v in range(n) if indegree[v] == 0)
        order: List[int] = []
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in self._succ[v]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    queue.append(w)
        if len(order) != n:
            raise HBCycleError(self._find_cycle())
        return order

    def _find_cycle(self) -> List[int]:
        """Locate one cycle for diagnostics (iterative DFS)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = [WHITE] * self.node_count
        parent: Dict[int, int] = {}
        for root in range(self.node_count):
            if color[root] != WHITE:
                continue
            stack = [(root, iter(self._succ[root]))]
            color[root] = GRAY
            while stack:
                v, it = stack[-1]
                advanced = False
                for w in it:
                    if color[w] == WHITE:
                        color[w] = GRAY
                        parent[w] = v
                        stack.append((w, iter(self._succ[w])))
                        advanced = True
                        break
                    if color[w] == GRAY:
                        cycle = [w, v]
                        cur = v
                        while cur != w and cur in parent:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return [self._op_of_node[x] for x in cycle]
                if not advanced:
                    color[v] = BLACK
                    stack.pop()
        return []

    def _closure(self) -> List[int]:
        if self._reach is not None:
            return self._reach
        order = self._toposort()
        reach = [0] * self.node_count
        for v in reversed(order):
            mask = 1 << v
            for w in self._succ[v]:
                mask |= reach[w]
            reach[v] = mask
        self._reach = reach
        self.closure_recomputations += 1
        self._dirty = (1 << self.node_count) - 1
        return reach

    def close(self) -> None:
        """Force the transitive closure (and with it the cycle check).

        A no-op when the closure is already current; raises
        :class:`HBCycleError` if the graph is cyclic.
        """
        if self.node_count:
            self._closure()

    def reach_vector(self) -> List[int]:
        """The live list of per-node reach bitsets, indexed by node id.

        This is the graph's own closure storage, not a copy: entries
        change under ``add_edge``/``add_node``.  Callers must treat it
        as read-only.
        """
        return self._closure()

    def drain_dirty(self) -> int:
        """Bitmask of nodes whose reach set changed since the last drain.

        A full closure recomputation marks every node dirty.
        """
        dirty = self._dirty
        self._dirty = 0
        return dirty

    def reaches(self, u: int, v: int) -> bool:
        """Reflexive-transitive reachability between node ids."""
        return bool((self._closure()[u] >> v) & 1)

    def reach_set(self, u: int) -> int:
        """The reachability bitset of node ``u`` (includes ``u``)."""
        return self._closure()[u]

    def find_path(self, u: int, v: int) -> Optional[List[int]]:
        """A shortest edge path ``u -> ... -> v`` (node ids), or None."""
        if u == v:
            return [u]
        prev: Dict[int, int] = {u: u}
        queue = deque([u])
        while queue:
            x = queue.popleft()
            for w in self._succ[x]:
                if w in prev:
                    continue
                prev[w] = x
                if w == v:
                    path = [v]
                    while path[-1] != u:
                        path.append(prev[path[-1]])
                    path.reverse()
                    return path
                queue.append(w)
        return None


class HappensBefore:
    """Queryable happens-before relation over a trace.

    Built by :func:`repro.hb.builder.build_happens_before`.  Queries
    accept arbitrary operation indices of the underlying trace.
    """

    def __init__(
        self,
        graph: KeyGraph,
        op_task: Sequence[str],
        op_pos: Sequence[int],
        task_key_positions: Dict[str, List[int]],
        task_key_nodes: Dict[str, List[int]],
        event_bounds: Dict[str, Tuple[int, int]],
        iterations: int,
        derived_edges: int,
        profile: Optional[object] = None,
    ) -> None:
        self.graph = graph
        self._op_task = op_task
        self._op_pos = op_pos
        self._task_key_positions = task_key_positions
        self._task_key_nodes = task_key_nodes
        self._event_bounds = event_bounds
        #: number of fixpoint rounds the builder needed
        self.iterations = iterations
        #: number of edges contributed by the derived (fixpoint) rules
        self.derived_edges = derived_edges
        #: per-phase :class:`repro.hb.builder.BuildProfile`, when built
        #: by :func:`repro.hb.builder.build_happens_before`
        self.profile = profile

    # -- core queries -------------------------------------------------------

    def ordered(self, a: int, b: int) -> bool:
        """Strict happens-before between operation indices: ``a < b``."""
        ta, tb = self._op_task[a], self._op_task[b]
        pa, pb = self._op_pos[a], self._op_pos[b]
        if ta == tb:
            return pa < pb
        ka = self._first_key_at_or_after(ta, pa)
        if ka is None:
            return False
        reach = self.graph.reach_set(ka)
        positions = self._task_key_positions.get(tb, ())
        nodes = self._task_key_nodes.get(tb, ())
        hi = bisect_right(positions, pb)
        for i in range(hi):
            if (reach >> nodes[i]) & 1:
                return True
        return False

    def concurrent(self, a: int, b: int) -> bool:
        """True when neither ``a < b`` nor ``b < a``."""
        return not self.ordered(a, b) and not self.ordered(b, a)

    def event_ordered(self, e1: str, e2: str) -> bool:
        """``end(e1) < begin(e2)`` — the paper's shorthand "e1 happens-
        before e2" for whole events/tasks."""
        end1 = self._event_bounds[e1][1]
        begin2 = self._event_bounds[e2][0]
        return self.ordered(end1, begin2)

    def task_bounds(self, task: str) -> Tuple[int, int]:
        """(begin op index, end op index) of a task."""
        return self._event_bounds[task]

    def _first_key_at_or_after(self, task: str, pos: int) -> Optional[int]:
        positions = self._task_key_positions.get(task)
        if not positions:
            return None
        i = bisect_left(positions, pos)
        if i == len(positions):
            return None
        return self._task_key_nodes[task][i]

    # -- explanations ---------------------------------------------------

    def explain(self, a: int, b: int) -> Optional[List[Tuple[int, str]]]:
        """Why does ``a < b`` hold?

        Returns a list of ``(op_index, rule)`` steps where ``rule`` is
        the label of the edge *into* that operation ("program-order"
        for intra-task hops), or ``None`` when ``a < b`` does not hold.
        """
        if not self.ordered(a, b):
            return None
        ta, tb = self._op_task[a], self._op_task[b]
        if ta == tb:
            return [(a, "start"), (b, "program-order")]
        ka = self._first_key_at_or_after(ta, self._op_pos[a])
        if ka is None:
            raise HBInvariantError(
                f"ordered({a}, {b}) holds but op {a} has no key node at or "
                f"after position {self._op_pos[a]} in task {ta!r}; the "
                "per-task key index disagrees with the reachability index"
            )
        reach = self.graph.reach_set(ka)
        positions = self._task_key_positions[tb]
        nodes = self._task_key_nodes[tb]
        hi = bisect_right(positions, self._op_pos[b])
        target = None
        for i in range(hi):
            if (reach >> nodes[i]) & 1:
                target = nodes[i]
                break
        if target is None:
            raise HBInvariantError(
                f"ordered({a}, {b}) holds but no key node of task {tb!r} at "
                f"or before position {self._op_pos[b]} is reachable from "
                f"node {ka}; the closure bitsets are inconsistent"
            )
        path = self.graph.find_path(ka, target)
        if path is None:
            raise HBInvariantError(
                f"node {target} is in the reach set of node {ka} but no "
                "edge path connects them; the closure bitsets disagree "
                "with the edge lists"
            )
        steps: List[Tuple[int, str]] = [(a, "start")]
        prev = None
        for node in path:
            op = self.graph.op_of(node)
            if prev is None:
                rule = "program-order" if op != a else "start"
                if op != a:
                    steps.append((op, rule))
            else:
                steps.append((op, self.graph.edge_rule(prev, node) or "?"))
            prev = node
        if steps[-1][0] != b:
            steps.append((b, "program-order"))
        return steps
