"""The happens-before graph and its reachability index.

Section 4.2 explains why CAFA runs offline: the atomicity and
event-queue rules depend on *future* operations and on reachability
between *past* operations, so the happens-before relation is computed
as a fixpoint over a graph rather than with vector clocks.

The graph here is a *key-node* graph.  Operations that can source or
sink a cross-task edge (begin/end, fork/join, wait/notify, send,
sendAtFront, register/perform, the IPC records — see
:data:`repro.trace.SYNC_KINDS`) become graph nodes; all other
operations (memory accesses, pointer records, branches) are located
purely by their position inside their task's program order.  Because a
task's operations form a chain, the reachable set of an arbitrary
operation equals the reachable set of the first key node at or after it
in the same task, so ordering queries between arbitrary operations
reduce to key-node reachability plus two index comparisons.

Reachability over key nodes is kept as one bitset per node, in one of
two interchangeable representations.  The default is the chunked
sparse bitset of :mod:`repro.hb.bits` — fixed-width word chunks keyed
by block index, with chunk-level copy-on-write sharing between a node
and its successors, so the closure's memory tracks how much each node
actually reaches instead of the key-node count squared.
``dense_bits=True`` restores the historical one-big-int-per-node
storage, kept as a differential-testing target and because big-int ORs
still win on small, saturated graphs.  Either way the *first* closure
is computed in reverse topological order and from then on the index is
maintained *incrementally*: ``add_edge(u, v)`` on a closed graph ORs
``reach[v]`` into ``reach[u]`` and propagates the gained bits backward
through predecessors with a worklist, stopping as soon as a bitset
stops changing.  The builder's fixpoint therefore pays one full
closure total instead of one per round, which is what makes it scale
(Section 4.2 reports offline analysis times of minutes to hours on
real traces; see ``docs/model.md`` for the algorithm's invariants).

Two counters make the closure work observable:
``closure_recomputations`` (full from-scratch closure builds) and
``bits_propagated`` (reachability bits newly set by incremental
propagation — identical across both representations by construction).
``benchmarks/test_analysis_scaling.py`` asserts the former stays
constant across the fixpoint, and ``benchmarks/test_closure_engine.py``
pins the sparse representation's memory ratio.

Querying is O(1) big-int operations per lookup.  Historically
``ordered(a, b)`` scanned the target task's key-node prefix one
``reach >> node & 1`` test at a time — each test shifts a K-bit
integer, so one query cost O(prefix · K/64) words.  The fast path
(``fast_queries=True``, the default) instead precomputes, per task,
*prefix bitmasks* over that task's key nodes: ``prefix[t][i]`` ORs the
node bits of the first ``i`` key nodes, so the scan collapses to a
single ``reach & prefix[t][hi]`` AND.  Because an arbitrary operation
pair ``(a, b)`` reduces to the triple ``(ka, tb, hi)`` — first key
node at-or-after ``a``, ``b``'s task, ``b``'s key-prefix length — the
result is memoized at that granularity, which makes the detector's
repeated event-pair queries dictionary lookups.  A
:class:`QueryProfile` (query counts, memo hits, mask memory) makes the
query work observable, and ``fast_queries=False`` keeps the historical
scan alive as a differential-testing target, mirroring the builder's
``incremental=False`` escape hatch.
"""

from __future__ import annotations

import sys
from bisect import bisect_left, bisect_right
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .bits import ChunkStats, SparseBits, vector_stats

#: a closure row: big int (``dense_bits=True``) or chunked sparse bitset
ReachBits = Union[int, SparseBits]

#: default LRU bound of the two query memo tables (entries each).  At
#: roughly 100 bytes per entry this caps memo memory near 100 MB where
#: the historical unbounded dicts grew with the number of *distinct*
#: queries — unbounded in trace length for the batched detectors.
#: ``memo_capacity=0`` restores the unbounded behaviour.
DEFAULT_MEMO_CAPACITY = 1 << 20


class HBCycleError(Exception):
    """The derived happens-before relation contains a cycle.

    A cycle means the trace is inconsistent with the model (e.g. a
    hand-written trace violates the looper atomicity guarantee).  The
    offending cycle is reported as a list of operation indices.
    """

    def __init__(self, cycle: Sequence[int]):
        self.cycle = list(cycle)
        super().__init__(f"happens-before cycle through ops {self.cycle}")


class HBInvariantError(RuntimeError):
    """An internal consistency invariant of the reachability index broke.

    Raised instead of ``assert`` so the checks survive ``python -O``
    and fail with a descriptive message rather than a downstream
    ``TypeError``.  Seeing this exception always indicates a bug in
    :mod:`repro.hb`, never a property of the analyzed trace.
    """


@dataclass
class QueryProfile:
    """Work counters of the happens-before *query* side.

    Attached to every :class:`HappensBefore` and surfaced by
    ``repro.hb.stats`` / ``python -m repro stats``, the counters make
    the cost of ordering queries — and the effect of the prefix-mask +
    memoization fast path — observable without a profiler, the query
    counterpart of the builder's ``BuildProfile``.
    """

    #: whether the prefix-mask + memo path is active
    fast: bool = True
    #: total ``ordered()`` calls (including via ``concurrent``)
    queries: int = 0
    #: queries answered by a same-task position comparison
    same_task: int = 0
    #: cross-task lookups answered from a memo — the directional
    #: ``(ka, tb, hi)`` memo in :meth:`HappensBefore.ordered`, the
    #: pair-signature memo in :meth:`HappensBefore.concurrent_pairs`
    memo_hits: int = 0
    #: cross-task lookups that had to touch the reachability bitsets
    memo_misses: int = 0
    #: pairs answered through :meth:`HappensBefore.concurrent_pairs`
    batched_pairs: int = 0
    #: tasks whose prefix masks have been materialized
    mask_tasks: int = 0
    #: memory held by the materialized prefix masks
    mask_bytes: int = 0
    #: memo entries dropped by the LRU bound (0 when unbounded)
    memo_evictions: int = 0
    #: the active LRU bound per memo table (None = unbounded)
    memo_capacity: Optional[int] = None

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of cross-task queries served from the memo."""
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0


@dataclass
class QueryBudget:
    """A bounded allowance of batched concurrency queries.

    The sampled detector (:mod:`repro.detect.sampling`) answers at most
    ``limit`` pairs per trace; passing a budget to
    :meth:`HappensBefore.concurrent_pairs` truncates the batch at the
    allowance and charges one unit per *answered* pair, so the returned
    verdict list may be shorter than the input iterable.  ``spent``
    accumulates across batches — one budget object can meter several
    calls (e.g. one per epoch of a streamed session).
    """

    limit: int
    spent: int = 0

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit

    def take(self, pairs: Iterable[Tuple[int, int]]):
        """Yield pairs while allowance remains, charging one per pair."""
        for pair in pairs:
            if self.spent >= self.limit:
                break
            self.spent += 1
            yield pair


class KeyGraph:
    """A DAG over key operations with bitset transitive closure.

    Nodes are identified by dense integer ids; each node corresponds to
    one trace operation index.  Edges carry a provenance label (the
    name of the rule that created them) for explanation output.

    With ``incremental=True`` (the default) the transitive closure is
    maintained across ``add_node``/``add_edge`` once it has been
    computed; ``incremental=False`` restores the historical behaviour
    of invalidating and rebuilding the whole closure, kept only as a
    differential-testing target.

    ``dense_bits`` selects the closure representation: ``False`` (the
    default) stores one chunked :class:`~repro.hb.bits.SparseBits` per
    node, ``True`` the historical one-big-int-per-node storage.  The
    two are verdict-identical by construction and differentially
    tested; only memory and per-operation cost differ.
    """

    def __init__(
        self, incremental: bool = True, dense_bits: bool = False
    ) -> None:
        self._op_of_node: List[int] = []
        self._node_of_op: Dict[int, int] = {}
        self._succ: List[List[int]] = []
        self._pred: List[List[int]] = []
        self._edge_rule: Dict[Tuple[int, int], str] = {}
        self._reach: Optional[List[ReachBits]] = None
        self._incremental = incremental
        self._dense = dense_bits
        #: nodes whose reach set changed since the last :meth:`drain_dirty`
        self._dirty: Set[int] = set()
        #: full from-scratch transitive-closure builds performed
        self.closure_recomputations = 0
        #: reachability bits newly set by incremental edge propagation
        self.bits_propagated = 0

    @property
    def dense_bits(self) -> bool:
        """True when the closure uses the legacy big-int representation."""
        return self._dense

    # -- construction -----------------------------------------------------

    def add_node(self, op_index: int) -> int:
        """Register ``op_index`` as a key node; returns its node id."""
        existing = self._node_of_op.get(op_index)
        if existing is not None:
            return existing
        node = len(self._op_of_node)
        self._op_of_node.append(op_index)
        self._node_of_op[op_index] = node
        self._succ.append([])
        self._pred.append([])
        if self._incremental and self._reach is not None:
            # A fresh node has no edges yet: it reaches only itself.
            if self._dense:
                self._reach.append(1 << node)
            else:
                self._reach.append(SparseBits.single(node))
            self._dirty.add(node)
        else:
            self._reach = None
        return node

    def add_chain(self, op_indices: Sequence[int], rule: str) -> List[int]:
        """Allocate nodes for ``op_indices`` in one uninterrupted run
        and chain consecutive ones with ``rule`` edges.

        This is how the builder allocates each task's key nodes, and it
        *guarantees* the contiguous-id invariant the sparse query
        path's range probe relies on: the returned ids are always
        ``[base, base + len)``.  Registering an op that already has a
        node would break the run, so it raises
        :class:`HBInvariantError` instead of silently deduplicating.
        """
        nodes: List[int] = []
        for op_index in op_indices:
            node = self.add_node(op_index)
            if nodes:
                if node != nodes[-1] + 1:
                    raise HBInvariantError(
                        f"add_chain got non-contiguous node id {node} after "
                        f"{nodes[-1]} (op {op_index} already registered?)"
                    )
                self.add_edge(nodes[-1], node, rule)
            nodes.append(node)
        return nodes

    def node_of(self, op_index: int) -> int:
        """Node id for a key operation index (KeyError if not a key)."""
        return self._node_of_op[op_index]

    def op_of(self, node: int) -> int:
        """Operation index of a node id."""
        return self._op_of_node[node]

    def has_node(self, op_index: int) -> bool:
        return op_index in self._node_of_op

    def add_edge(self, u: int, v: int, rule: str) -> bool:
        """Add edge ``u -> v`` between node ids; returns False if present.

        On a graph whose closure is already computed (incremental mode)
        the reachability index is updated in place, and an edge that
        closes a cycle raises :class:`HBCycleError` immediately; on a
        never-closed graph cycles are detected by the next closure
        computation, as before.
        """
        if (u, v) in self._edge_rule:
            return False
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._edge_rule[(u, v)] = rule
        if self._incremental and self._reach is not None:
            self._propagate(u, v)
        else:
            self._reach = None
        return True

    def edge_rule(self, u: int, v: int) -> Optional[str]:
        return self._edge_rule.get((u, v))

    @property
    def node_count(self) -> int:
        return len(self._op_of_node)

    @property
    def edge_count(self) -> int:
        return len(self._edge_rule)

    def edges(self) -> Iterable[Tuple[int, int, str]]:
        """All edges as ``(u, v, rule)`` triples (node ids)."""
        for (u, v), rule in self._edge_rule.items():
            yield u, v, rule

    # -- closure -----------------------------------------------------------

    def _propagate(self, u: int, v: int) -> None:
        """Fold the new edge ``u -> v`` into the live closure.

        OR ``reach[v]`` into ``reach[u]``, then push the gained bits
        backward through predecessors with a worklist; a node is
        revisited only while its bitset actually changes, so already-
        implied edges cost one big-int AND and nothing else.
        """
        reach = self._reach
        if reach is None:  # pragma: no cover - guarded by add_edge/add_node
            raise HBInvariantError("_propagate called without a closure")
        if self._dense:
            if (reach[v] >> u) & 1:  # type: ignore[operator]
                # v already reaches u, so u -> v closes a cycle.
                raise HBCycleError(self._find_cycle())
            gained = reach[v] & ~reach[u]  # type: ignore[operator]
            if not gained:
                return
            reach[u] |= gained  # type: ignore[operator]
            self.bits_propagated += gained.bit_count()
            self._dirty.add(u)
            stack = [u]
            while stack:
                x = stack.pop()
                rx = reach[x]
                for p in self._pred[x]:
                    gained = rx & ~reach[p]  # type: ignore[operator]
                    if gained:
                        reach[p] |= gained  # type: ignore[operator]
                        self.bits_propagated += gained.bit_count()
                        self._dirty.add(p)
                        stack.append(p)
            return
        if reach[v].test(u):  # type: ignore[union-attr]
            # v already reaches u, so u -> v closes a cycle.
            raise HBCycleError(self._find_cycle())
        count = reach[u].ior(reach[v])  # type: ignore[union-attr, arg-type]
        if not count:
            return
        self.bits_propagated += count
        self._dirty.add(u)
        stack = [u]
        while stack:
            x = stack.pop()
            rx = reach[x]
            for p in self._pred[x]:
                count = reach[p].ior(rx)  # type: ignore[union-attr, arg-type]
                if count:
                    self.bits_propagated += count
                    self._dirty.add(p)
                    stack.append(p)

    def _toposort(self) -> List[int]:
        n = self.node_count
        indegree = [len(self._pred[v]) for v in range(n)]
        queue = deque(v for v in range(n) if indegree[v] == 0)
        order: List[int] = []
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in self._succ[v]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    queue.append(w)
        if len(order) != n:
            raise HBCycleError(self._find_cycle())
        return order

    def _find_cycle(self) -> List[int]:
        """Locate one cycle for diagnostics (iterative DFS)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = [WHITE] * self.node_count
        parent: Dict[int, int] = {}
        for root in range(self.node_count):
            if color[root] != WHITE:
                continue
            stack = [(root, iter(self._succ[root]))]
            color[root] = GRAY
            while stack:
                v, it = stack[-1]
                advanced = False
                for w in it:
                    if color[w] == WHITE:
                        color[w] = GRAY
                        parent[w] = v
                        stack.append((w, iter(self._succ[w])))
                        advanced = True
                        break
                    if color[w] == GRAY:
                        cycle = [w, v]
                        cur = v
                        while cur != w and cur in parent:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return [self._op_of_node[x] for x in cycle]
                if not advanced:
                    color[v] = BLACK
                    stack.pop()
        return []

    def _closure(self) -> List[ReachBits]:
        if self._reach is not None:
            return self._reach
        order = self._toposort()
        n = self.node_count
        reach: List[ReachBits]
        if self._dense:
            reach = [0] * n
            for v in reversed(order):
                mask = 1 << v
                for w in self._succ[v]:
                    mask |= reach[w]  # type: ignore[operator]
                reach[v] = mask
        else:
            # Reverse-topological pass, seeding each node from its
            # *widest* successor via a shallow copy: the successor's
            # chunks are adopted by reference, so along the program-
            # order chains that dominate real traces a node's blocks
            # alias its successor's until a mutation diverges one.
            reach = [SparseBits()] * n
            for v in reversed(order):
                succ = self._succ[v]
                if succ:
                    base = succ[0]
                    if len(succ) > 1:
                        for w in succ[1:]:
                            if len(reach[w].chunks) > len(reach[base].chunks):  # type: ignore[union-attr]
                                base = w
                    bits = reach[base].copy()  # type: ignore[union-attr]
                    for w in succ:
                        if w != base:
                            bits.ior(reach[w])  # type: ignore[arg-type]
                else:
                    bits = SparseBits()
                bits.set(v)
                reach[v] = bits
        self._reach = reach
        self.closure_recomputations += 1
        self._dirty = set(range(n))
        return reach

    def close(self) -> None:
        """Force the transitive closure (and with it the cycle check).

        A no-op when the closure is already current; raises
        :class:`HBCycleError` if the graph is cyclic.
        """
        if self.node_count:
            self._closure()

    def reach_vector(self) -> List[ReachBits]:
        """The live list of per-node reach bitsets, indexed by node id.

        This is the graph's own closure storage, not a copy: entries
        change under ``add_edge``/``add_node``.  Callers must treat it
        as read-only.  Entries are big ints under ``dense_bits=True``
        and :class:`~repro.hb.bits.SparseBits` otherwise.
        """
        return self._closure()

    def drain_dirty(self) -> Set[int]:
        """Node ids whose reach set changed since the last drain.

        A full closure recomputation marks every node dirty.  The
        per-event granularity (one id per changed key node, not one
        flag per looper/queue group) is what lets the builder's
        fixpoint re-examine only the rule members whose premise
        actually moved.
        """
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def reaches(self, u: int, v: int) -> bool:
        """Reflexive-transitive reachability between node ids."""
        row = self._closure()[u]
        if self._dense:
            return bool((row >> v) & 1)  # type: ignore[operator]
        return row.test(v)  # type: ignore[union-attr]

    def reach_set(self, u: int) -> ReachBits:
        """The reachability bitset of node ``u`` (includes ``u``).

        A big int under ``dense_bits=True``, a
        :class:`~repro.hb.bits.SparseBits` otherwise; both compare
        equal to the same big-int value and expose ``bit_count()``.
        """
        return self._closure()[u]

    def closure_bytes(self) -> int:
        """Memory retained by the closure's reach vector, in bytes.

        Sparse storage is measured sharing-aware (a chunk referenced
        from several block tables is counted once); dense storage is
        the sum of the big ints' sizes.  Returns 0 when no closure has
        been computed yet.
        """
        if self._reach is None:
            return 0
        if self._dense:
            return sum(sys.getsizeof(r) for r in self._reach)
        return vector_stats(self._reach).bytes  # type: ignore[arg-type]

    def chunk_stats(self) -> Optional[ChunkStats]:
        """Chunk-level storage accounting of the sparse closure.

        None when the closure is dense or not yet computed.
        """
        if self._dense or self._reach is None:
            return None
        return vector_stats(self._reach)  # type: ignore[arg-type]

    def find_path(self, u: int, v: int) -> Optional[List[int]]:
        """A shortest edge path ``u -> ... -> v`` (node ids), or None."""
        if u == v:
            return [u]
        prev: Dict[int, int] = {u: u}
        queue = deque([u])
        while queue:
            x = queue.popleft()
            for w in self._succ[x]:
                if w in prev:
                    continue
                prev[w] = x
                if w == v:
                    path = [v]
                    while path[-1] != u:
                        path.append(prev[path[-1]])
                    path.reverse()
                    return path
                queue.append(w)
        return None


class HappensBefore:
    """Queryable happens-before relation over a trace.

    Built by :func:`repro.hb.builder.build_happens_before`.  Queries
    accept arbitrary operation indices of the underlying trace.
    """

    def __init__(
        self,
        graph: KeyGraph,
        op_task: Sequence[str],
        op_pos: Sequence[int],
        task_key_positions: Dict[str, List[int]],
        task_key_nodes: Dict[str, List[int]],
        event_bounds: Dict[str, Tuple[int, int]],
        iterations: int,
        derived_edges: int,
        profile: Optional[object] = None,
        fast_queries: bool = True,
        memo_capacity: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self._op_task = op_task
        self._op_pos = op_pos
        self._task_key_positions = task_key_positions
        self._task_key_nodes = task_key_nodes
        self._event_bounds = event_bounds
        #: number of fixpoint rounds the builder needed
        self.iterations = iterations
        #: number of edges contributed by the derived (fixpoint) rules
        self.derived_edges = derived_edges
        #: per-phase :class:`repro.hb.builder.BuildProfile`, when built
        #: by :func:`repro.hb.builder.build_happens_before`
        self.profile = profile
        #: query-side work counters (see :class:`QueryProfile`)
        self.query_profile = QueryProfile(fast=fast_queries)
        self._fast = fast_queries
        #: task -> prefix masks over its key nodes; masks[i] ORs the
        #: node bits of the first i key nodes (built lazily per task,
        #: dense backend only — the sparse backend range-probes)
        self._prefix_masks: Dict[str, List[int]] = {}
        #: sparse backend: task -> base node id of its (contiguous)
        #: key-node id range (built lazily per task)
        self._task_range: Dict[str, int] = {}
        # Memo tables: bounded LRU (OrderedDict) by default, plain dicts
        # when memo_capacity=0 keeps them unbounded (the historical
        # behaviour, and marginally faster when memory is no concern).
        if memo_capacity is None:
            memo_capacity = DEFAULT_MEMO_CAPACITY
        if memo_capacity < 0:
            raise ValueError(f"memo_capacity must be >= 0, got {memo_capacity}")
        #: LRU entry bound per memo table; 0 means unbounded
        self._memo_capacity = memo_capacity
        self.query_profile.memo_capacity = memo_capacity or None
        #: (ka, tb, hi) -> ordered verdict
        self._memo: Dict[Tuple[int, str, int], bool] = (
            OrderedDict() if memo_capacity else {}
        )
        #: per-op source key node (id, or -1) / key-prefix length,
        #: indexed by operation index (built lazily, one linear pass)
        self._op_key: Optional[List[int]] = None
        self._op_prefix_len: Optional[List[int]] = None
        #: per-op interned query signature: ops sharing
        #: (op_key, task, op_prefix_len) share a signature id
        self._op_sig: Optional[List[int]] = None
        #: signature id -> (op_key, task, op_prefix_len)
        self._sig_parts: List[Tuple[int, str, int]] = []
        #: (sig_a * len(sig_parts) + sig_b) -> concurrent verdict
        self._pair_memo: Dict[int, bool] = (
            OrderedDict() if memo_capacity else {}
        )

    # -- core queries -------------------------------------------------------

    def ordered(self, a: int, b: int) -> bool:
        """Strict happens-before between operation indices: ``a < b``."""
        prof = self.query_profile
        prof.queries += 1
        ta, tb = self._op_task[a], self._op_task[b]
        if ta == tb:
            prof.same_task += 1
            return self._op_pos[a] < self._op_pos[b]
        if not self._fast:
            ka = self._first_key_at_or_after(ta, self._op_pos[a])
            if ka is None:
                return False
            positions = self._task_key_positions.get(tb)
            if not positions:
                return False
            hi = bisect_right(positions, self._op_pos[b])
            if hi == 0:
                return False
            reach = self.graph.reach_set(ka)
            return self._first_reachable_key(reach, tb, hi) is not None
        op_key, op_prefix_len = self._op_index()
        ka = op_key[a]
        if ka < 0:
            return False
        hi = op_prefix_len[b]
        if hi == 0:
            return False
        key = (ka, tb, hi)
        memo = self._memo
        cached = memo.get(key)
        if cached is not None:
            prof.memo_hits += 1
            if self._memo_capacity:
                memo.move_to_end(key)  # type: ignore[attr-defined]
            return cached
        prof.memo_misses += 1
        result = self._hit(ka, tb, hi)
        memo[key] = result
        if self._memo_capacity and len(memo) > self._memo_capacity:
            memo.popitem(last=False)  # type: ignore[call-arg]
            prof.memo_evictions += 1
        return result

    def concurrent(self, a: int, b: int) -> bool:
        """True when neither ``a < b`` nor ``b < a``."""
        return not self.ordered(a, b) and not self.ordered(b, a)

    def concurrent_pairs(
        self,
        pairs: Iterable[Tuple[int, int]],
        budget: Optional[QueryBudget] = None,
    ) -> List[bool]:
        """Batched :meth:`concurrent` over ``(a, b)`` operation pairs.

        With a :class:`QueryBudget` the batch stops once the allowance
        is spent: verdicts are returned for the answered prefix only
        (the list may be shorter than the input) and ``budget.spent``
        records how many pairs were charged.

        The workhorse of the batched detector.  A cross-task pair's
        verdict is fully determined by the two operations' query
        signatures — the interned ``(op_key, task, op_prefix_len)``
        triples of :meth:`_sig_index` — so the batch memoizes whole
        *concurrency verdicts* keyed by the signature pair, collapsing
        all operation pairs between the same key-node neighborhoods
        (for event tasks, effectively one entry per event pair) into a
        single integer-keyed dictionary probe.  Only a pair-memo miss
        touches the reachability bitsets, with at most two prefix-mask
        ANDs.  Returns verdicts in input order; identical to calling
        :meth:`concurrent` per pair (which the ``fast_queries=False``
        path literally does).
        """
        prof = self.query_profile
        if budget is not None:
            pairs = budget.take(pairs)
        if not self._fast:
            verdicts = []
            for a, b in pairs:
                prof.batched_pairs += 1
                verdicts.append(self.concurrent(a, b))
            return verdicts
        op_task, op_pos = self._op_task, self._op_pos
        sig, sig_parts = self._sig_index()
        nsigs = len(sig_parts)
        hit = self._hit
        pair_memo = self._pair_memo
        memo_get = pair_memo.get
        capacity = self._memo_capacity
        move_to_end = pair_memo.move_to_end if capacity else None  # type: ignore[attr-defined]
        evict = pair_memo.popitem if capacity else None
        verdicts: List[bool] = []
        append = verdicts.append
        batched = queries = same_task = hits = misses = evictions = 0
        for a, b in pairs:
            batched += 1
            ta, tb = op_task[a], op_task[b]
            if ta == tb:
                # ordered one way unless the positions coincide
                same_task += 1
                queries += 1
                append(op_pos[a] == op_pos[b])
                continue
            key = sig[a] * nsigs + sig[b]
            cached = memo_get(key)
            if cached is not None:
                hits += 1
                if move_to_end is not None:
                    move_to_end(key)
                append(cached)
                continue
            misses += 1
            queries += 1
            ka, _, hia = sig_parts[sig[a]]
            kb, _, hib = sig_parts[sig[b]]
            # ordered(a, b)
            forward = ka >= 0 and hib > 0 and hit(ka, tb, hib)
            if forward:
                cached = False
            else:
                # ordered(b, a)
                queries += 1
                if kb >= 0 and hia:
                    cached = not hit(kb, ta, hia)
                else:
                    cached = True
            pair_memo[key] = cached
            if capacity and len(pair_memo) > capacity:
                evict(last=False)  # type: ignore[misc]
                evictions += 1
            append(cached)
        prof.batched_pairs += batched
        prof.queries += queries
        prof.same_task += same_task
        prof.memo_hits += hits
        prof.memo_misses += misses
        prof.memo_evictions += evictions
        return verdicts

    def event_ordered(self, e1: str, e2: str) -> bool:
        """``end(e1) < begin(e2)`` — the paper's shorthand "e1 happens-
        before e2" for whole events/tasks."""
        end1 = self._event_bounds[e1][1]
        begin2 = self._event_bounds[e2][0]
        return self.ordered(end1, begin2)

    def task_bounds(self, task: str) -> Tuple[int, int]:
        """(begin op index, end op index) of a task."""
        return self._event_bounds[task]

    def reset_query_memo(self) -> None:
        """Drop the memoized query verdicts (both the directional memo
        and the batch's pair memo).

        The per-op indexes and prefix masks are kept — they are derived
        structure, not caches of answers.  Used by the benchmarks to
        measure steady-state query cost with a cold memo.
        """
        self._memo.clear()
        self._pair_memo.clear()

    def _first_key_at_or_after(self, task: str, pos: int) -> Optional[int]:
        positions = self._task_key_positions.get(task)
        if not positions:
            return None
        i = bisect_left(positions, pos)
        if i == len(positions):
            return None
        return self._task_key_nodes[task][i]

    def _first_reachable_key(
        self, reach: ReachBits, task: str, hi: int
    ) -> Optional[int]:
        """First of ``task``'s initial ``hi`` key nodes present in
        ``reach``, or None.

        The one scan shared by the ``fast_queries=False`` query path
        and :meth:`explain` (which needs the *witness node*, not just
        existence, so it cannot use the prefix-mask AND).
        """
        nodes = self._task_key_nodes[task]
        if isinstance(reach, SparseBits):
            test = reach.test
            for i in range(hi):
                if test(nodes[i]):
                    return nodes[i]
            return None
        for i in range(hi):
            if (reach >> nodes[i]) & 1:
                return nodes[i]
        return None

    def _hit(self, ka: int, task: str, hi: int) -> bool:
        """Does node ``ka`` reach any of ``task``'s first ``hi`` key
        nodes?  The one reachability probe of the fast query path.

        Dense backend: one AND against the task's materialized prefix
        mask.  Sparse backend: :meth:`KeyGraph.add_chain` guarantees
        each task's key nodes hold *contiguous* node ids, so the probe
        is a chunk-level range test — no mask materialization at all.
        A graph that breaks the contiguity invariant fails loudly in
        :meth:`_range_of` rather than being silently range-probed
        against the wrong nodes.
        """
        reach = self.graph.reach_set(ka)
        if isinstance(reach, int):
            return bool(reach & self._masks_of(task)[hi])
        base = self._range_of(task)
        return reach.any_in_range(base, base + hi)

    def _op_index(self) -> Tuple[List[int], List[int]]:
        """Per-operation key-node lookup arrays (built lazily, O(n)).

        ``op_key[i]`` is the node id of the first key node at-or-after
        operation ``i`` in its task (-1 if none), i.e. the memoized
        result of :meth:`_first_key_at_or_after`; ``op_prefix_len[i]``
        is the number of key nodes of ``i``'s task at-or-before ``i``'s
        position, i.e. the ``hi`` bound of a query targeting ``i``.
        Together they replace the two per-query bisections with two
        list indexings.
        """
        if self._op_key is None:
            n = len(self._op_task)
            op_key = [-1] * n
            op_prefix_len = [0] * n
            by_task: Dict[str, List[int]] = {}
            for i in range(n):
                by_task.setdefault(self._op_task[i], []).append(i)
            for task, ops in by_task.items():
                positions = self._task_key_positions.get(task, ())
                nodes = self._task_key_nodes.get(task, ())
                m = len(positions)
                j = 0
                # ops arrive in increasing position order, so one
                # monotone pointer sweep replaces per-op bisection
                for op in ops:
                    pos = self._op_pos[op]
                    while j < m and positions[j] < pos:
                        j += 1
                    if j < m:
                        op_key[op] = nodes[j]
                        op_prefix_len[op] = j + 1 if positions[j] == pos else j
                    else:
                        op_prefix_len[op] = j
            self._op_key = op_key
            self._op_prefix_len = op_prefix_len
        return self._op_key, self._op_prefix_len  # type: ignore[return-value]

    def _sig_index(self) -> Tuple[List[int], List[Tuple[int, str, int]]]:
        """Per-operation interned query signatures (built lazily, O(n)).

        Two operations are query-equivalent when they share
        ``(op_key, task, op_prefix_len)``: every ordering query
        involving them — in either role — evaluates identically.  This
        interns those triples into dense signature ids so the batched
        query path can memoize whole concurrency verdicts under a
        single small-int key instead of hashing tuples.
        """
        if self._op_sig is None:
            op_key, op_prefix_len = self._op_index()
            op_task = self._op_task
            sig_of: Dict[Tuple[int, str, int], int] = {}
            sig_parts: List[Tuple[int, str, int]] = []
            sig = [0] * len(op_task)
            for i in range(len(op_task)):
                triple = (op_key[i], op_task[i], op_prefix_len[i])
                s = sig_of.get(triple)
                if s is None:
                    s = sig_of[triple] = len(sig_parts)
                    sig_parts.append(triple)
                sig[i] = s
            self._op_sig = sig
            self._sig_parts = sig_parts
        return self._op_sig, self._sig_parts

    def _masks_of(self, task: str) -> List[int]:
        """The task's prefix masks, materializing them on first use.

        ``masks[i]`` ORs ``1 << node`` for the task's first ``i`` key
        nodes, so "is any key node at-or-before a position reachable"
        is one AND against ``masks[hi]`` instead of ``hi`` shifted bit
        tests.
        """
        masks = self._prefix_masks.get(task)
        if masks is None:
            acc = 0
            masks = [0]
            for node in self._task_key_nodes.get(task, ()):
                acc |= 1 << node
                masks.append(acc)
            self._prefix_masks[task] = masks
            prof = self.query_profile
            prof.mask_tasks += 1
            prof.mask_bytes += sum(sys.getsizeof(m) for m in masks)
        return masks

    def _range_of(self, task: str) -> int:
        """Base node id of the task's contiguous key-node id range.

        Replaces the dense backend's prefix masks: the ids being
        contiguous — guaranteed by :meth:`KeyGraph.add_chain`, which
        allocates each task's nodes in one uninterrupted run — the
        first ``hi`` key nodes are exactly ``[base, base + hi)``.
        Raises :class:`HBInvariantError` on a gap: a hand-assembled
        graph that interleaved ``add_node`` calls across tasks must be
        queried with ``fast_queries=False`` (the scan path has no
        contiguity assumption).  Counted in ``mask_tasks``/
        ``mask_bytes`` as the sparse backend's per-task query
        structure.
        """
        base = self._task_range.get(task)
        if base is None:
            nodes = self._task_key_nodes.get(task) or ()
            base = nodes[0] if nodes else 0
            for i in range(1, len(nodes)):
                if nodes[i] != base + i:
                    raise HBInvariantError(
                        f"key nodes of task {task!r} are not contiguous "
                        f"(node {nodes[i]} at offset {i} from base {base}); "
                        "fast queries require chains allocated via "
                        "KeyGraph.add_chain — query this graph with "
                        "fast_queries=False instead"
                    )
            self._task_range[task] = base
            prof = self.query_profile
            prof.mask_tasks += 1
            prof.mask_bytes += sys.getsizeof(base)
        return base

    # -- explanations ---------------------------------------------------

    def explain(self, a: int, b: int) -> Optional[List[Tuple[int, str]]]:
        """Why does ``a < b`` hold?

        Returns a list of ``(op_index, rule)`` steps where ``rule`` is
        the label of the edge *into* that operation ("program-order"
        for intra-task hops), or ``None`` when ``a < b`` does not hold.
        """
        if not self.ordered(a, b):
            return None
        ta, tb = self._op_task[a], self._op_task[b]
        if ta == tb:
            return [(a, "start"), (b, "program-order")]
        ka = self._first_key_at_or_after(ta, self._op_pos[a])
        if ka is None:
            raise HBInvariantError(
                f"ordered({a}, {b}) holds but op {a} has no key node at or "
                f"after position {self._op_pos[a]} in task {ta!r}; the "
                "per-task key index disagrees with the reachability index"
            )
        reach = self.graph.reach_set(ka)
        positions = self._task_key_positions[tb]
        hi = bisect_right(positions, self._op_pos[b])
        target = self._first_reachable_key(reach, tb, hi)
        if target is None:
            raise HBInvariantError(
                f"ordered({a}, {b}) holds but no key node of task {tb!r} at "
                f"or before position {self._op_pos[b]} is reachable from "
                f"node {ka}; the closure bitsets are inconsistent"
            )
        path = self.graph.find_path(ka, target)
        if path is None:
            raise HBInvariantError(
                f"node {target} is in the reach set of node {ka} but no "
                "edge path connects them; the closure bitsets disagree "
                "with the edge lists"
            )
        steps: List[Tuple[int, str]] = [(a, "start")]
        prev = None
        for node in path:
            op = self.graph.op_of(node)
            if prev is None:
                rule = "program-order" if op != a else "start"
                if op != a:
                    steps.append((op, rule))
            else:
                steps.append((op, self.graph.edge_rule(prev, node) or "?"))
            prev = node
        if steps[-1][0] != b:
            steps.append((b, "program-order"))
        return steps
