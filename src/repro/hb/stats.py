"""Statistics about a happens-before relation.

``rule_counts`` attributes every edge of the key-node graph to the
model rule that created it — useful for understanding which parts of
the causality model do the work on a given trace (e.g. how many
orderings only exist because of the event-queue rules), and exposed by
the diagnostics in the CLI and EXPERIMENTS.md.

When the relation was produced by
:func:`repro.hb.builder.build_happens_before`, the stats also carry
the build's :class:`~repro.hb.builder.BuildProfile` — per-phase wall
times (scan, base edges, closure, fixpoint), derived edges per round,
and the closure-work counters (full recomputations, bits propagated
incrementally, dirty-groups skipped) that make the incremental
fixpoint's speedup observable from ``python -m repro stats``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..trace import TaskKind, Trace
from .builder import BuildProfile
from .graph import HappensBefore, QueryProfile


@dataclass
class HBStats:
    """Summary of one happens-before construction."""

    key_nodes: int
    edges: int
    rule_counts: Dict[str, int]
    fixpoint_iterations: int
    derived_edges: int
    events: int
    loopers: int
    threads: int
    #: full transitive-closure rebuilds (1 for an incremental build)
    closure_recomputations: int = 0
    #: reachability bits set by incremental closure propagation
    bits_propagated: int = 0
    #: derived edges applied per fixpoint round
    edges_per_round: List[int] = field(default_factory=list)
    #: per-phase timings of the build, when available
    profile: Optional[BuildProfile] = None
    #: query-side work counters (prefix masks, memoization)
    query_profile: Optional[QueryProfile] = None

    def build_section(self) -> Dict[str, object]:
        """The ``build`` section of the ``repro-stats/1`` document
        (:mod:`repro.obs.statsdoc`) — stable keys, JSON-safe values."""
        from dataclasses import asdict

        return {
            "key_nodes": self.key_nodes,
            "edges": self.edges,
            "rule_counts": dict(sorted(self.rule_counts.items())),
            "fixpoint_iterations": self.fixpoint_iterations,
            "derived_edges": self.derived_edges,
            "events": self.events,
            "loopers": self.loopers,
            "threads": self.threads,
            "closure_recomputations": self.closure_recomputations,
            "bits_propagated": self.bits_propagated,
            "edges_per_round": list(self.edges_per_round),
            "profile": asdict(self.profile) if self.profile else None,
        }

    def format(self) -> str:
        lines = [
            f"happens-before graph: {self.key_nodes} key nodes, "
            f"{self.edges} edges "
            f"({self.fixpoint_iterations} fixpoint rounds, "
            f"{self.derived_edges} derived edges)",
            f"tasks: {self.events} events, {self.loopers} loopers, "
            f"{self.threads} threads",
        ]
        lines.append(
            f"closure work: {self.closure_recomputations} full "
            f"recomputation(s), {self.bits_propagated} bits propagated "
            "incrementally"
        )
        if self.profile is not None:
            p = self.profile
            backend = "dense big-int" if p.dense_bits else "chunked sparse"
            line = (
                f"closure storage [{backend}]: {p.closure_bytes} bytes"
            )
            if not p.dense_bits:
                line += (
                    f", {p.chunks_allocated} chunks allocated, "
                    f"{p.chunks_shared} shared (copy-on-write), "
                    f"{p.dense_chunk_ratio:.0%} dense"
                )
            lines.append(line)
        if self.edges_per_round:
            lines.append(
                "derived edges per round: "
                + ", ".join(str(n) for n in self.edges_per_round)
            )
        if self.profile is not None:
            p = self.profile
            lines.append(
                "phase timings: "
                f"scan {p.scan_seconds * 1e3:.1f} ms, "
                f"base edges {p.base_seconds * 1e3:.1f} ms, "
                f"closure {p.closure_seconds * 1e3:.1f} ms, "
                f"fixpoint {p.fixpoint_seconds * 1e3:.1f} ms "
                f"(total {p.total_seconds * 1e3:.1f} ms)"
            )
            if p.groups_examined or p.groups_skipped:
                lines.append(
                    f"fixpoint groups: {p.groups_examined} examined, "
                    f"{p.groups_skipped} skipped as clean"
                )
            if p.group_dirty_events:
                lines.append(
                    f"dirty tracking: {p.events_repropagated} events "
                    f"re-propagated (per-group granularity would have "
                    f"re-read {p.group_dirty_events})"
                )
        if self.query_profile is not None:
            q = self.query_profile
            path = "prefix-mask+memo" if q.fast else "bit-scan (legacy)"
            lines.append(
                f"query path [{path}]: {q.queries} queries "
                f"({q.same_task} same-task, {q.batched_pairs} batched), "
                f"memo {q.memo_hits} hits / {q.memo_misses} misses "
                f"({q.memo_hit_rate:.0%} hit rate)"
            )
            cap = "unbounded" if q.memo_capacity is None else str(q.memo_capacity)
            lines.append(
                f"memo bound: {cap} entries/table, "
                f"{q.memo_evictions} evictions"
            )
            lines.append(
                f"prefix masks: {q.mask_tasks} tasks materialized, "
                f"{q.mask_bytes} bytes"
            )
        lines.append("edges by rule:")
        for rule, count in sorted(
            self.rule_counts.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {rule:<16} {count}")
        return "\n".join(lines)


def hb_stats(trace: Trace, hb: HappensBefore) -> HBStats:
    """Compute rule-attribution statistics for a built relation."""
    counts: Counter = Counter()
    for _u, _v, rule in hb.graph.edges():
        counts[rule] += 1
    kinds = Counter(info.task_kind for info in trace.tasks.values())
    profile = hb.profile if isinstance(hb.profile, BuildProfile) else None
    return HBStats(
        key_nodes=hb.graph.node_count,
        edges=hb.graph.edge_count,
        rule_counts=dict(counts),
        fixpoint_iterations=hb.iterations,
        derived_edges=hb.derived_edges,
        events=kinds.get(TaskKind.EVENT, 0),
        loopers=kinds.get(TaskKind.LOOPER, 0),
        threads=kinds.get(TaskKind.THREAD, 0),
        closure_recomputations=hb.graph.closure_recomputations,
        bits_propagated=hb.graph.bits_propagated,
        edges_per_round=list(profile.edges_per_round) if profile else [],
        profile=profile,
        query_profile=getattr(hb, "query_profile", None),
    )
