"""Statistics about a happens-before relation.

``rule_counts`` attributes every edge of the key-node graph to the
model rule that created it — useful for understanding which parts of
the causality model do the work on a given trace (e.g. how many
orderings only exist because of the event-queue rules), and exposed by
the diagnostics in the CLI and EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from ..trace import TaskKind, Trace
from .graph import HappensBefore


@dataclass
class HBStats:
    """Summary of one happens-before construction."""

    key_nodes: int
    edges: int
    rule_counts: Dict[str, int]
    fixpoint_iterations: int
    derived_edges: int
    events: int
    loopers: int
    threads: int

    def format(self) -> str:
        lines = [
            f"happens-before graph: {self.key_nodes} key nodes, "
            f"{self.edges} edges "
            f"({self.fixpoint_iterations} fixpoint rounds, "
            f"{self.derived_edges} derived edges)",
            f"tasks: {self.events} events, {self.loopers} loopers, "
            f"{self.threads} threads",
            "edges by rule:",
        ]
        for rule, count in sorted(
            self.rule_counts.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {rule:<16} {count}")
        return "\n".join(lines)


def hb_stats(trace: Trace, hb: HappensBefore) -> HBStats:
    """Compute rule-attribution statistics for a built relation."""
    counts: Counter = Counter()
    for _u, _v, rule in hb.graph.edges():
        counts[rule] += 1
    kinds = Counter(info.task_kind for info in trace.tasks.values())
    return HBStats(
        key_nodes=hb.graph.node_count,
        edges=hb.graph.edge_count,
        rule_counts=dict(counts),
        fixpoint_iterations=hb.iterations,
        derived_edges=hb.derived_edges,
        events=kinds.get(TaskKind.EVENT, 0),
        loopers=kinds.get(TaskKind.LOOPER, 0),
        threads=kinds.get(TaskKind.THREAD, 0),
    )
