"""Vector clocks, and a vector-clock pass over event-driven traces.

Section 4.2 argues that the classic online vector-clock algorithm
(FastTrack-style) cannot implement the event-driven causality model:

* the number of concurrent tasks (events) is huge and unknown a priori;
* the atomicity rule depends on *future* operations (Figure 4a);
* the queue rules require checks over *past* operations that a clock
  comparison cannot express (Figure 4d).

We implement the online algorithm anyway — both as the substrate for
the conventional baseline's intuition and as an experimental subject:
property tests verify that the vector-clock ordering is a strict
*under-approximation* of the graph-based ordering exactly on traces
that exercise the atomicity/queue rules, which is the paper's argument
made executable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..trace import (
    Begin,
    End,
    Fork,
    IpcCall,
    IpcHandle,
    IpcReply,
    IpcReturn,
    Join,
    Notify,
    Perform,
    Register,
    Send,
    SendAtFront,
    Trace,
    Wait,
)


class VectorClock:
    """A sparse vector clock mapping task ids to logical timestamps."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Optional[Dict[str, int]] = None) -> None:
        self._clock: Dict[str, int] = dict(clock) if clock else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self._clock)

    def get(self, task: str) -> int:
        return self._clock.get(task, 0)

    def tick(self, task: str) -> None:
        """Advance this task's own component."""
        self._clock[task] = self._clock.get(task, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum (in place)."""
        for task, value in other._clock.items():
            if value > self._clock.get(task, 0):
                self._clock[task] = value

    def happens_before(self, other: "VectorClock") -> bool:
        """Strict vector-clock order: ``self <= other`` and ``self != other``.

        Zero-valued components are identities, so (in)equality is
        decided on the normalized clocks.
        """
        le = all(v <= other._clock.get(t, 0) for t, v in self._clock.items())
        return le and self != other

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.happens_before(other) and not other.happens_before(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        mine = {t: v for t, v in self._clock.items() if v}
        theirs = {t: v for t, v in other._clock.items() if v}
        return mine == theirs

    def __hash__(self) -> int:  # pragma: no cover - VCs are not dict keys
        return hash(frozenset(self._clock.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{v}" for t, v in sorted(self._clock.items()))
        return f"VC({inner})"


class VectorClockAnalysis:
    """One online pass assigning a vector clock to every operation.

    Only the *online-expressible* rules are applied: program order,
    fork/join, signal-and-wait, listener, send, external input, and the
    IPC edges.  The atomicity and queue rules are deliberately absent —
    they are not implementable in this streaming form, which is the
    point of the comparison.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.op_clock: List[VectorClock] = []
        self._run()

    def _run(self) -> None:
        trace = self.trace
        task_clock: Dict[str, VectorClock] = {}
        pending_into_task: Dict[str, List[VectorClock]] = {}
        notify_clock_by_ticket: Dict[int, VectorClock] = {}
        notify_clock_by_monitor: Dict[str, VectorClock] = {}
        register_clock: Dict[str, VectorClock] = {}
        ipc_call_clock: Dict[int, VectorClock] = {}
        ipc_reply_clock: Dict[int, VectorClock] = {}
        last_external_end: Optional[VectorClock] = None
        external_order = {e: i for i, e in enumerate(trace.external_events())}

        def clock_of(task: str) -> VectorClock:
            vc = task_clock.get(task)
            if vc is None:
                vc = VectorClock()
                task_clock[task] = vc
            return vc

        for op in trace.ops:
            vc = clock_of(op.task)
            if isinstance(op, Begin):
                for incoming in pending_into_task.pop(op.task, ()):
                    vc.join(incoming)
                info = trace.tasks.get(op.task)
                if info is not None and info.external:
                    if last_external_end is not None:
                        vc.join(last_external_end)
            elif isinstance(op, Wait):
                source = None
                if op.ticket >= 0:
                    source = notify_clock_by_ticket.get(op.ticket)
                if source is None:
                    source = notify_clock_by_monitor.get(op.monitor)
                if source is not None:
                    vc.join(source)
            elif isinstance(op, Join):
                ended = task_clock.get(op.child)
                if ended is not None:
                    vc.join(ended)
            elif isinstance(op, Perform):
                source = register_clock.get(op.listener)
                if source is not None:
                    vc.join(source)
            elif isinstance(op, IpcHandle):
                source = ipc_call_clock.get(op.txn)
                if source is not None:
                    vc.join(source)
            elif isinstance(op, IpcReturn):
                source = ipc_reply_clock.get(op.txn)
                if source is not None:
                    vc.join(source)

            vc.tick(op.task)
            snapshot = vc.copy()
            self.op_clock.append(snapshot)

            if isinstance(op, Fork):
                pending_into_task.setdefault(op.child, []).append(snapshot)
            elif isinstance(op, (Send, SendAtFront)):
                pending_into_task.setdefault(op.event, []).append(snapshot)
            elif isinstance(op, Notify):
                if op.ticket >= 0:
                    notify_clock_by_ticket[op.ticket] = snapshot
                notify_clock_by_monitor[op.monitor] = snapshot
            elif isinstance(op, Register):
                register_clock[op.listener] = snapshot
            elif isinstance(op, IpcCall):
                ipc_call_clock[op.txn] = snapshot
            elif isinstance(op, IpcReply):
                ipc_reply_clock[op.txn] = snapshot
            elif isinstance(op, End):
                info = trace.tasks.get(op.task)
                if info is not None and info.external and op.task in external_order:
                    last_external_end = snapshot

    def ordered(self, a: int, b: int) -> bool:
        """Strict vector-clock happens-before between op indices."""
        if self.trace[a].task == self.trace[b].task:
            return a < b
        return self.op_clock[a].happens_before(self.op_clock[b])

    def concurrent(self, a: int, b: int) -> bool:
        return not self.ordered(a, b) and not self.ordered(b, a)
