"""Graphviz export of happens-before graphs.

``to_dot`` renders the key-node graph — optionally collapsed to one
node per task, which is the readable view for real traces — with edges
labelled by the rule that created them.  Useful when debugging why two
operations are (un)ordered; pipe the output through ``dot -Tsvg``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..trace import TaskKind, Trace
from .graph import HappensBefore

#: rules hidden in the collapsed view (intra-task structure)
_INTRA_TASK_RULES = {"program-order"}


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    trace: Trace,
    hb: HappensBefore,
    collapse_tasks: bool = True,
    include_rules: Optional[Set[str]] = None,
) -> str:
    """Render the relation as a Graphviz digraph.

    With ``collapse_tasks`` (default) nodes are tasks and an edge
    appears once per (source task, target task, rule); otherwise every
    key operation is a node.  ``include_rules`` optionally restricts
    the edge set.
    """
    lines: List[str] = ["digraph happens_before {", "  rankdir=LR;"]
    graph = hb.graph
    if collapse_tasks:
        shapes: Dict[str, str] = {}
        for task, info in trace.tasks.items():
            if info.task_kind is TaskKind.EVENT:
                shapes[task] = "box"
            elif info.task_kind is TaskKind.LOOPER:
                shapes[task] = "house"
            else:
                shapes[task] = "ellipse"
        emitted: Set[tuple] = set()
        used_tasks: Set[str] = set()
        edges: List[str] = []
        for u, v, rule in graph.edges():
            if rule in _INTRA_TASK_RULES:
                continue
            if include_rules is not None and rule not in include_rules:
                continue
            task_u = trace[graph.op_of(u)].task
            task_v = trace[graph.op_of(v)].task
            if task_u == task_v:
                continue
            key = (task_u, task_v, rule)
            if key in emitted:
                continue
            emitted.add(key)
            used_tasks.update((task_u, task_v))
            edges.append(
                f"  {_quote(task_u)} -> {_quote(task_v)} "
                f'[label="{rule}"];'
            )
        for task in sorted(used_tasks):
            shape = shapes.get(task, "ellipse")
            lines.append(f"  {_quote(task)} [shape={shape}];")
        lines.extend(edges)
    else:
        for node in range(graph.node_count):
            op = trace[graph.op_of(node)]
            label = f"{op.task}\\n{op.kind.value}"
            lines.append(f'  n{node} [label="{label}"];')
        for u, v, rule in graph.edges():
            if include_rules is not None and rule not in include_rules:
                continue
            lines.append(f'  n{u} -> n{v} [label="{rule}"];')
    lines.append("}")
    return "\n".join(lines)
