"""Incremental happens-before construction for the streaming service.

:func:`repro.hb.builder.build_happens_before` is a batch pipeline: scan
the whole trace, allocate the key graph, add every base edge, close,
then run the derived-rule fixpoint.  :class:`IncrementalHB` runs the
same passes *op by op* against the live incremental closure that
:class:`~repro.hb.graph.KeyGraph` already maintains (``incremental=True``
appends self-only closure rows on ``add_node`` and worklist-propagates
on ``add_edge``), so the relation is extended as records arrive instead
of rebuilt.

The streaming construction reuses the builder's own machinery — the
shared :class:`~repro.hb.builder._BuildState` scan bookkeeping,
:func:`~repro.hb.builder._harvest` for event records, and
:class:`~repro.hb.builder._DerivedRules` for the fixpoint — so there is
one implementation of every rule, exercised by both modes.  Three
things differ from the batch order of operations, none of which changes
the final relation:

* **Forward references.**  Batch mode resolves ``fork → begin``,
  ``end → join`` and ``send → begin`` by looking the partner up in the
  completed scan.  Online, the partner op may not have arrived yet, so
  unresolved edges are parked in pending tables keyed by task/event
  name and resolved when the matching ``begin``/``end`` arrives.  The
  final edge set is identical.

* **External-input chain.**  The chain links *adjacent* external events
  by ``external_seq``, and an event's neighbours can change as later
  external events arrive.  The chain is therefore re-walked from the
  trace's sorted external-event list on every :meth:`poll` after a
  relevant ``begin``/``end`` (``add_edge`` deduplicates, so the re-walk
  is cheap), converging on exactly the batch edge set.

* **Trailing key nodes.**  Batch mode adds a node at each task's last
  op even when it is not a synchronization op, purely so the task has a
  node at its very end.  Online, "last op" is a moving target, so these
  nodes are never created.  This is verdict-neutral: a trailing
  non-sync node has no incident cross-task edges (base rules only touch
  sync/lock ops), so it is reachable exactly when its program-order
  predecessor is, and no query verdict depends on it.  The streaming
  relation must be queried with ``fast_queries=False`` (the scan path),
  which :meth:`relation` enforces.

The derived-rule fixpoint is where incrementality pays off.  Between
polls the graph accumulates dirty node marks; a poll runs
``_DerivedRules.apply`` seeded with exactly those nodes, so rule groups
whose premises did not move are skipped (PR 5's per-event dirty
tracking).  One subtlety: ``_DerivedRules`` snapshots group membership
(the dispatched events per looper/queue) at construction, and a member
that *joins* a group late — its ``end`` arrives many polls after its
``begin`` — may have premise-reach changes that were already drained in
earlier polls.  Per-member dirty skipping would silently miss its
conclusions.  The poll therefore fingerprints group membership; when it
changes, the rules are rebuilt and that poll's first round runs with
``dirty=None`` (full examination — the batch round-one semantics),
which is sound because the implied-edge check already skips everything
the closure knows.  ``_seed_queue_rule_1_chains`` (a batch-only
warm-start optimization) is skipped; the fixpoint derives the same
edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..hb.builder import (
    RULE_EXTERNAL,
    RULE_FORK,
    RULE_IPC_CALL,
    RULE_IPC_REPLY,
    RULE_JOIN,
    RULE_LISTENER,
    RULE_LOCK,
    RULE_PROGRAM_ORDER,
    RULE_SEND,
    RULE_SEND_AT_FRONT,
    RULE_SIGNAL_WAIT,
    _BuildState,
    _check_one_looper_per_queue,
    _DerivedRules,
    _effective_task_of_id,
    _harvest,
)
from ..hb.config import CAFA_MODEL, DEFAULT_DENSE_BITS, ModelConfig
from ..hb.graph import HappensBefore, KeyGraph
from ..trace import (
    Acquire,
    Begin,
    End,
    Fork,
    IpcCall,
    IpcHandle,
    IpcReply,
    IpcReturn,
    Join,
    Notify,
    OpKind,
    Perform,
    Register,
    Release,
    Send,
    SendAtFront,
    SYNC_KINDS,
    TaskKind,
    Trace,
    Wait,
)

_LOCK_KINDS = (OpKind.ACQUIRE, OpKind.RELEASE)

#: every field of an :class:`~repro.hb.builder.EventRecord` that
#: :class:`~repro.hb.builder._DerivedRules` reads when forming groups —
#: the membership fingerprint must cover all of them
_MEMBER_FIELDS = (
    "event",
    "queue",
    "looper",
    "send_index",
    "delay",
    "at_front",
    "begin_index",
    "end_index",
)


class IncrementalHB:
    """One happens-before relation, grown record by record.

    Usage: :meth:`ingest` every op of ``trace`` in order as it arrives,
    :meth:`poll` whenever the derived closure should catch up, and
    :meth:`relation` for a queryable
    :class:`~repro.hb.graph.HappensBefore` view over the live state.
    """

    def __init__(
        self,
        trace: Trace,
        config: ModelConfig = CAFA_MODEL,
        dense_bits: bool = DEFAULT_DENSE_BITS,
    ) -> None:
        self.trace = trace
        self.config = config
        self.graph = KeyGraph(incremental=True, dense_bits=dense_bits)
        self.state = _BuildState(trace=trace, config=config)
        self.task_key_positions: Dict[str, List[int]] = {}
        self.task_key_nodes: Dict[str, List[int]] = {}
        self._prev_key_node: Dict[str, int] = {}
        self._closed = False
        # Base edges whose partner op has not arrived yet.
        self._pending_forks: Dict[str, List[int]] = {}
        self._pending_joins: Dict[str, List[int]] = {}
        self._pending_sends: Dict[str, List[Tuple[int, str]]] = {}
        # Past-only pairing state (mirrors _add_base_edges; arrival
        # order is trace order, so the lookups resolve identically).
        self._notify_by_ticket: Dict[int, int] = {}
        self._notify_by_monitor: Dict[str, List[int]] = {}
        self._registers: Dict[str, List[int]] = {}
        self._ipc_calls: Dict[int, int] = {}
        self._ipc_replies: Dict[int, int] = {}
        self._last_release: Dict[str, int] = {}
        self._external_dirty = False
        self._ingested = 0
        self._dirty: Set[int] = set()
        self._rules: Optional[_DerivedRules] = None
        self._membership: Optional[Tuple[tuple, ...]] = None
        self.rounds = 0
        self.derived_edges = 0
        self._derived_enabled = not config.sequential_events and (
            config.atomicity or config.any_queue_rule
        )

    # -- ingestion -----------------------------------------------------

    def ingest(self, i: int) -> None:
        """Process ``trace[i]``; ops must be ingested in trace order."""
        if i != self._ingested:
            raise ValueError(
                f"out-of-order ingest: expected op {self._ingested}, got {i}"
            )
        self._ingested += 1
        state = self.state
        op = self.trace[i]
        # Scan bookkeeping (mirrors _scan, one op at a time).
        task = op.task
        if state.config.sequential_events:
            info = self.trace.tasks.get(task)
            if (
                info is not None
                and info.task_kind is TaskKind.EVENT
                and info.looper
            ):
                task = info.looper
        ops = state.task_ops.setdefault(task, [])
        state.op_task.append(task)
        state.op_pos.append(len(ops))
        ops.append(i)
        _harvest(state, i, op)
        kind = op.kind
        if kind in SYNC_KINDS or (
            state.config.lock_edges and kind in _LOCK_KINDS
        ):
            node = self.graph.add_node(i)
            if not self._closed:
                # Close on the first node so every later add_node /
                # add_edge extends the closure live.
                self.graph.close()
                self._closed = True
            prev = self._prev_key_node.get(task)
            if prev is not None:
                self.graph.add_edge(prev, node, RULE_PROGRAM_ORDER)
            self._prev_key_node[task] = node
            self.task_key_positions.setdefault(task, []).append(
                state.op_pos[-1]
            )
            self.task_key_nodes.setdefault(task, []).append(node)
            self._base_edges(i, op)

    def _edge(self, u_op: int, v_op: int, rule: str) -> None:
        self.graph.add_edge(
            self.graph.node_of(u_op), self.graph.node_of(v_op), rule
        )

    def _is_external_event(self, task: str) -> bool:
        info = self.trace.tasks.get(task)
        return (
            info is not None
            and info.task_kind is TaskKind.EVENT
            and info.external
        )

    def _base_edges(self, i: int, op) -> None:
        """Base-rule edges enabled by op ``i`` (mirrors _add_base_edges'
        ``step``, plus resolution of parked forward references)."""
        config, state, edge = self.config, self.state, self._edge
        if isinstance(op, Begin):
            for j, rule in self._pending_sends.pop(op.task, ()):
                edge(j, i, rule)
            for j in self._pending_forks.pop(op.task, ()):
                edge(j, i, RULE_FORK)
            if config.external_input and self._is_external_event(op.task):
                self._external_dirty = True
        elif isinstance(op, End):
            for j in self._pending_joins.pop(op.task, ()):
                edge(i, j, RULE_JOIN)
            if config.external_input and self._is_external_event(op.task):
                self._external_dirty = True
        elif isinstance(op, Fork) and config.fork_join:
            begin = state.task_begin.get(op.child)
            if begin is not None:
                edge(i, begin, RULE_FORK)
            else:
                self._pending_forks.setdefault(op.child, []).append(i)
        elif isinstance(op, Join) and config.fork_join:
            end = state.task_end.get(op.child)
            if end is not None:
                edge(end, i, RULE_JOIN)
            else:
                self._pending_joins.setdefault(op.child, []).append(i)
        elif isinstance(op, Notify) and config.signal_wait:
            if op.ticket >= 0:
                self._notify_by_ticket[op.ticket] = i
            self._notify_by_monitor.setdefault(op.monitor, []).append(i)
        elif isinstance(op, Wait) and config.signal_wait:
            if op.ticket >= 0 and op.ticket in self._notify_by_ticket:
                edge(self._notify_by_ticket[op.ticket], i, RULE_SIGNAL_WAIT)
            else:
                for n in self._notify_by_monitor.get(op.monitor, ()):
                    edge(n, i, RULE_SIGNAL_WAIT)
        elif isinstance(op, Register) and config.listener:
            self._registers.setdefault(op.listener, []).append(i)
        elif isinstance(op, Perform) and config.listener:
            for r in self._registers.get(op.listener, ()):
                edge(r, i, RULE_LISTENER)
        elif isinstance(op, (Send, SendAtFront)) and config.send_begin:
            rule = RULE_SEND if isinstance(op, Send) else RULE_SEND_AT_FRONT
            begin = state.task_begin.get(op.event)
            if begin is not None:
                edge(i, begin, rule)
            else:
                self._pending_sends.setdefault(op.event, []).append((i, rule))
        elif isinstance(op, IpcCall) and config.ipc:
            self._ipc_calls[op.txn] = i
        elif isinstance(op, IpcHandle) and config.ipc:
            call = self._ipc_calls.get(op.txn)
            if call is not None:
                edge(call, i, RULE_IPC_CALL)
        elif isinstance(op, IpcReply) and config.ipc:
            self._ipc_replies[op.txn] = i
        elif isinstance(op, IpcReturn) and config.ipc:
            reply = self._ipc_replies.get(op.txn)
            if reply is not None:
                edge(reply, i, RULE_IPC_REPLY)
        elif isinstance(op, Release) and config.lock_edges:
            self._last_release[op.lock] = i
        elif isinstance(op, Acquire) and config.lock_edges:
            rel = self._last_release.get(op.lock)
            if rel is not None:
                edge(rel, i, RULE_LOCK)

    def _refresh_external_chain(self) -> None:
        if not self._external_dirty:
            return
        self._external_dirty = False
        state = self.state
        external = self.trace.external_events()
        for e1, e2 in zip(external, external[1:]):
            end1 = state.task_end.get(e1)
            begin2 = state.task_begin.get(e2)
            if end1 is not None and begin2 is not None:
                self._edge(end1, begin2, RULE_EXTERNAL)

    # -- derived fixpoint ----------------------------------------------

    def _membership_key(self) -> Tuple[tuple, ...]:
        return tuple(
            tuple(getattr(rec, name) for name in _MEMBER_FIELDS)
            for rec in self.state.events.values()
            if rec.dispatched and rec.queue
        )

    def poll(self) -> int:
        """Catch the derived closure up with everything ingested.

        Returns the number of derived edges added.  Cheap when nothing
        relevant changed: no dirty nodes and unchanged group membership
        means no fixpoint round runs at all.
        """
        if not self._closed:
            return 0
        if self.config.external_input:
            self._refresh_external_chain()
        self._dirty |= self.graph.drain_dirty()
        if not self._derived_enabled:
            self._dirty.clear()
            return 0
        membership = self._membership_key()
        dirty: Optional[Set[int]]
        if membership != self._membership:
            self._membership = membership
            _check_one_looper_per_queue(self.state)
            self._rules = _DerivedRules(self.state, self.graph)
            # Newly built rule structures: examine every group once
            # (see module docstring — a member that joined a group may
            # have premise changes drained in earlier polls).
            dirty = None
            self._dirty.clear()
        else:
            if self._rules is None or not self._dirty:
                self._dirty.clear()
                return 0
            dirty = self._dirty
            self._dirty = set()
        added_total = 0
        rules = self._rules
        while True:
            new_edges = rules.apply(dirty)
            if not new_edges:
                break
            self.rounds += 1
            added = 0
            for u, v, rule in new_edges:
                if self.graph.add_edge(u, v, rule):
                    added += 1
            self.derived_edges += added
            added_total += added
            dirty = self.graph.drain_dirty()
        return added_total

    # -- queries -------------------------------------------------------

    def closure_bytes(self) -> int:
        return self.graph.closure_bytes() if self._closed else 0

    def relation(self) -> HappensBefore:
        """A queryable view over the live graph and scan state.

        The view is constructed with ``fast_queries=False``: the scan
        query path reads only the live references handed here (none of
        the lazily built per-task masks or memo tables), so it stays
        correct as more records are ingested after the call.
        """
        state = self.state
        bounds: Dict[str, Tuple[int, int]] = {}
        for task, begin in state.task_begin.items():
            end = state.task_end.get(task)
            if end is None:
                ops = state.task_ops.get(_effective_task_of_id(state, task), [])
                end = ops[-1] if ops else begin
            bounds[task] = (begin, end)
        return HappensBefore(
            graph=self.graph,
            op_task=state.op_task,
            op_pos=state.op_pos,
            task_key_positions=self.task_key_positions,
            task_key_nodes=self.task_key_nodes,
            event_bounds=bounds,
            iterations=self.rounds,
            derived_edges=self.derived_edges,
            fast_queries=False,
        )
