"""Online streaming detection: incremental happens-before, the
record-by-record ingestion service with bounded-memory epoch GC, the
sharded multi-session daemon (router + transports), and synthetic
long-session generators (see ``docs/streaming.md``)."""

from .incremental import IncrementalHB
from .router import (
    DaemonReport,
    RouterChannel,
    SessionReport,
    SessionRouter,
)
from .service import (
    DEFAULT_POLL_EVERY,
    EpochSummary,
    StreamAnalyzer,
    StreamProfile,
    merge_profiles,
)
from .synthetic import SESSION_ID_STRIDE, DuplicateSessionError, concat_sessions
from .transport import (
    DEFAULT_BACKOFF_CAP,
    DEFAULT_BACKOFF_INITIAL,
    Backoff,
    SocketSource,
    tail_chunks,
)

__all__ = [
    "Backoff",
    "DEFAULT_BACKOFF_CAP",
    "DEFAULT_BACKOFF_INITIAL",
    "DEFAULT_POLL_EVERY",
    "DaemonReport",
    "DuplicateSessionError",
    "EpochSummary",
    "IncrementalHB",
    "RouterChannel",
    "SESSION_ID_STRIDE",
    "SessionReport",
    "SessionRouter",
    "SocketSource",
    "StreamAnalyzer",
    "StreamProfile",
    "concat_sessions",
    "merge_profiles",
    "tail_chunks",
]
