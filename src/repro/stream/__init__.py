"""Online streaming detection: incremental happens-before, the
record-by-record ingestion service with bounded-memory epoch GC, and
synthetic long-session generators (see ``docs/streaming.md``)."""

from .incremental import IncrementalHB
from .service import (
    DEFAULT_POLL_EVERY,
    EpochSummary,
    StreamAnalyzer,
    StreamProfile,
)
from .synthetic import SESSION_ID_STRIDE, concat_sessions

__all__ = [
    "DEFAULT_POLL_EVERY",
    "EpochSummary",
    "IncrementalHB",
    "SESSION_ID_STRIDE",
    "StreamAnalyzer",
    "StreamProfile",
    "concat_sessions",
]
