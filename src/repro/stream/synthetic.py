"""Synthetic long sessions for the epoch-GC soak and benchmarks.

:func:`concat_sessions` chains ``k`` renamed copies of an app trace
into one long session.  Each copy is made disjoint from the others by
prefixing every task-namespace string (``"s3:"`` etc. — keep ``k <= 10``
so the prefixes sort in session order), offsetting ticket/transaction
ids and ``external_seq``, and shifting times past the previous copy.
Sessions therefore share no tasks, events, queues, monitors, locks,
addresses, or pairing ids: the offline analysis of the concatenation
decomposes into the per-session analyses, and its report set is the
union of the per-session report sets.

Each copy ends fully quiesced (every begun task ended, nothing pending)
exactly like the original trace, so the streaming analyzer's epoch GC
retires one epoch per session boundary — the memory-boundedness
scenario ``bounds_pr6.json`` pins.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..trace import TaskInfo, Trace
from ..trace.store import ADDR, SCHEMAS, STR

#: external_seq / ticket / txn offset between consecutive sessions —
#: far above anything a single app trace allocates
SESSION_ID_STRIDE = 1_000_000


class DuplicateSessionError(ValueError):
    """Two sessions in one concatenation share a session id.

    Duplicate ids would silently merge the copies' task namespaces,
    making the concatenation's analysis *not* decompose into the
    per-session analyses — the property everything downstream (epoch
    GC soaks, the sharding benchmarks, the daemon differential tests)
    relies on.
    """

    def __init__(self, session: str) -> None:
        super().__init__(
            f"duplicate session id {session!r}: every session in a "
            "concatenation must have a distinct id, or the copies' "
            "task namespaces collide and the per-session analyses "
            "are no longer independent"
        )
        self.session = session

#: INT payload fields that are *identities* (pairing keys) rather than
#: quantities, and so must be offset per session; delay/pc/target stay
_ID_FIELDS = frozenset({"ticket", "txn"})


def _renamed_op(op, prefix: str, offset: int, time_shift: int):
    updates = {"task": prefix + op.task, "time": op.time + time_shift}
    for name, tag in SCHEMAS[op.kind]:
        value = getattr(op, name)
        if value is None:
            continue
        if tag == STR:
            updates[name] = prefix + value
        elif tag == ADDR:
            scope, owner, slot = value
            updates[name] = (scope, f"{prefix}{owner}", slot)
        elif name in _ID_FIELDS and value >= 0:
            updates[name] = value + offset
    return dataclasses.replace(op, **updates)


def _renamed_info(info: TaskInfo, prefix: str, offset: int) -> TaskInfo:
    return dataclasses.replace(
        info,
        task=prefix + info.task,
        process=prefix + info.process if info.process else info.process,
        looper=prefix + info.looper if info.looper else info.looper,
        queue=prefix + info.queue if info.queue else info.queue,
        external_seq=(
            info.external_seq + offset if info.external else info.external_seq
        ),
    )


def concat_sessions(
    trace: Trace,
    sessions: int,
    columnar: bool = True,
    ids: Optional[Sequence[str]] = None,
) -> Trace:
    """``sessions`` disjoint renamed copies of ``trace``, back to back.

    ``ids`` overrides the default ``s0 .. s{k-1}`` session ids (one per
    session, each becoming the copy's ``"{id}:"`` task-namespace
    prefix).  Ids must be distinct — a repeat raises
    :class:`DuplicateSessionError`, because colliding prefixes would
    silently merge two copies into one malformed session.
    """
    if not 1 <= sessions <= 10:
        raise ValueError("sessions must be in 1..10 (single-digit prefixes)")
    if ids is None:
        ids = [f"s{k}" for k in range(sessions)]
    elif len(ids) != sessions:
        raise ValueError(
            f"expected {sessions} session ids, got {len(ids)}"
        )
    seen = set()
    for session in ids:
        if session in seen:
            raise DuplicateSessionError(session)
        seen.add(session)
    out = Trace(columnar=columnar)
    span = (max((op.time for op in trace.ops), default=0)) + 1
    for k, session in enumerate(ids):
        prefix = f"{session}:"
        offset = k * SESSION_ID_STRIDE
        for info in trace.tasks.values():
            out.add_task(_renamed_info(info, prefix, offset))
        shift = k * span
        for op in trace.ops:
            out.append(_renamed_op(op, prefix, offset, shift))
    return out
