"""The online streaming detection service.

:class:`StreamAnalyzer` is the long-running counterpart of the batch
pipeline: trace records go in (v1/v2 text or v3 binary — file tail,
stdin, or the in-process :meth:`~StreamAnalyzer.append` feed), race
reports come out as the analysis catches up — without ever holding more
than the active *epoch* of the session in memory.

Ingestion path::

    bytes/lines ──> AnyTraceDecoder ──> columnar TraceStore
                                   │
                 per-op drive      ▼
        IncrementalHB (CAFA model)   ─ live closure, dirty-driven fixpoint
        IncrementalHB (conventional) ─ for report classification
        AccessExtractor              ─ uses/frees/guards/locksets

Detection runs the *unmodified* batch detector
(:class:`~repro.detect.usefree.UseFreeDetector`) over the live state —
the happens-before relations and the access index are injected, so
online reports are byte-identical to an offline run over the same ops.

**Epoch GC.**  A session *quiesces* when every task that has begun has
ended and nothing else is expected (every forked task and sent event
has been dispatched to completion).  At a quiescence point no future
record can be ordered with a past one except through state the model
does not track, so the analyzer retires the epoch: it runs the
authoritative detection pass, records the epoch's reports, and drops
the epoch's closure chunks, scan state, and interned-table entries by
starting fresh structures for the next epoch (the task table persists —
task ids are session-global).  Memory is thereby bounded by the largest
single epoch, not the session length.  Addresses freed in a retired
epoch are remembered (as a plain set) so a later access to one —
possible only if the quiescence judgment was wrong for the application,
e.g. ordering through untracked shared state — is *counted* as
``cross_epoch_accesses`` rather than silently misanalyzed; a non-zero
count flags that GC'd results may diverge from a full offline run.

**Provisional vs authoritative reports.**  The happens-before relation
only grows, so a pair can move from concurrent to ordered as more
records arrive — mid-epoch reports from :meth:`detect_now` are
therefore *provisional* (they can disappear).  Reports recorded at
epoch retirement and at :meth:`finish` are authoritative: they are
exactly what the batch detector emits for those ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import dataclasses

from ..detect import (
    AccessExtractor,
    DetectorOptions,
    SamplerOptions,
    UseFreeDetector,
    detect_sampled,
)
from ..detect.report import RaceReport
from ..obs.spans import span
from ..trace import AnyTraceDecoder, OpKind, Trace
from ..trace.trace import TaskInfo
from .incremental import IncrementalHB

#: drive the dirty-driven fixpoint every N ingested ops; polls with no
#: dirty nodes and no membership change are near-free, so this mostly
#: bounds how much dirt a single poll has to drain
DEFAULT_POLL_EVERY = 64


@dataclass
class StreamProfile:
    """Counters of one analyzer's life, shown by ``repro stream``."""

    records_ingested: int = 0
    ops_ingested: int = 0
    polls: int = 0
    fixpoint_rounds: int = 0
    derived_edges: int = 0
    epochs_retired: int = 0
    closure_bytes: int = 0
    peak_closure_bytes: int = 0
    retired_addresses: int = 0
    cross_epoch_accesses: int = 0
    reports_emitted: int = 0
    #: sampled-mode counters (zero in full mode)
    sampled_pairs: int = 0
    sampled_suspects: int = 0
    escalations: int = 0

    def format(self) -> str:
        lines = ["stream profile:"]
        lines.append(f"  records ingested     {self.records_ingested:>12}")
        lines.append(f"  ops ingested         {self.ops_ingested:>12}")
        lines.append(f"  closure polls        {self.polls:>12}")
        lines.append(f"  fixpoint rounds      {self.fixpoint_rounds:>12}")
        lines.append(f"  derived edges        {self.derived_edges:>12}")
        lines.append(f"  epochs retired       {self.epochs_retired:>12}")
        lines.append(f"  closure bytes        {self.closure_bytes:>12}")
        lines.append(f"  peak closure bytes   {self.peak_closure_bytes:>12}")
        lines.append(f"  retired addresses    {self.retired_addresses:>12}")
        lines.append(f"  cross-epoch accesses {self.cross_epoch_accesses:>12}")
        lines.append(f"  reports emitted      {self.reports_emitted:>12}")
        if self.sampled_pairs or self.escalations:
            lines.append(f"  sampled pairs        {self.sampled_pairs:>12}")
            lines.append(f"  sampled suspects     {self.sampled_suspects:>12}")
            lines.append(f"  escalations          {self.escalations:>12}")
        return "\n".join(lines)


def merge_profiles(profiles) -> StreamProfile:
    """Aggregate many analyzers' profiles into one (the daemon's
    per-shard and whole-fleet views).

    Every counter is summed — including the ``peak_closure_bytes``
    fields, which makes the merged peak a *conservative upper bound*
    on the aggregate's true simultaneous peak (sessions on one shard
    run concurrently only epoch-interleaved, so their individual peaks
    rarely coincide).
    """
    merged = StreamProfile()
    for profile in profiles:
        for name in StreamProfile.__dataclass_fields__:
            setattr(merged, name, getattr(merged, name) + getattr(profile, name))
    return merged


@dataclass
class EpochSummary:
    """One retired (or final) epoch: its extent and its reports."""

    index: int
    ops: int
    reports: List[RaceReport]
    closure_bytes: int
    #: True for epochs dropped by quiescence GC; False for the final
    #: epoch closed out by :meth:`StreamAnalyzer.finish`
    retired: bool


class StreamAnalyzer:
    """See the module docstring.

    ``strict=False`` selects the decoder's salvage mode: a damaged
    record poisons the rest of the stream but everything decoded before
    it is analyzed (the degraded path for crash-truncated inputs).
    ``gc=False`` disables epoch retirement (one epoch spans the whole
    session; memory grows like offline mode).

    ``mode="sampled"`` runs the session as cheap triage: no incremental
    happens-before is maintained at all — only the access extractor and
    the quiescence tracker run per op.  At each epoch close the sampled
    detector screens a budgeted random pair sample
    (:mod:`repro.detect.sampling`); a flagged epoch *escalates* to one
    offline full-detection pass over the epoch's ops, so escalated
    reports are exactly the full-mode reports of that epoch and a clean
    verdict skips closure work entirely.  ``sampling`` carries the
    budget/seed; its nested detector options are overridden by
    ``options`` so triage and escalation always agree.
    """

    def __init__(
        self,
        options: Optional[DetectorOptions] = None,
        *,
        strict: bool = True,
        gc: bool = True,
        expect_version: Optional[int] = None,
        poll_every: int = DEFAULT_POLL_EVERY,
        mode: str = "full",
        sampling: Optional[SamplerOptions] = None,
    ) -> None:
        if poll_every < 1:
            raise ValueError("poll_every must be >= 1")
        if mode not in ("full", "sampled"):
            raise ValueError(f"mode must be 'full' or 'sampled', got {mode!r}")
        self.options = options or DetectorOptions()
        self.mode = mode
        self.sampling = dataclasses.replace(
            sampling or SamplerOptions(), detector=self.options
        )
        self.gc = gc
        self.poll_every = poll_every
        self.profile = StreamProfile()
        self.decoder = AnyTraceDecoder(
            expect_version=expect_version, columnar=True, strict=strict
        )
        self.epochs: List[EpochSummary] = []
        #: session-global task table, shared by every epoch's trace
        self._tasks = self.decoder.trace.tasks
        self._epoch_index = 0
        self._retired_addresses: Set[object] = set()
        self._open: Set[str] = set()
        self._expected: Set[str] = set()
        self._ended: Set[str] = set()
        self._rounds_retired = 0
        self._edges_retired = 0
        self._finished = False
        self._attach(self.decoder.trace)

    def _attach(self, trace: Trace) -> None:
        """Point the analysis structures at (a fresh) epoch trace."""
        self.trace = trace
        options = self.options
        if self.mode == "sampled":
            # Triage keeps no live closure: detection work happens only
            # at epoch close, and only for flagged epochs.
            self.cafa = None
            self.conventional = None
        else:
            self.cafa = IncrementalHB(
                trace, options.model, dense_bits=options.dense_bits
            )
            self.conventional = IncrementalHB(
                trace, options.conventional_model, dense_bits=options.dense_bits
            )
        self.extractor = AccessExtractor(trace)
        self._processed = 0
        self._epoch_ops = 0

    # -- feeding -------------------------------------------------------

    def feed(self, chunk) -> int:
        """Ingest a chunk of v2 stream bytes/text; returns ops appended."""
        appended = self.decoder.feed(chunk)
        self._drain()
        return appended

    def feed_line(self, line) -> int:
        """Ingest one complete stream line; returns ops appended (0/1)."""
        appended = self.decoder.feed_line(line)
        self._drain()
        return appended

    def append(self, op) -> None:
        """In-process feed: hand over one already-decoded operation."""
        self.trace.append(op)
        self.profile.records_ingested += 1
        self._drain()

    def add_task(self, info: TaskInfo) -> None:
        """In-process feed: declare a task (before its first op)."""
        self.trace.add_task(info)
        self.profile.records_ingested += 1

    # -- the per-op drive ----------------------------------------------

    def _drain(self) -> None:
        # self.trace is re-read every iteration: ingesting an END op can
        # retire the epoch and swap in a fresh trace mid-drain.
        while self._processed < len(self.trace):
            i = self._processed
            self._processed += 1
            self._ingest(i, self.trace[i])
        self.profile.records_ingested = max(
            self.profile.records_ingested, self.decoder.records
        )

    def _ingest(self, i: int, op) -> None:
        if self.cafa is not None:
            self.cafa.ingest(i)
            self.conventional.ingest(i)
        self.extractor.feed(i, op)
        self.profile.ops_ingested += 1
        self._epoch_ops += 1
        kind = op.kind
        if kind is OpKind.BEGIN:
            self._open.add(op.task)
            self._expected.discard(op.task)
        elif kind is OpKind.END:
            self._open.discard(op.task)
            self._expected.discard(op.task)
            self._ended.add(op.task)
        elif kind is OpKind.SEND or kind is OpKind.SEND_AT_FRONT:
            if op.event not in self._ended:
                self._expected.add(op.event)
        elif kind is OpKind.FORK:
            if op.child not in self._ended:
                self._expected.add(op.child)
        elif kind is OpKind.PTR_READ or kind is OpKind.PTR_WRITE:
            if self._retired_addresses and op.address in self._retired_addresses:
                self.profile.cross_epoch_accesses += 1
        if self._epoch_ops % self.poll_every == 0:
            self._poll()
        if (
            self.gc
            and kind is OpKind.END
            and not self._open
            and not self._expected
        ):
            self._retire_epoch()

    def _poll(self) -> None:
        if self.cafa is None:
            return
        self.cafa.poll()
        self.conventional.poll()
        self.profile.polls += 1
        self.profile.fixpoint_rounds = (
            self._rounds_retired + self.cafa.rounds + self.conventional.rounds
        )
        self.profile.derived_edges = (
            self._edges_retired
            + self.cafa.derived_edges
            + self.conventional.derived_edges
        )
        closure = self.cafa.closure_bytes() + self.conventional.closure_bytes()
        self.profile.closure_bytes = closure
        if closure > self.profile.peak_closure_bytes:
            self.profile.peak_closure_bytes = closure

    def _detect(self) -> List[RaceReport]:
        """Run the batch detector over the current epoch's live state."""
        if self.cafa is None:
            return self._detect_sampled()
        with span("stream.detect", epoch=self._epoch_index):
            self._poll()
            detector = UseFreeDetector(
                self.trace,
                self.options,
                hb=self.cafa.relation(),
                accesses=self.extractor.index(),
                conventional_hb=self.conventional.relation(),
            )
            return detector.detect().reports

    def _detect_sampled(self) -> List[RaceReport]:
        """Sampled-mode epoch close: screen a budgeted pair sample, and
        only a flagged epoch pays for an offline full-detection pass.

        The escalation runs the unmodified batch detector over exactly
        the epoch's ops, so escalated reports are byte-identical to the
        full-mode reports of that epoch; a clean verdict means no
        sampled pair survived the screens (with an exhaustive budget
        that proves the epoch reports nothing at all).
        """
        with span("stream.sample", epoch=self._epoch_index):
            sampled = detect_sampled(
                self.trace, self.sampling, accesses=self.extractor.index()
            )
        self.profile.sampled_pairs += sampled.profile.pairs_sampled
        self.profile.sampled_suspects += sampled.profile.suspects
        if not sampled.flagged:
            return []
        self.profile.escalations += 1
        with span("stream.escalate", epoch=self._epoch_index):
            detector = UseFreeDetector(
                self.trace, self.options, accesses=self.extractor.index()
            )
            return detector.detect().reports

    def detect_now(self) -> List[RaceReport]:
        """Provisional reports for the *open* epoch (see module docs:
        later records can only demote provisional races to ordered;
        epoch retirement / :meth:`finish` emit the authoritative set).
        """
        return self._detect()

    def _close_epoch(self, retired: bool) -> EpochSummary:
        reports = self._detect()
        closure = 0
        if self.cafa is not None:
            closure = (
                self.cafa.closure_bytes() + self.conventional.closure_bytes()
            )
        summary = EpochSummary(
            index=self._epoch_index,
            ops=self._epoch_ops,
            reports=reports,
            closure_bytes=closure,
            retired=retired,
        )
        self.epochs.append(summary)
        self.profile.reports_emitted += len(reports)
        return summary

    def _retire_epoch(self) -> None:
        with span("stream.epoch_retire", epoch=self._epoch_index):
            self._retire_epoch_inner()

    def _retire_epoch_inner(self) -> None:
        self._close_epoch(retired=True)
        self.profile.epochs_retired += 1
        # Remember the epoch's pointer slots so a (model-violating)
        # access from a later epoch is surfaced, not misanalyzed.
        for rec in self.extractor.frees:
            self._retired_addresses.add(rec.address)
        for rec in self.extractor.allocs:
            self._retired_addresses.add(rec.address)
        for rec in self.extractor.uses:
            self._retired_addresses.add(rec.address)
        self.profile.retired_addresses = len(self._retired_addresses)
        if self.cafa is not None:
            self._rounds_retired += (
                self.cafa.rounds + self.conventional.rounds
            )
            self._edges_retired += (
                self.cafa.derived_edges + self.conventional.derived_edges
            )
        # Drop the epoch: fresh trace/store (releasing the closure
        # chunks and interned columns with it), fresh analysis state.
        # The shared task table survives; the decoder keeps its
        # stream-level interning and appends to the new store.
        self._epoch_index += 1
        old, done = self.trace, self._processed
        fresh = Trace(columnar=old.store is not None)
        fresh.tasks = self._tasks
        self.decoder.trace = fresh
        self._attach(fresh)
        self.profile.closure_bytes = 0
        # A chunked feed may have decoded ops past the quiescence point
        # before the drive caught up; they belong to the new epoch.
        for j in range(done, len(old)):
            fresh.append(old[j])

    # -- completion ----------------------------------------------------

    def finish(self) -> List[RaceReport]:
        """Flush buffered input, close out the last epoch, and return
        every authoritative report of the session (in epoch order)."""
        if not self._finished:
            self._finished = True
            self.decoder.flush()
            self._drain()
            if self._epoch_ops or not self.epochs:
                self._close_epoch(retired=False)
        return self.reports()

    def reports(self) -> List[RaceReport]:
        """All authoritative reports recorded so far, in epoch order."""
        out: List[RaceReport] = []
        for epoch in self.epochs:
            out.extend(epoch.reports)
        return out
