"""Ingestion transports: file tail, stdin, and socket servers.

Three ways bytes reach the streaming layer, all producing plain
``bytes`` chunks for a decoder/router to consume:

* :func:`tail_chunks` — drain a file (or any ``read``-able) and,
  under ``follow=True``, keep polling it for growth.  Polling backs
  off **exponentially** (:class:`Backoff`) between empty reads instead
  of busy-spinning at a fixed interval: an idle tail costs a handful
  of wakeups per doubling period, and the first byte of new data
  resets the delay so a busy tail stays responsive.
* :class:`SocketSource` — a Unix-domain or TCP listener accepting
  many concurrent connections (one per uploading device, say), each
  read by its own thread; chunks surface on a single bounded event
  queue in arrival order, tagged with their connection id.  The
  bounded queue is the transport end of the daemon's backpressure
  chain: when the router stalls, reader threads stall, and the kernel
  socket buffers throttle the senders.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from typing import Callable, Iterator, Optional, Tuple

#: first sleep of an idle tail; short enough that a just-written byte
#: is picked up promptly
DEFAULT_BACKOFF_INITIAL = 0.05
#: ceiling of the exponential backoff
DEFAULT_BACKOFF_CAP = 0.5


class Backoff:
    """Exponential sleep schedule with a cap, counted for tests.

    ``wait`` sleeps the current delay and doubles it (up to ``cap``);
    ``reset`` drops back to ``initial``.  :attr:`sleep_count` and
    :attr:`slept_total` expose exactly how much polling happened —
    the busy-poll regression test counts them.
    """

    def __init__(
        self,
        initial: float = DEFAULT_BACKOFF_INITIAL,
        cap: float = DEFAULT_BACKOFF_CAP,
        factor: float = 2.0,
    ) -> None:
        if initial <= 0:
            raise ValueError(f"initial must be > 0, got {initial}")
        if cap < initial:
            raise ValueError(f"cap {cap} must be >= initial {initial}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.initial = initial
        self.cap = cap
        self.factor = factor
        self.current = initial
        self.sleep_count = 0
        self.slept_total = 0.0

    def wait(self, sleep: Callable[[float], None] = time.sleep) -> float:
        """Sleep the current delay; returns it and advances the schedule."""
        delay = self.current
        sleep(delay)
        self.sleep_count += 1
        self.slept_total += delay
        self.current = min(self.current * self.factor, self.cap)
        return delay

    def reset(self) -> None:
        self.current = self.initial


def tail_chunks(
    read: Callable[[int], bytes],
    follow: bool = False,
    backoff: Optional[Backoff] = None,
    sleep: Callable[[float], None] = time.sleep,
    should_stop: Optional[Callable[[], bool]] = None,
    chunk_size: int = 1 << 16,
) -> Iterator[bytes]:
    """Yield non-empty chunks from ``read(chunk_size)``.

    Without ``follow`` the generator ends at the first empty read
    (EOF).  With it, an empty read sleeps the backoff schedule and
    retries — the ``tail -f`` shape — until ``should_stop()`` goes
    true.  Any data resets the backoff.  Read errors propagate to the
    caller (the stream CLI turns stream damage into salvage there).
    """
    if backoff is None:
        backoff = Backoff()
    while True:
        chunk = read(chunk_size)
        if chunk:
            backoff.reset()
            yield chunk
            continue
        if not follow:
            return
        if should_stop is not None and should_stop():
            return
        backoff.wait(sleep)


# ---------------------------------------------------------------------------
# Socket ingestion
# ---------------------------------------------------------------------------


#: events surfaced by SocketSource: ("open", conn_id) / ("chunk",
#: conn_id, bytes) / ("close", conn_id)
SocketEvent = Tuple


class SocketSource:
    """Accepts connections on one listening socket; merges their bytes
    into a single bounded event queue (see the module docstring).

    Construct via :meth:`unix` or :meth:`tcp`, iterate
    :meth:`events`, and :meth:`stop` to tear down.  ``conn_id`` values
    are ``"conn-1"``, ``"conn-2"``, ... in accept order.
    """

    def __init__(self, listener: socket.socket, unlink: Optional[str] = None,
                 queue_events: int = 1024) -> None:
        self._listener = listener
        self._unlink = unlink
        self._events: "queue.Queue[SocketEvent]" = queue.Queue(
            maxsize=queue_events
        )
        self._threads: list = []
        self._stopping = threading.Event()
        self._next_id = 0
        #: transport counters for the live metrics endpoint; guarded by
        #: one lock because accept and reader threads all write them
        self._stats_lock = threading.Lock()
        self.connections_accepted = 0
        self.connections_open = 0
        self.chunks_received = 0
        self.bytes_received = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="socket-accept"
        )
        self._accept_thread.start()

    # -- constructors --------------------------------------------------

    @classmethod
    def unix(cls, path: str, backlog: int = 16) -> "SocketSource":
        """Listen on a Unix-domain socket at ``path`` (replaced if a
        stale socket file is present)."""
        if os.path.exists(path):
            os.unlink(path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(backlog)
        listener.settimeout(0.2)
        return cls(listener, unlink=path)

    @classmethod
    def tcp(cls, host: str, port: int, backlog: int = 16) -> "SocketSource":
        """Listen on ``host:port`` (port 0 picks a free port; see
        :attr:`address`)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(backlog)
        listener.settimeout(0.2)
        return cls(listener)

    @property
    def address(self):
        """The bound address (``(host, port)`` for TCP, path for Unix)."""
        return self._listener.getsockname()

    # -- the accept / reader threads -----------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us during stop()
            self._next_id += 1
            conn_id = f"conn-{self._next_id}"
            with self._stats_lock:
                self.connections_accepted += 1
                self.connections_open += 1
            self._events.put(("open", conn_id))
            thread = threading.Thread(
                target=self._reader_loop,
                args=(conn, conn_id),
                daemon=True,
                name=f"socket-read-{conn_id}",
            )
            self._threads.append(thread)
            thread.start()

    def _reader_loop(self, conn: socket.socket, conn_id: str) -> None:
        try:
            conn.settimeout(0.2)
            while not self._stopping.is_set():
                try:
                    chunk = conn.recv(1 << 16)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not chunk:
                    break
                with self._stats_lock:
                    self.chunks_received += 1
                    self.bytes_received += len(chunk)
                self._events.put(("chunk", conn_id, chunk))
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._stats_lock:
                self.connections_open -= 1
            self._events.put(("close", conn_id))

    # -- consumer surface ----------------------------------------------

    def events(self, timeout: float = 0.2) -> Iterator[SocketEvent]:
        """Blocking event iterator; yields ``None`` every ``timeout``
        seconds of silence so the caller can check stop conditions."""
        while True:
            try:
                yield self._events.get(timeout=timeout)
            except queue.Empty:
                yield None

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._unlink and os.path.exists(self._unlink):
            try:
                os.unlink(self._unlink)
            except OSError:
                pass
        self._accept_thread.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=2.0)
