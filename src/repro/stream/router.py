"""The sharded session router: the daemon's demultiplexing front end.

``SessionRouter`` is what turns the single-session
:class:`~repro.stream.service.StreamAnalyzer` into a multi-session
service.  Bytes arrive on one or more *channels* (a file tail, stdin,
one socket connection each); every channel demultiplexes its
session-frame envelope (:mod:`repro.trace.envelope`) — or treats a
plain, un-enveloped trace stream as a single anonymous session — and
the router consistent-hashes each session id onto one of ``N`` shard
worker processes (:class:`repro.parallel.WorkerPool`).  Each shard
runs an ordinary ``StreamAnalyzer`` per session, so per-session
analysis never crosses a process boundary and the sharded reports are
**byte-identical** to a single-process run of the same streams.

Backpressure is end to end: shard inboxes are bounded queues, so a
shard that falls behind blocks the router's dispatch, which stops the
transport from being read.  ``drain()`` is the graceful shutdown —
every shard finishes its open sessions authoritatively
(``StreamAnalyzer.finish``) and ships back per-session
:class:`SessionReport`\\ s plus its merged profile; the router
assembles them into one :class:`DaemonReport` with deterministic
(session-sorted) ordering.

``shards=0`` runs the same shard code *inline* in the calling
process — the zero-worker reference the differential tests compare
the multi-process daemon against.

A session whose stream is damaged is isolated: under ``strict=True``
its :class:`SessionReport` records the error (and salvages nothing);
under ``strict=False`` the valid prefix is analyzed.  Either way the
other sessions on the shard are untouched — a daemon must not let one
corrupt uploader poison its neighbours.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..detect import DetectorOptions, SamplerOptions
from ..obs.metrics import Histogram, MetricsSnapshot, merge_snapshots
from ..obs.spans import span
from ..parallel import (
    DEFAULT_QUEUE_SIZE,
    DEFAULT_TELEMETRY_INTERVAL,
    ShardRing,
    WorkerPool,
    WorkerProfile,
)
from ..trace import TraceError, TraceFormatError
from ..trace.envelope import MUX_FIRST_BYTE, MuxDecoder
from .service import StreamAnalyzer, StreamProfile, merge_profiles


@dataclass
class SessionReport:
    """One session's authoritative outcome."""

    session: str
    shard: int
    ops: int
    records: int
    #: ``str()`` of every authoritative race report, in epoch order
    reports: List[str]
    #: True when an END frame closed the session; False when the
    #: daemon's drain closed it (stream may have been mid-session)
    ended: bool
    degraded: bool = False
    error: Optional[str] = None
    profile: StreamProfile = field(default_factory=StreamProfile)

    def as_dict(self) -> dict:
        import dataclasses

        out = dataclasses.asdict(self)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SessionReport":
        data = dict(data)
        data["profile"] = StreamProfile(**data.get("profile", {}))
        return cls(**data)

    def format(self) -> str:
        flags = []
        if not self.ended:
            flags.append("drained mid-session")
        if self.degraded:
            flags.append("degraded")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        lines = [
            f"session {self.session} (shard {self.shard}): "
            f"{self.ops} ops, {len(self.reports)} reports{suffix}"
        ]
        if self.error:
            lines.append(f"  error: {self.error}")
        lines.extend(f"  {report}" for report in self.reports)
        return "\n".join(lines)


@dataclass
class DaemonReport:
    """Everything one daemon run produced, deterministically ordered."""

    shards: int
    #: session id -> report, iterated in sorted(session) order
    sessions: Dict[str, SessionReport]
    #: per-shard merged profiles, in shard order
    shard_profiles: List[StreamProfile]
    #: per-shard worker accounting (pid, messages, busy seconds)
    worker_profiles: List[WorkerProfile]
    #: frames the router dispatched (data + end)
    frames_routed: int = 0
    bytes_routed: int = 0

    @property
    def merged(self) -> StreamProfile:
        return merge_profiles(self.shard_profiles)

    def reports_of(self, session: str) -> List[str]:
        return self.sessions[session].reports

    def format(self) -> str:
        lines = [
            f"daemon: {len(self.sessions)} sessions over "
            f"{self.shards} shard(s), {self.frames_routed} frames, "
            f"{self.bytes_routed} bytes routed"
        ]
        for sid in sorted(self.sessions):
            lines.append(self.sessions[sid].format())
        lines.append(self.merged.format())
        return "\n".join(lines)

    def as_dict(self) -> dict:
        import dataclasses

        return {
            "shards": self.shards,
            "frames_routed": self.frames_routed,
            "bytes_routed": self.bytes_routed,
            "sessions": {
                sid: report.as_dict()
                for sid, report in sorted(self.sessions.items())
            },
            "shard_profiles": [
                dataclasses.asdict(p) for p in self.shard_profiles
            ],
            "workers": [
                dataclasses.asdict(w) for w in self.worker_profiles
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict) -> "DaemonReport":
        return cls(
            shards=data["shards"],
            sessions={
                sid: SessionReport.from_dict(rep)
                for sid, rep in data.get("sessions", {}).items()
            },
            shard_profiles=[
                StreamProfile(**p) for p in data.get("shard_profiles", [])
            ],
            worker_profiles=[
                WorkerProfile(**w) for w in data.get("workers", [])
            ],
            frames_routed=data.get("frames_routed", 0),
            bytes_routed=data.get("bytes_routed", 0),
        )


# ---------------------------------------------------------------------------
# The shard worker (runs in a child process; must stay picklable)
# ---------------------------------------------------------------------------


@dataclass
class _ShardConfig:
    """Per-daemon analyzer settings, shipped to every shard once."""

    gc: bool = True
    strict: bool = True
    expect_version: Optional[int] = None
    options: Optional[DetectorOptions] = None
    #: record feed-to-detect latencies and ship telemetry snapshots
    metrics: bool = False
    #: "full" or "sampled" — every session analyzer's detection mode
    mode: str = "full"
    #: sampled-mode budget/seed (None = the sampler's defaults)
    sampling: Optional["SamplerOptions"] = None


class _ShardState:
    def __init__(self, index: int, config: _ShardConfig) -> None:
        self.index = index
        self.config = config
        self.analyzers: Dict[str, StreamAnalyzer] = {}
        self.done: Dict[str, SessionReport] = {}
        self.frames_handled = 0
        #: dispatch-stamp to handled latency of data frames (queue wait
        #: + decode + incremental analysis), the daemon's p50/p95/p99
        self.feed_latency: Optional[Histogram] = (
            Histogram() if config.metrics else None
        )


def _shard_init(name: str, config: _ShardConfig) -> _ShardState:
    # worker names are "shard-0", "shard-1", ...; the numeric tail is
    # the shard's ring index
    tail = name.rsplit("-", 1)[-1]
    return _ShardState(int(tail) if tail.isdigit() else 0, config)


def _close_session(
    state: _ShardState, sid: str, analyzer: StreamAnalyzer, ended: bool
) -> None:
    error = None
    degraded = False
    try:
        reports = [str(r) for r in analyzer.finish()]
    except (TraceFormatError, TraceError) as exc:
        reports = []
        error = str(exc)
        degraded = True
    if analyzer.decoder.degraded:
        degraded = True
        error = error or str(analyzer.decoder.error)
    state.done[sid] = SessionReport(
        session=sid,
        shard=state.index,
        ops=analyzer.profile.ops_ingested,
        records=analyzer.profile.records_ingested,
        reports=reports,
        ended=ended,
        degraded=degraded,
        error=error,
        profile=analyzer.profile,
    )


def _shard_handle(state: _ShardState, msg: tuple) -> None:
    tag, sid = msg[0], msg[1]
    state.frames_handled += 1
    if tag == "data":
        analyzer = state.analyzers.get(sid)
        if analyzer is None:
            if sid in state.done:
                report = state.done[sid]
                report.degraded = True
                report.error = report.error or (
                    "data frames arrived after the session's END frame"
                )
                return
            config = state.config
            analyzer = state.analyzers[sid] = StreamAnalyzer(
                config.options,
                strict=config.strict,
                gc=config.gc,
                expect_version=config.expect_version,
                mode=config.mode,
                sampling=config.sampling,
            )
        try:
            analyzer.feed(msg[2])
        except (TraceFormatError, TraceError) as exc:
            # Session-level fault isolation: this stream is damaged
            # beyond its salvageable prefix; the shard's other
            # sessions must not be affected.
            del state.analyzers[sid]
            state.done[sid] = SessionReport(
                session=sid,
                shard=state.index,
                ops=analyzer.profile.ops_ingested,
                records=analyzer.profile.records_ingested,
                reports=[],
                ended=False,
                degraded=True,
                error=str(exc),
                profile=analyzer.profile,
            )
        if state.feed_latency is not None and len(msg) > 3:
            state.feed_latency.observe(time.monotonic() - msg[3])
    elif tag == "end":
        analyzer = state.analyzers.pop(sid, None)
        if analyzer is None:
            if sid in state.done:
                report = state.done[sid]
                report.degraded = True
                report.error = report.error or "duplicate END frame"
            else:
                state.done[sid] = SessionReport(
                    session=sid,
                    shard=state.index,
                    ops=0,
                    records=0,
                    reports=[],
                    ended=True,
                    degraded=True,
                    error="END frame for a session with no data",
                )
            return
        _close_session(state, sid, analyzer, ended=True)
    else:  # pragma: no cover - the router never sends anything else
        raise ValueError(f"unknown shard message {msg!r}")


def _shard_finish(state: _ShardState) -> Dict[str, SessionReport]:
    for sid in sorted(state.analyzers):
        _close_session(state, sid, state.analyzers.pop(sid), ended=False)
    return state.done


def _shard_telemetry(state: _ShardState) -> MetricsSnapshot:
    """One shard's live metrics snapshot (runs in the shard process;
    shipped to the router by the worker telemetry loop and merged into
    the daemon-wide ``/metrics`` view).

    Counter families aggregate the shard's :class:`StreamProfile`
    counters over *all* its sessions — open analyzers and closed
    reports alike — so the exported totals are monotonic across a
    session's whole lifecycle.
    """
    snap = MetricsSnapshot()
    shard = {"shard": str(state.index)}
    failed = sum(
        1 for report in state.done.values()
        if report.degraded or report.error
    )
    snap.gauge("repro_shard_sessions_active", float(len(state.analyzers)),
               labels=shard, help="sessions with open analyzers")
    snap.counter("repro_shard_sessions_finished_total",
                 float(len(state.done) - failed), labels=shard,
                 help="sessions closed without degradation")
    snap.counter("repro_shard_sessions_failed_total", float(failed),
                 labels=shard,
                 help="sessions closed degraded or in error")
    snap.counter("repro_shard_frames_handled_total",
                 float(state.frames_handled), labels=shard,
                 help="session frames (data + end) handled")
    open_profiles = [a.profile for a in state.analyzers.values()]
    merged = merge_profiles(
        open_profiles + [r.profile for r in state.done.values()]
    )
    for name, help_text in (
        ("ops_ingested", "trace operations analyzed"),
        ("records_ingested", "stream records decoded"),
        ("epochs_retired", "epochs dropped by quiescence GC"),
        ("reports_emitted", "authoritative race reports"),
        ("cross_epoch_accesses", "accesses to retired addresses"),
    ):
        snap.counter(f"repro_shard_{name}_total",
                     float(getattr(merged, name)), labels=shard,
                     help=help_text)
    snap.gauge(
        "repro_shard_closure_bytes",
        float(sum(p.closure_bytes for p in open_profiles)),
        labels=shard,
        help="live closure memory of the shard's open sessions",
    )
    if state.feed_latency is not None:
        snap.histogram(
            "repro_feed_latency_seconds", state.feed_latency.data(),
            help="dispatch-to-analyzed latency of session data frames",
        )
    return snap


# ---------------------------------------------------------------------------
# Channels: per-connection envelope state
# ---------------------------------------------------------------------------


class RouterChannel:
    """One byte-stream into the router (a file, stdin, one socket
    connection).  Sniffs its own framing: an enveloped stream carries
    its own session ids; a plain v1/v2/v3 stream becomes the single
    session named after the channel."""

    def __init__(self, router: "SessionRouter", name: str) -> None:
        self._router = router
        self.name = name
        self._mux: Optional[MuxDecoder] = None
        self._plain = False
        self._closed = False

    def feed(self, chunk: bytes) -> None:
        if self._closed:
            raise TraceError(f"channel {self.name!r} is closed")
        if not chunk:
            return
        if self._mux is None and not self._plain:
            if chunk[:1] == MUX_FIRST_BYTE:
                self._mux = MuxDecoder(strict=True)
            else:
                self._plain = True
        if self._plain:
            self._router._data(self.name, bytes(chunk))
            return
        for event in self._mux.feed(chunk):
            if event[0] == "data":
                self._router._data(event[1], event[2])
            elif event[0] == "end":
                self._router._end(event[1])
            else:  # finish
                self._router.finish_requested = True

    def close(self) -> None:
        """End of this channel's bytes.  A plain channel's EOF is its
        session's end (authoritative); an enveloped channel's sessions
        are ended by their END frames or at daemon drain."""
        if self._closed:
            return
        self._closed = True
        if self._plain:
            self._router._end(self.name)
        elif self._mux is not None:
            self._mux.flush()  # raises on a dangling partial frame


# ---------------------------------------------------------------------------
# The router
# ---------------------------------------------------------------------------


class SessionRouter:
    """See the module docstring."""

    def __init__(
        self,
        shards: int = 1,
        *,
        gc: bool = True,
        strict: bool = True,
        expect_version: Optional[int] = None,
        options: Optional[DetectorOptions] = None,
        queue_frames: int = DEFAULT_QUEUE_SIZE,
        vnodes: int = 64,
        metrics: bool = False,
        telemetry_interval: float = DEFAULT_TELEMETRY_INTERVAL,
        mode: str = "full",
        sampling: Optional[SamplerOptions] = None,
    ) -> None:
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        if mode not in ("full", "sampled"):
            raise ValueError(f"mode must be 'full' or 'sampled', got {mode!r}")
        self.shards = shards
        self.metrics = metrics
        config = _ShardConfig(
            gc=gc, strict=strict, expect_version=expect_version,
            options=options, metrics=metrics, mode=mode, sampling=sampling,
        )
        self.ring = ShardRing(max(shards, 1), vnodes=vnodes)
        self.queue_frames = queue_frames
        self.frames_routed = 0
        self.bytes_routed = 0
        self.sessions_seen: set = set()
        #: a FINISH frame arrived on some channel: the serve loop
        #: should stop feeding and drain
        self.finish_requested = False
        self._drained = False
        self._inline: Optional[_ShardState] = None
        self._pool: Optional[WorkerPool] = None
        if shards == 0:
            self._inline = _shard_init("shard-0", config)
        else:
            self._pool = WorkerPool(
                shards,
                init=_shard_init,
                handle=_shard_handle,
                finish=_shard_finish,
                init_args=(config,),
                queue_size=queue_frames,
                name="shard",
                telemetry=_shard_telemetry if metrics else None,
                telemetry_interval=telemetry_interval,
            )

    # -- channel / dispatch surface ------------------------------------

    def channel(self, name: str) -> RouterChannel:
        """A new input channel (one per transport connection)."""
        return RouterChannel(self, name)

    def feed(self, chunk: bytes) -> None:
        """Single-input convenience: feed the implicit default channel."""
        if not hasattr(self, "_default_channel"):
            self._default_channel = self.channel("session-0")
        self._default_channel.feed(chunk)

    def _dispatch(self, sid: str, msg: tuple) -> None:
        self.sessions_seen.add(sid)
        self.frames_routed += 1
        with span("daemon.dispatch"):
            if self._inline is not None:
                _shard_handle(self._inline, msg)
            else:
                self._pool.send(self.ring.shard_of(sid), msg)

    def _data(self, sid: str, payload: bytes) -> None:
        self.bytes_routed += len(payload)
        if self.metrics:
            # The dispatch stamp rides the message so the shard can
            # observe queue-wait + analysis latency end to end
            # (CLOCK_MONOTONIC is system-wide, so cross-process deltas
            # are meaningful).
            self._dispatch(sid, ("data", sid, payload, time.monotonic()))
        else:
            self._dispatch(sid, ("data", sid, payload))

    def _end(self, sid: str) -> None:
        self._dispatch(sid, ("end", sid))

    # public aliases for in-process feeding (tests, embedding)
    def data(self, sid: str, payload: bytes) -> None:
        self._data(sid, payload)

    def end_session(self, sid: str) -> None:
        self._end(sid)

    # -- live telemetry ------------------------------------------------

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The daemon-wide metrics view: router-level counters merged
        with the latest snapshot each shard shipped (or, inline,
        computed on the spot) plus the parent-side backpressure gauges
        (inbox depth vs. bound per shard).

        Shard counters lag by at most the telemetry interval; the
        router counters are exact at call time.  With ``metrics=False``
        the shard sections are absent and only the router counters
        (which cost nothing extra to keep) are reported.
        """
        snap = MetricsSnapshot()
        snap.counter("repro_router_frames_total", float(self.frames_routed),
                     help="session frames dispatched (data + end)")
        snap.counter("repro_router_bytes_total", float(self.bytes_routed),
                     help="session payload bytes dispatched")
        snap.counter("repro_router_sessions_total",
                     float(len(self.sessions_seen)),
                     help="distinct session ids routed")
        snap.gauge("repro_router_shards", float(self.shards),
                   help="configured shard worker processes")
        parts = [snap]
        if not self.metrics:
            return snap
        if self._inline is not None:
            parts.append(_shard_telemetry(self._inline))
        elif self._pool is not None:
            for index, worker in enumerate(self._pool.workers):
                shard = {"shard": str(index)}
                telemetry = worker.poll_telemetry()
                if telemetry is not None:
                    parts.append(telemetry)
                depth = worker.inbox_depth()
                if depth >= 0:
                    snap.gauge("repro_shard_queue_depth", float(depth),
                               labels=shard,
                               help="frames waiting in the shard inbox")
                snap.gauge("repro_shard_queue_bound",
                           float(worker.queue_size), labels=shard,
                           help="bounded inbox capacity (backpressure "
                           "threshold)")
        return merge_snapshots(parts)

    # -- shutdown ------------------------------------------------------

    def drain(self) -> DaemonReport:
        """Graceful shutdown: close the default channel if one is
        open, finish every session on every shard, and assemble the
        deterministic daemon report."""
        if self._drained:
            raise RuntimeError("router already drained")
        self._drained = True
        default = getattr(self, "_default_channel", None)
        if default is not None:
            default.close()
        sessions: Dict[str, SessionReport] = {}
        shard_profiles: List[StreamProfile] = []
        worker_profiles: List[WorkerProfile] = []
        with span("daemon.drain"):
            if self._inline is not None:
                done = _shard_finish(self._inline)
                sessions.update(done)
                shard_profiles.append(
                    merge_profiles(r.profile for r in done.values())
                )
            else:
                for done, profile in self._pool.drain():
                    sessions.update(done)
                    shard_profiles.append(
                        merge_profiles(r.profile for r in done.values())
                    )
                    worker_profiles.append(profile)
        return DaemonReport(
            shards=self.shards,
            sessions=sessions,
            shard_profiles=shard_profiles,
            worker_profiles=worker_profiles,
            frames_routed=self.frames_routed,
            bytes_routed=self.bytes_routed,
        )

    def terminate(self) -> None:
        """Hard stop (error paths); no reports are produced."""
        self._drained = True
        if self._pool is not None:
            self._pool.terminate()
