"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``record <app> -o trace.jsonl`` — run a §6.1 workload on the
  simulator and save its trace (the on-device collection step);
* ``detect <trace.jsonl>`` — offline analysis of a saved trace: build
  the happens-before relation, report use-free races;
* ``evaluate`` — reproduce Table 1 across all ten apps;
* ``slowdown`` — reproduce Figure 8;
* ``witness <trace.jsonl>`` — print an alternate schedule manifesting
  each reported race;
* ``stats <trace.jsonl>`` — happens-before graph statistics (edges per
  rule, fixpoint rounds) plus the trace store / decode profile;
  ``--stream`` adds the online analyzer's profile for the same file;
  ``--sparse`` adds a column-sparse v3 segment scan (bytes skipped);
* ``stream <trace.jsonl|->`` — online analysis: ingest a trace stream
  (v1/v2 text or v3 binary) incrementally (file, growing file with
  ``--follow``, or stdin) and emit race reports as epochs retire;
  ``--selftest`` replays a stock app record-by-record and checks
  online ≡ offline;
* ``serve`` — the sharded multi-session daemon: demultiplex
  session-enveloped streams (file, stdin, Unix/TCP socket) across
  worker processes, one online analyzer per session; ``--json`` saves
  the daemon report for ``stats --daemon`` aggregation;
* ``convert <src> <dst>`` — transcode a trace file between any two
  supported versions (v1/v2/v3, ``.gz`` transparent), streaming with
  constant memory; ``--salvage`` converts the valid prefix of a
  damaged file;
* ``dot <trace.jsonl>`` — Graphviz export of the happens-before graph;
* ``scaling-matrix`` — run the §6.4 analysis-time sweep over apps x
  scales and emit one JSON table;
* ``explore <app>`` — run a workload under many scheduler seeds and
  report detection stability;
* ``report`` — a full Markdown evaluation report with witnesses;
* ``apps`` — list the available application workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    build_witness,
    format_slowdowns,
    format_table1,
    paper_table1_rows,
    reproduce_figure8,
    reproduce_table1,
)
from .apps import ALL_APPS, make_app
from .detect import DetectorOptions, LowLevelDetector, UseFreeDetector
from .trace import load_trace_file, save_trace_file

#: CLI spelling -> on-disk trace format version
_FORMAT_VERSIONS = {"v1": 1, "v2": 2, "v3": 3}


def _add_format(parser: argparse.ArgumentParser, writing: bool) -> None:
    if writing:
        parser.add_argument(
            "--format",
            choices=sorted(_FORMAT_VERSIONS),
            default="v2",
            help="trace format version to write (default: v2)",
        )
    else:
        parser.add_argument(
            "--format",
            choices=sorted(_FORMAT_VERSIONS),
            default=None,
            help="require the trace file to be this format version "
            "(default: accept any supported version)",
        )


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--legacy-store",
        action="store_true",
        help="use the legacy object-list trace backend instead of the "
        "columnar store (differential-testing escape hatch)",
    )


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_memo_capacity(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memo-capacity",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="LRU bound of the happens-before query memo tables "
        "(0 = unbounded; default: 1048576 entries per table)",
    )


def _add_dense_bits(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dense-bits",
        action="store_true",
        help="store the happens-before closure as dense big-int bitsets "
        "(the legacy representation) instead of chunked sparse bitsets "
        "(differential-testing escape hatch; verdicts are identical)",
    )


def _load_input_trace(args):
    from .trace import TraceError

    expect = _FORMAT_VERSIONS[args.format] if args.format else None
    try:
        return load_trace_file(
            args.trace, expect_version=expect, columnar=not args.legacy_store
        )
    except TraceError as exc:
        print(
            f"{args.trace}: {exc}\n"
            "(a damaged or crash-truncated trace can be analyzed with "
            "'repro stream --salvage')",
            file=sys.stderr,
        )
        raise SystemExit(1) from None


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="background event load scale (1.0 approximates the paper)",
    )
    parser.add_argument("--seed", type=int, default=1, help="scheduler seed")


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_sampling(parser: argparse.ArgumentParser) -> None:
    from .detect import DEFAULT_BUDGET

    parser.add_argument(
        "--budget",
        type=_positive_int,
        default=DEFAULT_BUDGET,
        metavar="N",
        help="per-trace allowance of sampled (use, free) pair "
        f"inspections (default: {DEFAULT_BUDGET}; see docs/sampling.md)",
    )
    parser.add_argument(
        "--sample-seed",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="seed of the deterministic pair sampler (default: 0)",
    )


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the per-app pipelines (1 = serial)",
    )


def _cmd_apps(_args) -> int:
    for app in ALL_APPS:
        print(f"{app.name:<12} {app.description}")
        print(f"{'':<12} session: {app.session}")
    return 0


def _cmd_record(args) -> int:
    app = make_app(args.app, scale=args.scale, seed=args.seed)
    run = app.run(columnar=not args.legacy_store)
    save_trace_file(run.trace, args.output, version=_FORMAT_VERSIONS[args.format])
    print(
        f"recorded {args.app}: {len(run.trace)} operations, "
        f"{run.event_count} events -> {args.output} [{args.format}]"
    )
    return 0


def _cmd_detect(args) -> int:
    trace = _load_input_trace(args)
    detector = UseFreeDetector(
        trace,
        DetectorOptions(
            memo_capacity=args.memo_capacity, dense_bits=args.dense_bits
        ),
    )
    result = detector.detect()
    print(
        f"{len(trace)} operations, {len(trace.events())} events, "
        f"{result.dynamic_candidates} racy (use, free) pairs"
    )
    print(f"use-free races reported: {result.report_count()}")
    for report in result.reports:
        print(f"  {report}")
    if result.filtered_reports:
        print(f"filtered as commutative: {len(result.filtered_reports)}")
        for report in result.filtered_reports:
            print(f"  {report.key}  [{report.witnesses[0].filtered_by}]")
    if args.low_level:
        low = LowLevelDetector(trace, hb=detector.hb).detect()
        print(f"low-level baseline: {low.race_count()} conflicting-access races")
    return 0


def _cmd_witness(args) -> int:
    trace = load_trace_file(args.trace)
    detector = UseFreeDetector(
        trace, DetectorOptions(dense_bits=args.dense_bits)
    )
    result = detector.detect()
    if not result.reports:
        print("no use-free races to witness")
        return 0
    for report in result.reports:
        witness = build_witness(trace, detector.hb, report)
        print(witness.format())
        print()
    return 0


def _cmd_stats(args) -> int:
    import os

    from .hb import build_happens_before, hb_stats
    from .obs.spans import enable_tracing, span

    if args.daemon:
        # Aggregate a daemon run's JSON report (repro serve --json):
        # per-session outcomes plus the shard-merged stream profile.
        import json

        from .stream import DaemonReport

        with open(args.trace, "r", encoding="utf-8") as fp:
            report = DaemonReport.from_dict(json.load(fp))
        print(report.format())
        for profile in report.worker_profiles:
            print(profile.format())
        return 0

    recorder = enable_tracing() if args.trace_out else None

    trace = _load_input_trace(args)
    trace_profile = trace.profile(disk_bytes=os.path.getsize(args.trace))
    if not args.json:
        print(trace_profile.format())
    hb = build_happens_before(
        trace, memo_capacity=args.memo_capacity, dense_bits=args.dense_bits
    )
    # Run the detector so the query-side counters describe a real
    # workload rather than an idle relation.
    with span("detect.usefree", ops=len(trace)):
        UseFreeDetector(trace, hb=hb).detect()
    stats = hb_stats(trace, hb)
    if not args.json:
        print(stats.format())
    stream_profile = None
    if args.stream:
        from .stream import StreamAnalyzer
        from .trace.serialization import _open_binary_for

        analyzer = StreamAnalyzer()
        with _open_binary_for(args.trace, "r") as fp:
            read = getattr(fp, "read1", fp.read)
            while True:
                chunk = read(1 << 16)
                if not chunk:
                    break
                analyzer.feed(chunk)
        analyzer.finish()
        stream_profile = analyzer.profile
        if not args.json:
            print(stream_profile.format())
    sparse_stats = None
    if args.sparse:
        from .trace import SegmentReader, TraceError

        try:
            with SegmentReader(args.trace) as reader:
                for name in ("kinds", "times", "task_ids"):
                    reader.global_column(name)
                sparse_stats = reader.stats()
        except TraceError as exc:
            print(f"sparse scan: not a v3 segment file ({exc})",
                  file=sys.stderr)
            return 1
        if not args.json:
            print("column-sparse scan (global columns only):")
            print(sparse_stats.format())
    sample_profile = None
    if args.sampled:
        from .detect import SamplerOptions, detect_sampled

        with span("detect.sampled", ops=len(trace)):
            sampled = detect_sampled(
                trace,
                SamplerOptions(
                    budget=args.budget, seed=args.sample_seed, confirm=True
                ),
            )
        sample_profile = sampled.profile
        if not args.json:
            print(sample_profile.format())
    if args.json:
        import json

        from .obs import stats_document

        print(
            json.dumps(
                stats_document(
                    trace_profile=trace_profile,
                    hb_stats=stats,
                    stream_profile=stream_profile,
                    sparse_stats=sparse_stats,
                    sample_profile=sample_profile,
                ),
                indent=2,
                sort_keys=True,
            )
        )
    if recorder is not None:
        recorder.dump(args.trace_out)
        print(f"wrote {args.trace_out} ({len(recorder)} spans)",
              file=sys.stderr)
    return 0


def _cmd_triage(args) -> int:
    if args.curve:
        from .analysis import budget_curve

        curve = budget_curve(
            budgets=args.budgets,
            scale=args.scale,
            seed=args.seed,
            sample_seed=args.sample_seed,
            jobs=args.jobs,
        )
        print(curve.format())
        if args.json:
            _write_json_output(args.json, curve.to_json())
        return 0
    if not args.traces:
        print("triage: provide trace files or --curve", file=sys.stderr)
        return 2
    from .analysis import triage_corpus

    report = triage_corpus(
        args.traces,
        budget=args.budget,
        seed=args.sample_seed,
        salvage=args.salvage,
        jobs=args.jobs,
        columnar=not args.legacy_store,
    )
    print(report.format())
    if args.json:
        _write_json_output(args.json, report.to_json())
    return 1 if report.damaged and not args.salvage else 0


def _write_json_output(path: str, text: str) -> None:
    if path == "-":
        print(text)
        return
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(text + "\n")
    print(f"wrote {path}")


def _print_new_epochs(analyzer, printed: int) -> int:
    while printed < len(analyzer.epochs):
        epoch = analyzer.epochs[printed]
        label = "retired" if epoch.retired else "final"
        print(
            f"epoch {epoch.index} ({label}): {epoch.ops} ops, "
            f"{len(epoch.reports)} reports, "
            f"closure {epoch.closure_bytes} bytes"
        )
        for report in epoch.reports:
            print(f"  {report}")
        printed += 1
    return printed


def _cmd_stream(args) -> int:
    from .stream import StreamAnalyzer

    if args.selftest:
        from .analysis.soak import soak_app

        result = soak_app(
            args.app, scale=args.scale, seed=args.seed, gc=not args.no_gc
        )
        print(result.format())
        print(result.profile.format())
        if not result.identical:
            only_on = set(result.online) - set(result.offline)
            only_off = set(result.offline) - set(result.online)
            for line in sorted(only_on):
                print(f"  only online : {line}", file=sys.stderr)
            for line in sorted(only_off):
                print(f"  only offline: {line}", file=sys.stderr)
            return 1
        return 0

    if not args.trace:
        print(
            "stream: provide a trace path, '-' for stdin, or --selftest",
            file=sys.stderr,
        )
        return 2

    from .trace import TraceFormatError

    expect = _FORMAT_VERSIONS[args.format] if args.format else None
    analyzer = StreamAnalyzer(
        strict=not args.salvage,
        gc=not args.no_gc,
        expect_version=expect,
    )
    printed = 0
    try:
        if args.trace == "-":
            # Raw bytes off stdin.buffer: the decoder sniffs text (v1/v2)
            # vs binary (v3) from the first byte, and the chunk path lets
            # finish() rule on a crash-cut final record (a live pipe may
            # hand us half-written lines or frames).
            while True:
                chunk = sys.stdin.buffer.read1(1 << 16)
                if not chunk:
                    break
                analyzer.feed(chunk)
                printed = _print_new_epochs(analyzer, printed)
        else:
            from .stream.transport import DEFAULT_BACKOFF_INITIAL, Backoff
            from .trace.serialization import _STREAM_DAMAGE, _open_binary_for

            # --follow tails with capped exponential backoff: an idle
            # file costs ever-fewer wakeups (up to --poll-interval
            # apart) instead of a fixed-rate busy poll, and any new
            # data snaps the delay back down.
            cap = max(args.poll_interval, 0.001)
            backoff = Backoff(
                initial=min(DEFAULT_BACKOFF_INITIAL, cap), cap=cap
            )
            with _open_binary_for(args.trace, "r") as fp:
                read = getattr(fp, "read1", fp.read)
                while True:
                    try:
                        chunk = read(1 << 16)
                    except _STREAM_DAMAGE as exc:
                        analyzer.decoder.mark_damaged(exc)
                        break
                    if chunk:
                        backoff.reset()
                        analyzer.feed(chunk)
                        printed = _print_new_epochs(analyzer, printed)
                        continue
                    if not args.follow or analyzer.decoder.degraded:
                        break
                    backoff.wait()
        analyzer.finish()
    except TraceFormatError as exc:
        print(f"stream: {exc} (use --salvage to analyze the valid prefix)",
              file=sys.stderr)
        return 1
    printed = _print_new_epochs(analyzer, printed)
    if analyzer.decoder.degraded:
        print(
            f"warning: stream damaged, analyzed the valid prefix "
            f"({analyzer.decoder.error})",
            file=sys.stderr,
        )
    print(analyzer.profile.format())
    return 0


def _cmd_serve(args) -> int:
    from .obs import configure, configure_json_logging, get_logger
    from .parallel import WorkerCrash
    from .stream import SessionRouter, SocketSource
    from .trace import TraceError, TraceFormatError

    metrics_on = not args.no_metrics
    configure(enabled=metrics_on)
    configure_json_logging()
    log = get_logger("serve")

    expect = _FORMAT_VERSIONS[args.format] if args.format else None
    sampling = None
    if args.mode == "sampled":
        from .detect import SamplerOptions

        sampling = SamplerOptions(budget=args.budget, seed=args.sample_seed)
    router = SessionRouter(
        args.shards,
        gc=not args.no_gc,
        strict=not args.salvage,
        expect_version=expect,
        metrics=metrics_on,
        mode=args.mode,
        sampling=sampling,
    )
    source = None
    metrics_server = None
    status_server = None

    def provider():
        """The daemon-wide snapshot every scrape observes: router +
        shard metrics plus the transport-level connection counters."""
        snap = router.metrics_snapshot()
        if source is not None:
            snap.counter("repro_connections_total",
                         float(source.connections_accepted),
                         help="transport connections accepted")
            snap.gauge("repro_connections_open",
                       float(source.connections_open),
                       help="transport connections currently open")
            snap.counter("repro_transport_chunks_total",
                         float(source.chunks_received),
                         help="byte chunks read off connections")
            snap.counter("repro_transport_bytes_total",
                         float(source.bytes_received),
                         help="bytes read off connections")
        return snap

    if args.metrics_port is not None:
        from .obs.export import MetricsServer

        metrics_server = MetricsServer(provider, port=args.metrics_port)
        print(f"metrics on {metrics_server.url}/metrics", flush=True)
    if args.status_socket:
        from .obs.export import StatusSocketServer

        status_server = StatusSocketServer(provider, args.status_socket)

    def _stop_servers():
        if metrics_server is not None:
            metrics_server.stop()
        if status_server is not None:
            status_server.stop()

    try:
        if args.socket or args.tcp:
            if args.socket:
                source = SocketSource.unix(args.socket)
                where = args.socket
            else:
                host, _, port = args.tcp.rpartition(":")
                source = SocketSource.tcp(host or "127.0.0.1", int(port))
                where = "%s:%d" % source.address
            print(f"serving on {where} ({args.shards} shard(s); "
                  "send a FINISH frame to drain)", flush=True)
            log.info("daemon started",
                     extra={"listen": str(where), "shards": args.shards,
                            "metrics": metrics_on})
            import time

            channels = {}
            accepted = 0
            # Once a FINISH frame arrives, connections still flushing
            # their kernel buffers get a grace period to close before
            # the drain proceeds without them.
            finish_deadline = None
            for event in source.events():
                if event is not None:
                    tag = event[0]
                    if tag == "open":
                        accepted += 1
                        channels[event[1]] = router.channel(event[1])
                        log.info("connection open",
                                 extra={"connection": event[1]})
                    elif tag == "chunk":
                        channel = channels.get(event[1])
                        if channel is None:
                            continue  # connection's envelope is damaged
                        try:
                            channel.feed(event[2])
                        except (TraceFormatError, TraceError) as exc:
                            log.warning(
                                "session stream damaged",
                                extra={"connection": event[1],
                                       "error": str(exc),
                                       "salvage": args.salvage},
                            )
                            channels[event[1]] = None
                    elif tag == "close":
                        channel = channels.pop(event[1], None)
                        log.info("connection closed",
                                 extra={"connection": event[1]})
                        if channel is not None:
                            try:
                                channel.close()
                            except (TraceFormatError, TraceError) as exc:
                                log.warning(
                                    "session stream damaged at close",
                                    extra={"connection": event[1],
                                           "error": str(exc),
                                           "salvage": args.salvage},
                                )
                if router.finish_requested:
                    if finish_deadline is None:
                        finish_deadline = time.monotonic() + 10.0
                    if not channels or time.monotonic() > finish_deadline:
                        break
                if args.once and accepted and not channels:
                    break
        else:
            channel = router.channel(args.input or "stdin")
            try:
                if not args.input or args.input == "-":
                    while True:
                        chunk = sys.stdin.buffer.read1(1 << 16)
                        if not chunk:
                            break
                        channel.feed(chunk)
                else:
                    from .trace.serialization import _open_binary_for

                    with _open_binary_for(args.input, "r") as fp:
                        read = getattr(fp, "read1", fp.read)
                        while True:
                            chunk = read(1 << 16)
                            if not chunk:
                                break
                            channel.feed(chunk)
                channel.close()
            except (TraceFormatError, TraceError) as exc:
                log.error("input stream damaged",
                          extra={"input": args.input or "stdin",
                                 "error": str(exc)})
                print(f"serve: {exc}", file=sys.stderr)
                router.terminate()
                return 1
    except KeyboardInterrupt:
        log.info("interrupted, draining")
    except WorkerCrash as exc:
        log.error("worker crashed",
                  extra={"worker": exc.worker, "error": str(exc),
                         "remote_traceback": exc.detail})
        print(f"serve: {exc}", file=sys.stderr)
        router.terminate()
        return 1
    finally:
        if source is not None:
            source.stop()
        _stop_servers()
    try:
        report = router.drain()
    except WorkerCrash as exc:
        log.error("worker crashed during drain",
                  extra={"worker": exc.worker, "error": str(exc),
                         "remote_traceback": exc.detail})
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    log.info("daemon drained",
             extra={"sessions": len(report.sessions),
                    "frames": report.frames_routed,
                    "bytes": report.bytes_routed})
    for sid in sorted(report.sessions):
        session = report.sessions[sid]
        log.info("session end",
                 extra={"session": sid, "shard": session.shard,
                        "ops": session.ops, "reports": len(session.reports),
                        "ended": session.ended, "degraded": session.degraded,
                        "error": session.error})
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(report.as_dict(), fp, indent=2)
            fp.write("\n")
        print(f"wrote {args.json}")
    print(report.format())
    degraded = [s for s, r in report.sessions.items() if r.error]
    return 1 if degraded and not args.salvage else 0


def _sample_parts(key):
    """Split ``name{k="v",...}`` into (name, labels); our label values
    never contain commas or quotes."""
    name, _, rest = key.partition("{")
    labels = {}
    if rest:
        for part in rest[:-1].split(","):
            k, _, v = part.partition("=")
            labels[k] = v.strip('"')
    return name, labels


def _render_status(doc: dict, prev: Optional[dict], dt: float) -> str:
    """One refresh of the ``repro top`` terminal view from a
    ``repro-metrics/1`` status document (plus rates vs. the previous
    scrape when one is given)."""
    counters = doc.get("counters", {})
    gauges = doc.get("gauges", {})
    histograms = doc.get("histograms", {})

    def total(section: dict, name: str) -> float:
        return sum(
            value for key, value in section.items()
            if _sample_parts(key)[0] == name
        )

    def rate(name: str) -> str:
        if prev is None or dt <= 0:
            return "-"
        delta = total(counters, name) - total(prev.get("counters", {}), name)
        return f"{delta / dt:,.0f}/s"

    lines = [
        "repro daemon status",
        f"  shards {total(gauges, 'repro_router_shards'):.0f}"
        f"  sessions routed {total(counters, 'repro_router_sessions_total'):.0f}"
        f"  active {total(gauges, 'repro_shard_sessions_active'):.0f}"
        f"  finished {total(counters, 'repro_shard_sessions_finished_total'):.0f}"
        f"  failed {total(counters, 'repro_shard_sessions_failed_total'):.0f}",
        f"  frames {total(counters, 'repro_router_frames_total'):.0f}"
        f" ({rate('repro_router_frames_total')})"
        f"  bytes {total(counters, 'repro_router_bytes_total'):.0f}"
        f" ({rate('repro_router_bytes_total')})"
        f"  ops {total(counters, 'repro_shard_ops_ingested_total'):.0f}"
        f" ({rate('repro_shard_ops_ingested_total')})",
        f"  epochs retired {total(counters, 'repro_shard_epochs_retired_total'):.0f}"
        f"  reports {total(counters, 'repro_shard_reports_emitted_total'):.0f}"
        f"  connections open {total(gauges, 'repro_connections_open'):.0f}",
    ]
    for key, hist in sorted(histograms.items()):
        name, _labels = _sample_parts(key)
        if name != "repro_feed_latency_seconds" or not hist.get("count"):
            continue
        lines.append(
            f"  feed-to-detect latency: p50 {hist['p50'] * 1e3:.1f} ms"
            f"  p95 {hist['p95'] * 1e3:.1f} ms"
            f"  p99 {hist['p99'] * 1e3:.1f} ms"
            f"  ({hist['count']} frames)"
        )

    # Per-shard table keyed off whichever shard-labeled samples exist.
    shards = sorted(
        {
            labels["shard"]
            for section in (counters, gauges)
            for key in section
            for name, labels in (_sample_parts(key),)
            if "shard" in labels
        },
        key=lambda s: int(s) if s.isdigit() else 0,
    )
    if shards:
        lines.append("")
        lines.append(
            f"  {'shard':>5} {'active':>7} {'done':>6} {'failed':>6} "
            f"{'ops':>10} {'frames':>8} {'queue':>9}"
        )
        for shard in shards:
            def of(section, name, shard=shard):
                return section.get(f'{name}{{shard="{shard}"}}', 0.0)

            depth = of(gauges, "repro_shard_queue_depth")
            bound = of(gauges, "repro_shard_queue_bound")
            queue_cell = f"{depth:.0f}/{bound:.0f}" if bound else "-"
            lines.append(
                f"  {shard:>5} "
                f"{of(gauges, 'repro_shard_sessions_active'):>7.0f} "
                f"{of(counters, 'repro_shard_sessions_finished_total'):>6.0f} "
                f"{of(counters, 'repro_shard_sessions_failed_total'):>6.0f} "
                f"{of(counters, 'repro_shard_ops_ingested_total'):>10.0f} "
                f"{of(counters, 'repro_shard_frames_handled_total'):>8.0f} "
                f"{queue_cell:>9}"
            )
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import time

    from .obs.export import read_status_socket, scrape_http

    if bool(args.url) == bool(args.status_socket):
        print("top: provide exactly one of URL or --status-socket",
              file=sys.stderr)
        return 2

    def scrape() -> dict:
        if args.url:
            url = args.url
            if "://" not in url:
                url = f"http://{url}"
            return scrape_http(url, "/status.json")
        return read_status_socket(args.status_socket)

    try:
        doc = scrape()
    except OSError as exc:
        print(f"top: cannot reach the daemon: {exc}", file=sys.stderr)
        return 1
    if args.once:
        print(_render_status(doc, None, 0.0))
        return 0
    prev, prev_at = None, 0.0
    try:
        while True:
            now = time.monotonic()
            print("\x1b[2J\x1b[H", end="")
            print(_render_status(doc, prev, now - prev_at))
            prev, prev_at = doc, now
            time.sleep(args.interval)
            try:
                doc = scrape()
            except OSError as exc:
                print(f"top: daemon gone: {exc}", file=sys.stderr)
                return 0
    except KeyboardInterrupt:
        return 0


def _cmd_convert(args) -> int:
    from .trace import TraceError, convert_trace_file

    version = _FORMAT_VERSIONS[args.format]
    try:
        stats = convert_trace_file(
            args.src, args.dst, version=version, strict=not args.salvage
        )
    except TraceError as exc:
        print(
            f"convert: {exc} (use --salvage to convert the valid prefix "
            "of a damaged file)",
            file=sys.stderr,
        )
        return 1
    note = ""
    if stats.salvaged:
        note = f" (salvaged prefix; damage: {stats.error})"
    print(
        f"converted {args.src} [v{stats.source_version}] -> "
        f"{args.dst} [v{stats.target_version}]: "
        f"{stats.ops} ops, {stats.tasks} tasks{note}"
    )
    return 0


def _cmd_dot(args) -> int:
    from .hb import build_happens_before, to_dot

    trace = load_trace_file(args.trace)
    hb = build_happens_before(trace)
    text = to_dot(trace, hb, collapse_tasks=not args.full)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fp:
            fp.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_evaluate(args) -> int:
    table = reproduce_table1(scale=args.scale, seed=args.seed, jobs=args.jobs)
    print(format_table1(table, paper_table1_rows()))
    return 0


def _cmd_slowdown(args) -> int:
    print(
        format_slowdowns(
            reproduce_figure8(scale=args.scale, seed=args.seed, jobs=args.jobs)
        )
    )
    return 0


def _cmd_scaling_matrix(args) -> int:
    from .analysis import scaling_matrix

    if args.apps:
        known = {app.name: app for app in ALL_APPS}
        unknown = [name for name in args.apps if name not in known]
        if unknown:
            print(
                f"unknown app(s): {', '.join(unknown)} "
                f"(see `python -m repro apps`)",
                file=sys.stderr,
            )
            return 2
        apps = [known[name] for name in args.apps]
    else:
        apps = None
    matrix = scaling_matrix(
        apps=apps,
        scales=args.scales,
        seed=args.seed,
        jobs=args.jobs,
        dense_bits=args.dense_bits,
    )
    text = matrix.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fp:
            fp.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_explore(args) -> int:
    from .analysis import explore_seeds
    from .apps import make_app

    app_cls = type(make_app(args.app))
    seeds = list(range(args.seeds))
    result = explore_seeds(
        app_cls, seeds=seeds, scale=args.scale, jobs=args.jobs
    )
    print(
        f"{args.app}: {result.reports_per_seed} reports across seeds "
        f"{seeds}; stability {result.stability:.0%}"
    )
    for key in result.stable_races:
        print(f"  stable: {key}")
    for key in result.flaky_races:
        print(f"  FLAKY : {key} ({result.occurrences[key]}/{len(seeds)} seeds)")
    return 0


def _cmd_report(args) -> int:
    from .analysis.report_doc import generate_report

    text = generate_report(
        scale=args.scale,
        seed=args.seed,
        include_slowdowns=not args.no_slowdowns,
        jobs=args.jobs,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fp:
            fp.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAFA: race detection for event-driven mobile applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list application workloads").set_defaults(
        fn=_cmd_apps
    )

    record = sub.add_parser("record", help="run a workload and save its trace")
    record.add_argument("app", help="application name (see `apps`)")
    record.add_argument("-o", "--output", required=True, help="output .jsonl path")
    _add_scale(record)
    _add_format(record, writing=True)
    _add_store_options(record)
    record.set_defaults(fn=_cmd_record)

    detect = sub.add_parser("detect", help="offline analysis of a saved trace")
    detect.add_argument("trace", help="trace .jsonl path")
    detect.add_argument(
        "--low-level",
        action="store_true",
        help="also run the conflicting-access baseline",
    )
    _add_format(detect, writing=False)
    _add_store_options(detect)
    _add_memo_capacity(detect)
    _add_dense_bits(detect)
    detect.set_defaults(fn=_cmd_detect)

    witness = sub.add_parser(
        "witness", help="print violating schedules for each reported race"
    )
    witness.add_argument("trace", help="trace .jsonl path")
    _add_dense_bits(witness)
    witness.set_defaults(fn=_cmd_witness)

    stats = sub.add_parser(
        "stats", help="happens-before graph statistics for a saved trace"
    )
    stats.add_argument("trace", help="trace .jsonl path")
    stats.add_argument(
        "--stream",
        action="store_true",
        help="also replay the file through the online streaming "
        "analyzer and print its profile",
    )
    stats.add_argument(
        "--sparse",
        action="store_true",
        help="also column-sparse-scan the file as a v3 segment "
        "(mmap) and report bytes read vs skipped",
    )
    stats.add_argument(
        "--sampled",
        action="store_true",
        help="also run the sampled detector (confirm mode) and report "
        "its budget/screen/confirmation counters (the `sampling` "
        "section of --json)",
    )
    stats.add_argument(
        "--daemon",
        action="store_true",
        help="treat the positional argument as a daemon report JSON "
        "(from `repro serve --json`) and print its per-session and "
        "shard-aggregated statistics",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document (stable "
        "repro-stats/1 schema) covering every computed section "
        "instead of the human-readable text",
    )
    stats.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record span tracing around the hot phases and write a "
        "Chrome trace_event JSON (open in chrome://tracing or "
        "Perfetto)",
    )
    _add_format(stats, writing=False)
    _add_store_options(stats)
    _add_memo_capacity(stats)
    _add_dense_bits(stats)
    _add_sampling(stats)
    stats.set_defaults(fn=_cmd_stats)

    triage = sub.add_parser(
        "triage",
        help="two-stage corpus triage: budgeted pair sampling per "
        "trace, full detection only on flagged traces "
        "(see docs/sampling.md)",
    )
    triage.add_argument(
        "traces",
        nargs="*",
        metavar="TRACE",
        help="saved trace files (any supported format); omit with "
        "--curve",
    )
    triage.add_argument(
        "--salvage",
        action="store_true",
        help="triage the decodable prefix of damaged traces instead "
        "of reporting them as damaged (items are marked 'salvaged')",
    )
    triage.add_argument(
        "--json",
        metavar="PATH",
        help="also write the corpus report (or the --curve sweep) as "
        "JSON ('-' for stdout)",
    )
    triage.add_argument(
        "--curve",
        action="store_true",
        help="instead of triaging files, sweep sampling budgets "
        "across the ten-app catalog and print the recorded "
        "precision/recall-vs-budget curve",
    )
    triage.add_argument(
        "--budgets",
        type=_positive_int,
        nargs="+",
        metavar="N",
        help="budgets of the --curve sweep (default: 1 2 4 8 16 64 256)",
    )
    triage.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="--curve workload scale (default: 0.1)",
    )
    triage.add_argument(
        "--seed", type=int, default=0, help="--curve scheduler seed"
    )
    _add_sampling(triage)
    _add_jobs(triage)
    _add_store_options(triage)
    triage.set_defaults(fn=_cmd_triage)

    stream = sub.add_parser(
        "stream",
        help="online streaming analysis of a trace stream "
        "(v1/v2 text or v3 binary; see docs/streaming.md)",
    )
    stream.add_argument(
        "trace",
        nargs="?",
        help="trace stream path, or '-' for stdin "
        "(omit with --selftest)",
    )
    stream.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing the file for new records after reaching "
        "its current end (Ctrl-C to stop)",
    )
    stream.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="ceiling of the --follow poll backoff: an idle file is "
        "polled with exponentially growing sleeps capped here "
        "(default: 0.5)",
    )
    stream.add_argument(
        "--salvage",
        action="store_true",
        help="degrade gracefully on a damaged stream: analyze the "
        "valid prefix instead of failing (strict=False decoding)",
    )
    stream.add_argument(
        "--no-gc",
        action="store_true",
        help="disable epoch retirement (memory grows with the session "
        "as in offline mode)",
    )
    stream.add_argument(
        "--selftest",
        action="store_true",
        help="replay a stock app record-by-record and verify online "
        "reports are byte-identical to offline ones",
    )
    stream.add_argument(
        "--app",
        default="connectbot",
        help="application for --selftest (default: connectbot)",
    )
    stream.add_argument(
        "--scale", type=float, default=0.02, help="--selftest workload scale"
    )
    stream.add_argument(
        "--seed", type=int, default=1, help="--selftest scheduler seed"
    )
    _add_format(stream, writing=False)
    stream.set_defaults(fn=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="sharded multi-session streaming daemon: demultiplex "
        "session-enveloped trace streams across worker processes "
        "(see docs/streaming.md)",
    )
    serve.add_argument(
        "input",
        nargs="?",
        help="enveloped (or plain single-session) stream file, or '-' "
        "for stdin (omit with --socket/--tcp)",
    )
    serve.add_argument(
        "--socket",
        metavar="PATH",
        help="listen on a Unix-domain socket at PATH (one session "
        "stream, enveloped or plain, per connection)",
    )
    serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="listen on a TCP socket (port 0 picks a free port, "
        "printed at startup)",
    )
    serve.add_argument(
        "--shards",
        type=_nonnegative_int,
        default=1,
        help="worker processes to consistent-hash sessions across "
        "(0 = analyze inline in the serving process; default: 1)",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="socket modes: drain and exit once every accepted "
        "connection has closed (instead of waiting for a FINISH "
        "frame or Ctrl-C)",
    )
    serve.add_argument(
        "--no-gc",
        action="store_true",
        help="disable per-session epoch retirement",
    )
    serve.add_argument(
        "--salvage",
        action="store_true",
        help="tolerate damaged session streams: analyze each valid "
        "prefix and exit 0 even when sessions degrade",
    )
    serve.add_argument(
        "--json",
        metavar="PATH",
        help="also write the daemon report as JSON (aggregate later "
        "with `repro stats --daemon PATH`)",
    )
    serve.add_argument(
        "--metrics-port",
        type=_nonnegative_int,
        default=None,
        metavar="PORT",
        help="serve live Prometheus /metrics and JSON /status.json on "
        "this HTTP port (0 picks a free port, printed at startup)",
    )
    serve.add_argument(
        "--status-socket",
        metavar="PATH",
        help="also serve the JSON status document over a Unix-domain "
        "socket at PATH (one document per connection)",
    )
    serve.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable telemetry entirely: no latency recording, no "
        "shard snapshots (the instrumentation-overhead escape hatch)",
    )
    serve.add_argument(
        "--mode",
        choices=("full", "sampled"),
        default="full",
        help="per-session detection mode: 'sampled' triages each "
        "epoch with the budgeted pair sampler and escalates flagged "
        "epochs to full detection (see docs/sampling.md)",
    )
    _add_sampling(serve)
    _add_format(serve, writing=False)
    serve.set_defaults(fn=_cmd_serve)

    top = sub.add_parser(
        "top",
        help="live terminal view of a running daemon's metrics "
        "(scrapes --metrics-port or --status-socket)",
    )
    top.add_argument(
        "url",
        nargs="?",
        help="the daemon's metrics endpoint, e.g. 127.0.0.1:9100 "
        "(omit with --status-socket)",
    )
    top.add_argument(
        "--status-socket",
        metavar="PATH",
        help="scrape the daemon's Unix-domain status socket instead "
        "of HTTP",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default: 2.0)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (no screen clearing; "
        "rates need two scrapes and show as '-')",
    )
    top.set_defaults(fn=_cmd_top)

    convert = sub.add_parser(
        "convert",
        help="transcode a trace file between format versions "
        "(streaming, constant memory)",
    )
    convert.add_argument("src", help="input trace path (any version, .gz ok)")
    convert.add_argument("dst", help="output trace path (.gz compresses)")
    convert.add_argument(
        "--format",
        choices=sorted(_FORMAT_VERSIONS),
        default="v3",
        help="trace format version to write (default: v3)",
    )
    convert.add_argument(
        "--salvage",
        action="store_true",
        help="convert the valid prefix of a damaged/truncated input "
        "instead of failing",
    )
    convert.set_defaults(fn=_cmd_convert)

    dot = sub.add_parser(
        "dot", help="export the happens-before graph as Graphviz"
    )
    dot.add_argument("trace", help="trace .jsonl path")
    dot.add_argument("-o", "--output", help="write to a file instead of stdout")
    dot.add_argument(
        "--full", action="store_true", help="one node per key operation"
    )
    dot.set_defaults(fn=_cmd_dot)

    evaluate = sub.add_parser("evaluate", help="reproduce Table 1")
    _add_scale(evaluate)
    _add_jobs(evaluate)
    evaluate.set_defaults(fn=_cmd_evaluate)

    slowdown = sub.add_parser("slowdown", help="reproduce Figure 8")
    _add_scale(slowdown)
    _add_jobs(slowdown)
    slowdown.set_defaults(fn=_cmd_slowdown)

    matrix = sub.add_parser(
        "scaling-matrix",
        help="run the analysis-time scaling sweep over apps x scales "
        "and print one JSON table",
    )
    matrix.add_argument(
        "--apps",
        nargs="+",
        metavar="APP",
        help="application names to sweep (default: all ten)",
    )
    matrix.add_argument(
        "--scales",
        nargs="+",
        type=float,
        metavar="SCALE",
        help="event-load scales per app (default: 0.02 0.05 0.1)",
    )
    matrix.add_argument("--seed", type=int, default=0, help="scheduler seed")
    matrix.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the per-app sweeps (1 = serial)",
    )
    matrix.add_argument(
        "-o", "--output", help="write the JSON table to a file instead of stdout"
    )
    _add_dense_bits(matrix)
    matrix.set_defaults(fn=_cmd_scaling_matrix)

    explore = sub.add_parser(
        "explore", help="run one workload under many scheduler seeds"
    )
    explore.add_argument("app", help="application name (see `apps`)")
    explore.add_argument("--seeds", type=int, default=5, help="number of seeds")
    explore.add_argument("--scale", type=float, default=0.05)
    explore.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the per-seed runs (1 = serial)",
    )
    explore.set_defaults(fn=_cmd_explore)

    report = sub.add_parser(
        "report", help="generate a full Markdown evaluation report"
    )
    report.add_argument("-o", "--output", help="write to a file instead of stdout")
    report.add_argument(
        "--no-slowdowns",
        action="store_true",
        help="skip the Figure 8 section (halves the runtime)",
    )
    _add_scale(report)
    _add_jobs(report)
    report.set_defaults(fn=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
