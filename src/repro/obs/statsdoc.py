"""One machine-readable statistics document with stable keys.

``repro stats --json`` emits this document; CI regression checks and
``repro top`` consume the same field names (which are exactly the
profile dataclass field names — the dataclasses stay the single
source of truth, this module only arranges them into sections).

Schema (``repro-stats/1``)::

    {
      "schema": "repro-stats/1",
      "trace":  {TraceProfile fields, minus the nested decode},
      "decode": {DecodeStats fields} | null,
      "build":  {graph summary + BuildProfile fields} | null,
      "query":  {QueryProfile fields} | null,
      "stream": {StreamProfile fields} | null,
      "sparse": {column-sparse scan DecodeStats fields} | null,
      "sampling": {SampleProfile fields} | null
    }

Every section is either present with its full field set or ``null`` —
consumers can rely on the key existing.  New fields may be appended in
later schema revisions; existing keys are never renamed.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

SCHEMA = "repro-stats/1"

_SECTIONS = ("trace", "decode", "build", "query", "stream", "sparse", "sampling")


def _asdict(obj) -> Optional[dict]:
    if obj is None:
        return None
    return dataclasses.asdict(obj)


def stats_document(
    trace_profile=None,
    hb_stats=None,
    stream_profile=None,
    sparse_stats=None,
    sample_profile=None,
) -> dict:
    """Assemble the document from whatever sections were computed.

    ``trace_profile`` is a :class:`~repro.trace.store.TraceProfile`
    (its nested decode counters become the ``decode`` section),
    ``hb_stats`` an :class:`~repro.hb.stats.HBStats` (split into
    ``build`` and ``query``), ``stream_profile`` a
    :class:`~repro.stream.StreamProfile`, ``sparse_stats`` the
    :class:`~repro.trace.store.DecodeStats` of a column-sparse scan,
    and ``sample_profile`` a
    :class:`~repro.detect.sampling.SampleProfile` (the ``sampling``
    section: budget, pairs sampled/screened/queried, flagged verdict).
    """
    doc = {"schema": SCHEMA}
    for section in _SECTIONS:
        doc[section] = None

    if trace_profile is not None:
        trace = _asdict(trace_profile)
        doc["decode"] = trace.pop("decode", None)
        doc["trace"] = trace

    if hb_stats is not None:
        doc["build"] = hb_stats.build_section()
        doc["query"] = _asdict(hb_stats.query_profile)

    if stream_profile is not None:
        doc["stream"] = _asdict(stream_profile)

    if sparse_stats is not None:
        doc["sparse"] = _asdict(sparse_stats)

    if sample_profile is not None:
        doc["sampling"] = _asdict(sample_profile)

    return doc
