"""Live export of metrics snapshots: HTTP and Unix-socket endpoints.

:class:`MetricsServer` is the scrape surface of a running ``repro
serve`` (``--metrics-port``): a small threaded HTTP server with two
routes —

* ``GET /metrics`` — the plaintext Prometheus exposition of the
  daemon-wide merged snapshot;
* ``GET /status.json`` — the same snapshot as one JSON document
  (stable ``repro-metrics/1`` schema, histograms with derived
  p50/p95/p99), the feed ``repro top`` renders.

:class:`StatusSocketServer` (``--status-socket``) serves the JSON
document over a Unix-domain socket instead — one document per
connection, then close — for scrape clients that must not open a TCP
port.

Both servers pull from a ``provider`` callable returning the current
:class:`~repro.obs.metrics.MetricsSnapshot`; they never cache, so
every scrape observes fresh counters.  Provider errors surface as
HTTP 500 (or a closed socket) without killing the serving thread.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from .metrics import MetricsSnapshot, render_prometheus

#: content type of the Prometheus exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

SnapshotProvider = Callable[[], MetricsSnapshot]


def status_document(snapshot: MetricsSnapshot) -> dict:
    """The ``/status.json`` body for one snapshot."""
    return snapshot.as_dict()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        provider: SnapshotProvider = self.server._provider  # type: ignore
        path = self.path.split("?", 1)[0]
        if path not in ("/metrics", "/status.json", "/"):
            self.send_error(404, "try /metrics or /status.json")
            return
        try:
            snapshot = provider()
            if path == "/metrics":
                body = render_prometheus(snapshot).encode("utf-8")
                content_type = PROMETHEUS_CONTENT_TYPE
            else:
                body = (
                    json.dumps(status_document(snapshot), sort_keys=True)
                    + "\n"
                ).encode("utf-8")
                content_type = "application/json"
        except Exception as exc:  # surface, don't kill the server
            self.send_error(500, f"snapshot failed: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:
        pass  # scrapes are not lifecycle events; keep stderr clean


class MetricsServer:
    """Threaded HTTP scrape endpoint (see module docs).

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  The server thread is a daemon: it never blocks
    process exit, but call :meth:`stop` for a deterministic teardown.
    """

    def __init__(self, provider: SnapshotProvider,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd._provider = provider  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            daemon=True,
            name="metrics-http",
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)


class StatusSocketServer:
    """One JSON status document per Unix-socket connection."""

    def __init__(self, provider: SnapshotProvider, path: str) -> None:
        if os.path.exists(path):
            os.unlink(path)
        self.path = path
        self._provider = provider
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(8)
        self._listener.settimeout(0.2)
        self._stopping = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, daemon=True, name="status-socket"
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                body = (
                    json.dumps(
                        status_document(self._provider()), sort_keys=True
                    )
                    + "\n"
                ).encode("utf-8")
                conn.sendall(body)
            except Exception:
                pass  # a failed scrape must not kill the server
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass
        self._thread.join(timeout=2.0)


def read_status_socket(path: str, timeout: float = 5.0) -> dict:
    """Scrape one JSON status document from a :class:`StatusSocketServer`."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    try:
        client.connect(path)
        chunks = []
        while True:
            chunk = client.recv(1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
    finally:
        client.close()
    return json.loads(b"".join(chunks).decode("utf-8"))


def scrape_http(url: str, path: str = "/status.json",
                timeout: float = 5.0):
    """Fetch one endpoint document over HTTP; returns parsed JSON for
    ``/status.json`` and text for ``/metrics`` (stdlib only)."""
    from urllib.request import urlopen

    with urlopen(url.rstrip("/") + path, timeout=timeout) as response:
        body = response.read().decode("utf-8")
    if path == "/metrics":
        return body
    return json.loads(body)
