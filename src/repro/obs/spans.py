"""Lightweight span tracing around the engine's hot phases.

``with span("hb.fixpoint"):`` brackets a phase; when tracing is
disabled (the default) the call returns a shared no-op context manager
— one global read and two empty method calls, no allocation — so the
instrumented hot paths cost nothing in production.  When a recorder is
installed (``repro stats --trace-out spans.json``), spans buffer in a
bounded per-process list and export as Chrome ``trace_event`` JSON for
flame-chart inspection in ``chrome://tracing`` / Perfetto.

Span names threaded through the engine (the catalog lives in
``docs/observability.md``):

===================  ====================================================
``trace.decode``     one decoder ``feed`` chunk (text or binary)
``hb.scan``          builder trace scan + event-record harvesting
``hb.base_edges``    key-graph construction + base-rule edges
``hb.closure``       full transitive-closure computations
``hb.fixpoint``      the derived-rule fixpoint
``detect.usefree``   one batch detection pass
``stream.detect``    one online (epoch) detection pass
``stream.epoch_retire``  quiescence GC: close + swap an epoch
``daemon.dispatch``  routing one session frame to its shard
``daemon.drain``     the daemon's graceful shutdown
``pipeline.app``     one app's simulate → detect → classify pipeline
===================  ====================================================

Recorders are per-process: the daemon's shard workers do not ship
spans to the router (metrics snapshots carry the cross-process story);
tracing is for single-process runs of the offline pipeline and the
streaming analyzer, where one flame chart answers "where did the last
10 s go".
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

#: spans buffered before the recorder starts dropping (and counting)
DEFAULT_SPAN_CAPACITY = 100_000


class SpanRecorder:
    """A bounded in-memory span buffer (see module docs)."""

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: (name, start_ns, duration_ns, thread_id, args_or_None)
        self.events: List[tuple] = []
        self.dropped = 0

    def record(self, name: str, start_ns: int, duration_ns: int,
               args: Optional[Dict[str, Any]]) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            (name, start_ns, duration_ns, threading.get_ident(), args)
        )

    def __len__(self) -> int:
        return len(self.events)

    # -- export --------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` document (``ph: "X"`` complete
        events, microsecond timestamps)."""
        pid = os.getpid()
        events = []
        for name, start_ns, duration_ns, tid, args in self.events:
            event = {
                "name": name,
                "ph": "X",
                "ts": start_ns / 1000.0,
                "dur": duration_ns / 1000.0,
                "pid": pid,
                "tid": tid,
            }
            if args:
                event["args"] = args
            events.append(event)
        meta = {"spans_dropped": self.dropped} if self.dropped else {}
        return {"traceEvents": events, "displayTimeUnit": "ms", **meta}

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(self.to_chrome_trace(), fp)
            fp.write("\n")


class _NullSpan:
    """The disabled-mode context manager; shared, reentrant, free."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: the installed recorder; ``None`` means tracing is off
_active: Optional[SpanRecorder] = None


class _Span:
    __slots__ = ("_recorder", "_name", "_args", "_start")

    def __init__(self, recorder: SpanRecorder, name: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self._recorder = recorder
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self._recorder.record(
            self._name,
            self._start,
            time.perf_counter_ns() - self._start,
            self._args,
        )


def span(name: str, **args):
    """Context manager bracketing one phase; no-op unless a recorder
    is installed.  Keyword arguments become Chrome ``args`` (only
    evaluated when tracing — keep them cheap at call sites)."""
    recorder = _active
    if recorder is None:
        return _NULL_SPAN
    return _Span(recorder, name, args or None)


def tracing_enabled() -> bool:
    return _active is not None


def enable_tracing(capacity: int = DEFAULT_SPAN_CAPACITY) -> SpanRecorder:
    """Install (and return) a fresh process-wide recorder."""
    global _active
    _active = SpanRecorder(capacity)
    return _active


def disable_tracing() -> Optional[SpanRecorder]:
    """Stop recording; returns the recorder that was active, so a
    caller can still export what it captured."""
    global _active
    recorder = _active
    _active = None
    return recorder
