"""The metrics core: a process-local registry of counters, gauges,
and fixed-bucket latency histograms.

Design constraints, in order:

1. **Near-zero cost when disabled.**  A disabled registry hands out
   shared null instruments whose methods are empty one-liners and
   registers nothing — the hot paths pay one attribute call and no
   allocation.  Production predictive-race systems treat measured
   observation overhead as a first-class design constraint; ours is
   CI-gated in ``benchmarks/bounds_pr9.json`` (enabled ingest
   throughput must stay within 0.9x of disabled).

2. **Snapshots travel, instruments do not.**  Instruments are
   process-local and lock-free (CPython ``+=`` on the owning thread);
   what crosses process boundaries is a :class:`MetricsSnapshot` — a
   plain picklable dataclass of sample dicts.  Shard workers ship
   snapshots to the router, which merges them
   (:func:`merge_snapshots`) into the daemon-wide view served over
   ``/metrics`` (Prometheus text) and ``/status.json``.

3. **Nothing is reported twice.**  The existing profile dataclasses
   (``BuildProfile``, ``QueryProfile``, ``TraceProfile``,
   ``StreamProfile``, ``WorkerProfile``, ``DecodeStats``) stay the
   single source of truth for their counters; the registry *adapts*
   them as metric families at snapshot time
   (:meth:`MetricsRegistry.register_profile`) instead of mirroring
   every increment into a second set of counters.

Sample keys are fully-rendered Prometheus sample names —
``repro_shard_queue_depth{shard="2"}`` — so merging, rendering, and
JSON export are all plain dict operations over one stable schema (the
same one ``repro stats --json`` and ``repro top`` consume; see
``docs/observability.md`` for the catalog).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: default histogram bucket upper bounds (seconds); the implicit +Inf
#: bucket is always present
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _sample_name(name: str, labels: Optional[Dict[str, str]]) -> str:
    """Render ``name{k="v",...}`` with deterministic label order."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing sample."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A sample that can go up and down (queue depth, active sessions)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution (cumulative Prometheus semantics at
    export; per-bucket counts internally so merging is a plain
    element-wise sum)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted, got {bounds}")
        self.bounds = bounds
        #: one slot per finite bound plus the +Inf overflow slot
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def data(self) -> "HistogramData":
        return HistogramData(
            bounds=list(self.bounds),
            counts=list(self.counts),
            sum=self.sum,
            count=self.count,
        )


class _NullInstrument:
    """The disabled-mode stand-in for every instrument kind."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: the shared disabled instrument; identity-comparable in tests
NULL_INSTRUMENT = _NullInstrument()


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


@dataclass
class HistogramData:
    """One histogram's picklable state (per-bucket, not cumulative)."""

    bounds: List[float]
    counts: List[int]
    sum: float = 0.0
    count: int = 0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0..1) by linear interpolation
        within the owning bucket, the standard Prometheus
        ``histogram_quantile`` shape."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        lower = 0.0
        for i, bucket_count in enumerate(self.counts):
            upper = (
                self.bounds[i] if i < len(self.bounds) else math.inf
            )
            if seen + bucket_count >= rank:
                if math.isinf(upper) or bucket_count == 0:
                    return lower if not math.isinf(upper) else self.bounds[-1]
                fraction = (rank - seen) / bucket_count
                return lower + (upper - lower) * fraction
            seen += bucket_count
            lower = upper
        return self.bounds[-1]

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramData":
        return cls(**data)


@dataclass
class MetricsSnapshot:
    """A picklable point-in-time export of one registry (or a merge of
    many).  ``families`` maps bare metric names to ``(kind, help)`` so
    the Prometheus renderer can emit ``# TYPE``/``# HELP`` headers;
    sample dicts are keyed by fully-rendered sample names."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramData] = field(default_factory=dict)
    families: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def family(self, name: str, kind: str, help: str = "") -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.families.setdefault(name, (kind, help))

    def counter(self, name: str, value: float,
                labels: Optional[Dict[str, str]] = None,
                help: str = "") -> None:
        self.family(name, "counter", help)
        key = _sample_name(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float,
              labels: Optional[Dict[str, str]] = None,
              help: str = "") -> None:
        self.family(name, "gauge", help)
        self.gauges[_sample_name(name, labels)] = value

    def histogram(self, name: str, data: HistogramData,
                  labels: Optional[Dict[str, str]] = None,
                  help: str = "") -> None:
        self.family(name, "histogram", help)
        key = _sample_name(name, labels)
        existing = self.histograms.get(key)
        if existing is None:
            self.histograms[key] = HistogramData(
                bounds=list(data.bounds),
                counts=list(data.counts),
                sum=data.sum,
                count=data.count,
            )
        else:
            _merge_histogram(existing, data, key)

    def as_dict(self) -> dict:
        """Stable machine-readable form (the ``/status.json`` body and
        the ``repro top`` input): plain sample dicts plus derived
        quantiles for every histogram."""
        return {
            "schema": "repro-metrics/1",
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                key: {
                    **data.as_dict(),
                    "p50": data.quantile(0.50),
                    "p95": data.quantile(0.95),
                    "p99": data.quantile(0.99),
                }
                for key, data in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        snap = cls()
        snap.counters = dict(data.get("counters", {}))
        snap.gauges = dict(data.get("gauges", {}))
        for key, hist in data.get("histograms", {}).items():
            snap.histograms[key] = HistogramData(
                bounds=list(hist["bounds"]),
                counts=list(hist["counts"]),
                sum=hist.get("sum", 0.0),
                count=hist.get("count", 0),
            )
        return snap


def _merge_histogram(into: HistogramData, data: HistogramData, key: str) -> None:
    if list(into.bounds) != list(data.bounds):
        raise ValueError(
            f"histogram {key!r} merged with mismatched buckets: "
            f"{into.bounds} vs {data.bounds}"
        )
    for i, count in enumerate(data.counts):
        into.counts[i] += count
    into.sum += data.sum
    into.count += data.count


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Merge many snapshots into one: counters and histograms sum
    sample-wise (associative and order-independent), gauges sum too —
    the gauges this system exports (queue depths, active sessions,
    closure bytes) are per-shard quantities whose fleet-wide meaning
    *is* the sum.  Identity element: ``merge_snapshots([])`` is empty.
    """
    merged = MetricsSnapshot()
    for snap in snapshots:
        for name, meta in snap.families.items():
            merged.families.setdefault(name, meta)
        for key, value in snap.counters.items():
            merged.counters[key] = merged.counters.get(key, 0.0) + value
        for key, value in snap.gauges.items():
            merged.gauges[key] = merged.gauges.get(key, 0.0) + value
        for key, data in snap.histograms.items():
            existing = merged.histograms.get(key)
            if existing is None:
                merged.histograms[key] = HistogramData(
                    bounds=list(data.bounds),
                    counts=list(data.counts),
                    sum=data.sum,
                    count=data.count,
                )
            else:
                _merge_histogram(existing, data, key)
    return merged


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """The plaintext Prometheus exposition of a snapshot."""
    lines: List[str] = []
    by_family: Dict[str, List[str]] = {}

    def bare(key: str) -> str:
        return key.split("{", 1)[0]

    for key in snapshot.counters:
        by_family.setdefault(bare(key), [])
    for key in snapshot.gauges:
        by_family.setdefault(bare(key), [])
    for key in snapshot.histograms:
        by_family.setdefault(bare(key), [])

    def fmt(value: float) -> str:
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)

    for name in sorted(by_family):
        kind, help_text = snapshot.families.get(name, ("gauge", ""))
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(snapshot.counters):
            if bare(key) == name:
                lines.append(f"{key} {fmt(snapshot.counters[key])}")
        for key in sorted(snapshot.gauges):
            if bare(key) == name:
                lines.append(f"{key} {fmt(snapshot.gauges[key])}")
        for key in sorted(snapshot.histograms):
            if bare(key) != name:
                continue
            data = snapshot.histograms[key]
            base, _, labels = key.partition("{")
            labels = labels[:-1] if labels else ""
            cumulative = 0
            for i, count in enumerate(data.counts):
                cumulative += count
                le = (
                    fmt(data.bounds[i]) if i < len(data.bounds) else "+Inf"
                )
                inner = f'{labels},le="{le}"' if labels else f'le="{le}"'
                lines.append(f"{base}_bucket{{{inner}}} {cumulative}")
            suffix = f"{{{labels}}}" if labels else ""
            lines.append(f"{base}_sum{suffix} {fmt(data.sum)}")
            lines.append(f"{base}_count{suffix} {data.count}")
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


#: per-profile-class overrides of the counter-by-default adaptation:
#: fields listed here export as gauges (point-in-time quantities that
#: must not be read as monotonic)
_PROFILE_GAUGE_FIELDS = {
    "StreamProfile": {"closure_bytes", "peak_closure_bytes",
                      "retired_addresses"},
    "BuildProfile": {"dense_chunk_ratio", "closure_bytes",
                     "chunks_allocated", "chunks_shared"},
    "QueryProfile": {"mask_tasks", "mask_bytes", "memo_capacity"},
    "TraceProfile": {"ops", "tasks", "symbols", "addresses",
                     "memory_bytes", "disk_bytes"},
    "WorkerProfile": {"pid"},
}


class MetricsRegistry:
    """A process-local set of named instruments (see module docs).

    ``enabled=False`` is the no-op mode: every factory returns the
    shared :data:`NULL_INSTRUMENT` and the registry stays empty — a
    ``snapshot()`` of a disabled registry has no samples and no
    families.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, Tuple[str, str, object]] = {}
        self._probes: List[Callable[[MetricsSnapshot], None]] = []

    def __len__(self) -> int:
        return len(self._instruments)

    def _register(self, name: str, kind: str, help: str,
                  labels: Optional[Dict[str, str]], factory):
        key = _sample_name(name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if existing[0] != kind:
                raise ValueError(
                    f"metric {key!r} already registered as {existing[0]}, "
                    f"not {kind}"
                )
            return existing[2]
        instrument = factory()
        self._instruments[key] = (kind, help, instrument)
        return instrument

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._register(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._register(name, "gauge", help, labels, Gauge)

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._register(
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )

    # -- profile adaptation -------------------------------------------

    def register_profile(self, prefix: str, supplier: Callable[[], object],
                         labels: Optional[Dict[str, str]] = None) -> None:
        """Adapt an existing profile dataclass as a metric family.

        ``supplier`` is called at every :meth:`snapshot` and must
        return a profile dataclass instance (or ``None`` to skip);
        each numeric field becomes a sample named
        ``{prefix}_{field}`` — counters by default, gauges for the
        fields named in ``_PROFILE_GAUGE_FIELDS``.  The profile stays
        the single source of truth; nothing is double-counted.
        """
        if not self.enabled:
            return

        def probe(snapshot: MetricsSnapshot) -> None:
            profile = supplier()
            if profile is None:
                return
            profile_snapshot(snapshot, prefix, profile, labels=labels)

        self._probes.append(probe)

    def snapshot(self) -> MetricsSnapshot:
        """Export every instrument and probe as a picklable snapshot."""
        snap = MetricsSnapshot()
        if not self.enabled:
            return snap
        for key, (kind, help_text, instrument) in self._instruments.items():
            name = key.split("{", 1)[0]
            snap.family(name, kind, help_text)
            if kind == "counter":
                snap.counters[key] = (
                    snap.counters.get(key, 0.0) + instrument.value
                )
            elif kind == "gauge":
                snap.gauges[key] = instrument.value
            else:
                data = instrument.data()
                existing = snap.histograms.get(key)
                if existing is None:
                    snap.histograms[key] = data
                else:
                    _merge_histogram(existing, data, key)
        for probe in self._probes:
            probe(snap)
        return snap


def profile_snapshot(snapshot: MetricsSnapshot, prefix: str, profile,
                     labels: Optional[Dict[str, str]] = None) -> None:
    """Adapt one profile dataclass instance into ``snapshot`` (the
    registry-free form of :meth:`MetricsRegistry.register_profile`,
    used by the shard telemetry path which builds snapshots directly).
    """
    gauge_fields = _PROFILE_GAUGE_FIELDS.get(type(profile).__name__, set())
    for f in dataclasses.fields(profile):
        value = getattr(profile, f.name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        name = f"{prefix}_{f.name}"
        if f.name in gauge_fields:
            snapshot.gauge(name, float(value), labels=labels)
        else:
            snapshot.counter(name, float(value), labels=labels)


# ---------------------------------------------------------------------------
# The process-default registry
# ---------------------------------------------------------------------------

_default = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-default registry (disabled until configured)."""
    return _default


def configure(enabled: bool = True) -> MetricsRegistry:
    """Replace the process-default registry; returns the new one.

    Called once at entry points (``repro serve`` unless
    ``--no-metrics``); library code reaches the registry through
    :func:`get_registry` so the swap is global.
    """
    global _default
    _default = MetricsRegistry(enabled=enabled)
    return _default
