"""Unified telemetry: the metrics registry (counters / gauges /
fixed-bucket histograms with picklable snapshots and Prometheus
rendering), span tracing with Chrome ``trace_event`` export, live
daemon endpoints, structured JSON logging, and the stable
``repro stats --json`` schema (see ``docs/observability.md``)."""

from .logging import JsonLogFormatter, configure_json_logging, get_logger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    configure,
    get_registry,
    merge_snapshots,
    profile_snapshot,
    render_prometheus,
)
from .spans import (
    DEFAULT_SPAN_CAPACITY,
    SpanRecorder,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)
from .statsdoc import SCHEMA as STATS_SCHEMA
from .statsdoc import stats_document

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SPAN_CAPACITY",
    "Gauge",
    "Histogram",
    "HistogramData",
    "JsonLogFormatter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_INSTRUMENT",
    "STATS_SCHEMA",
    "SpanRecorder",
    "configure",
    "configure_json_logging",
    "disable_tracing",
    "enable_tracing",
    "get_logger",
    "get_registry",
    "merge_snapshots",
    "profile_snapshot",
    "render_prometheus",
    "span",
    "stats_document",
    "tracing_enabled",
]
