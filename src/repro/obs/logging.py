"""Structured logging for the daemon: one JSON line per lifecycle event.

The daemon's lifecycle events — connection open/close, session end,
worker crashes with their remote tracebacks, salvage decisions — used
to be bare ``print(..., file=sys.stderr)`` calls; a fleet operator
cannot grep, ship, or alert on those.  :class:`JsonLogFormatter` turns
every stdlib ``logging`` record into a single JSON object carrying the
event name, the standard severity fields, and whatever structured
context the call site attached via ``extra=`` (session and shard ids,
byte counts, error strings, remote tracebacks).

Usage::

    from repro.obs.logging import configure_json_logging, get_logger
    configure_json_logging()              # stderr, INFO, JSON lines
    log = get_logger("repro.serve")
    log.info("connection open", extra={"connection": conn_id})

Context keys are emitted at the top level of the JSON object (not
nested) so ``jq .session`` works; collisions with the reserved record
fields are prefixed with ``ctx_``.  Timestamps are ISO-8601 UTC.
"""

from __future__ import annotations

import datetime
import json
import logging
import sys
from typing import Optional

#: the logger namespace every repro component logs under
ROOT_LOGGER = "repro"

#: LogRecord attributes that are plumbing, not event context
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """Format every record as one JSON line (see module docs)."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = datetime.datetime.fromtimestamp(
            record.created, tz=datetime.timezone.utc
        )
        doc = {
            "ts": stamp.isoformat(timespec="milliseconds"),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            if key in doc:
                key = f"ctx_{key}"
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            doc[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            doc["traceback"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=False)


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger under the shared ``repro`` namespace."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def configure_json_logging(
    stream=None,
    level: int = logging.INFO,
    logger: Optional[logging.Logger] = None,
) -> logging.Handler:
    """Route the ``repro`` logger tree through one JSON handler.

    Idempotent per target logger: a previous handler installed by this
    function is replaced, not duplicated, so re-entrant CLI calls (and
    tests) do not multiply output lines.  Returns the handler so a
    caller can detach it (``logger.removeHandler``).
    """
    target = logger if logger is not None else logging.getLogger(ROOT_LOGGER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_json_handler = True  # type: ignore[attr-defined]
    for existing in list(target.handlers):
        if getattr(existing, "_repro_json_handler", False):
            target.removeHandler(existing)
    target.addHandler(handler)
    target.setLevel(level)
    target.propagate = False
    return handler
