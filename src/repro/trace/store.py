"""The columnar trace store — struct-of-arrays backing for :class:`Trace`.

The record-once / analyze-offline workflow makes the trace the largest
live object of every analysis run, and a Python list of per-operation
dataclass instances costs ~350 bytes per operation (56-byte object +
296-byte ``__dict__``) before counting payload references.  The
:class:`TraceStore` keeps the same information as parallel typed
columns instead:

* three global arrays — operation kind (1 byte), timestamp (8 bytes),
  and interned task id (4 bytes) — indexed by the global op index;
* one *bucket* per :class:`~repro.trace.operations.OpKind` holding the
  kind's payload fields as typed columns plus an ascending index array
  (which doubles as the ``by_kind`` index);
* side tables interning the rare, repetitive payloads: a string
  :class:`SymbolTable` (task ids, variable names, sites, methods, …)
  and an :class:`AddressTable` for pointer-slot tuples.

Operations are materialized back into their frozen dataclasses on
demand (``store.op(i)``), value-identical to what was appended, so the
object API of :class:`~repro.trace.trace.Trace` is preserved exactly;
hot paths (:mod:`repro.hb.builder`, :mod:`repro.detect.accesses`) read
the columns directly and skip materialization.

Column type tags:

``s``  interned string (4-byte symbol id)
``a``  interned address tuple (4-byte id into the address table)
``i``  plain int (8 bytes, signed)
``?``  optional int (8 bytes; ``None`` encoded as INT64_MIN)
``b``  bool (1 byte)
``e``  :class:`~repro.trace.operations.BranchKind` (1-byte member index)
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import MISSING, dataclass, fields as dataclass_fields
from heapq import merge
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .operations import (
    Address,
    BranchKind,
    OpKind,
    Operation,
    _REGISTRY,
)

#: stable kind -> small-int code mapping (enum definition order)
KIND_LIST: Tuple[OpKind, ...] = tuple(OpKind)
KIND_CODES: Dict[OpKind, int] = {kind: i for i, kind in enumerate(KIND_LIST)}

_CLASS_LIST: Tuple[type, ...] = tuple(_REGISTRY[kind] for kind in KIND_LIST)

_CODE_OF_CLASS: Dict[type, int] = {cls: i for i, cls in enumerate(_CLASS_LIST)}

_BRANCH_KINDS: Tuple[BranchKind, ...] = tuple(BranchKind)
_BRANCH_INDEX: Dict[BranchKind, int] = {b: i for i, b in enumerate(_BRANCH_KINDS)}

#: ``None`` sentinel for optional-int columns (INT64_MIN; object ids are
#: small non-negative heap counters, so the value cannot collide)
_NONE = -(1 << 63)

# Column type tags (see module docstring).
STR, ADDR, INT, OPT_INT, BOOL, ENUM = "s", "a", "i", "?", "b", "e"

_ARRAY_TYPE = {STR: "i", ADDR: "i", INT: "q", OPT_INT: "q", BOOL: "B", ENUM: "B"}

#: payload schema per kind: (field name, column type) in dataclass
#: declaration order (after the shared ``task``/``time`` fields)
SCHEMAS: Dict[OpKind, Tuple[Tuple[str, str], ...]] = {
    OpKind.BEGIN: (),
    OpKind.END: (),
    OpKind.READ: (("var", STR), ("site", STR)),
    OpKind.WRITE: (("var", STR), ("site", STR)),
    OpKind.FORK: (("child", STR),),
    OpKind.JOIN: (("child", STR),),
    OpKind.WAIT: (("monitor", STR), ("ticket", INT)),
    OpKind.NOTIFY: (("monitor", STR), ("ticket", INT)),
    OpKind.SEND: (("event", STR), ("delay", INT), ("queue", STR)),
    OpKind.SEND_AT_FRONT: (("event", STR), ("queue", STR)),
    OpKind.REGISTER: (("listener", STR),),
    OpKind.PERFORM: (("listener", STR),),
    OpKind.PTR_READ: (
        ("address", ADDR),
        ("object_id", OPT_INT),
        ("method", STR),
        ("pc", INT),
    ),
    OpKind.PTR_WRITE: (
        ("address", ADDR),
        ("value", OPT_INT),
        ("container", OPT_INT),
        ("method", STR),
        ("pc", INT),
    ),
    OpKind.DEREF: (("object_id", OPT_INT), ("method", STR), ("pc", INT)),
    OpKind.BRANCH: (
        ("branch_kind", ENUM),
        ("pc", INT),
        ("target", INT),
        ("object_id", OPT_INT),
        ("method", STR),
    ),
    OpKind.ACQUIRE: (("lock", STR),),
    OpKind.RELEASE: (("lock", STR),),
    OpKind.METHOD_ENTER: (("method", STR), ("return_pc", INT)),
    OpKind.METHOD_EXIT: (
        ("method", STR),
        ("return_pc", INT),
        ("via_exception", BOOL),
    ),
    OpKind.IPC_CALL: (("txn", INT), ("service", STR), ("oneway", BOOL)),
    OpKind.IPC_HANDLE: (("txn", INT), ("service", STR)),
    OpKind.IPC_REPLY: (("txn", INT), ("service", STR)),
    OpKind.IPC_RETURN: (("txn", INT), ("service", STR)),
}

_SCHEMA_LIST: Tuple[Tuple[Tuple[str, str], ...], ...] = tuple(
    SCHEMAS[kind] for kind in KIND_LIST
)


def _check_schemas() -> None:
    """The schemas must track the dataclass vocabulary field-for-field."""
    for kind in KIND_LIST:
        declared = [
            f.name
            for f in dataclass_fields(_REGISTRY[kind])
            if f.name not in ("task", "time", "kind")
        ]
        schema = [name for name, _ in SCHEMAS[kind]]
        if declared != schema:
            raise RuntimeError(
                f"column schema for {kind} out of sync with "
                f"{_REGISTRY[kind].__name__}: {schema} != {declared}"
            )


_check_schemas()

#: per-kind payload (field name, dataclass default) pairs, schema order —
#: the keyword-arguments append path resolves omitted fields through this
_FIELD_SPECS: Tuple[Tuple[Tuple[str, Any], ...], ...] = tuple(
    tuple(
        (f.name, f.default)
        for f in dataclass_fields(_REGISTRY[kind])
        if f.name not in ("task", "time", "kind")
    )
    for kind in KIND_LIST
)


class SymbolTable:
    """Bidirectional string interner with dense integer ids."""

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._values: List[str] = []

    def intern(self, value: str) -> int:
        sid = self._ids.get(value)
        if sid is None:
            sid = len(self._values)
            self._ids[value] = sid
            self._values.append(value)
        return sid

    def id_of(self, value: str) -> Optional[int]:
        return self._ids.get(value)

    def value(self, sid: int) -> str:
        return self._values[sid]

    def __len__(self) -> int:
        return len(self._values)

    def memory_bytes(self) -> int:
        return (
            sys.getsizeof(self._ids)
            + sys.getsizeof(self._values)
            + sum(sys.getsizeof(v) for v in self._values)
        )


class AddressTable:
    """Interner for pointer-slot :data:`~repro.trace.operations.Address`
    tuples (``(scope, owner, field)``), dense integer ids."""

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: Dict[Address, int] = {}
        self._values: List[Address] = []

    def intern(self, value: Address) -> int:
        if not isinstance(value, tuple):
            value = tuple(value)  # type: ignore[assignment]
        aid = self._ids.get(value)
        if aid is None:
            aid = len(self._values)
            self._ids[value] = aid
            self._values.append(value)
        return aid

    def value(self, aid: int) -> Address:
        return self._values[aid]

    def __len__(self) -> int:
        return len(self._values)

    def memory_bytes(self) -> int:
        total = sys.getsizeof(self._ids) + sys.getsizeof(self._values)
        for tup in self._values:
            total += sys.getsizeof(tup)
            total += sum(sys.getsizeof(c) for c in tup)
        return total


class _KindBucket:
    """Payload columns + ascending global-index array for one kind."""

    __slots__ = ("schema", "indices", "columns")

    def __init__(self, schema: Tuple[Tuple[str, str], ...]) -> None:
        self.schema = schema
        self.indices = array("i")
        self.columns: Tuple[array, ...] = tuple(
            array(_ARRAY_TYPE[typ]) for _, typ in schema
        )

    def __len__(self) -> int:
        return len(self.indices)

    def memory_bytes(self) -> int:
        total = sys.getsizeof(self.indices)
        for col in self.columns:
            total += sys.getsizeof(col)
        return total


class TraceStore:
    """Struct-of-arrays storage for a trace's operation list."""

    __slots__ = ("kinds", "times", "task_ids", "rows", "symbols", "addresses",
                 "_buckets", "_task_ops")

    def __init__(self) -> None:
        #: per-op kind code ('B'), timestamp ('q'), task symbol id ('i')
        self.kinds = array("B")
        self.times = array("q")
        self.task_ids = array("i")
        #: per-op row number inside its kind bucket ('i')
        self.rows = array("i")
        self.symbols = SymbolTable()
        self.addresses = AddressTable()
        self._buckets: List[Optional[_KindBucket]] = [None] * len(KIND_LIST)
        #: task symbol id -> ascending op indices (the ``ops_of`` index)
        self._task_ops: Dict[int, array] = {}

    def __len__(self) -> int:
        return len(self.kinds)

    # -- append -----------------------------------------------------------

    def append(self, op: Operation) -> int:
        """Decompose ``op`` into the columns; returns its global index."""
        code = KIND_CODES[op.kind]
        values = [getattr(op, name) for name, _ in _SCHEMA_LIST[code]]
        return self.append_row(code, op.time, op.task, values)

    def append_fields(
        self, op_cls: type, task: str, time: int, fields: Dict[str, Any]
    ) -> int:
        """Append from an operation class plus keyword payload — the
        online tracer's path: no :class:`Operation` is ever built.
        Omitted fields resolve to the dataclass defaults."""
        code = _CODE_OF_CLASS[op_cls]
        get = fields.get
        values = [get(name, default) for name, default in _FIELD_SPECS[code]]
        if MISSING in values:
            missing = [
                name
                for (name, _d), v in zip(_FIELD_SPECS[code], values)
                if v is MISSING
            ]
            raise TypeError(
                f"{op_cls.__name__} record lacks required fields {missing}"
            )
        return self.append_row(code, time, task, values)

    def append_row(self, code: int, time: int, task: str, values: Sequence[Any]) -> int:
        """Append one pre-decomposed operation row (the streaming-reader
        fast path: no :class:`Operation` instance is ever built)."""
        i = len(self.kinds)
        self.kinds.append(code)
        self.times.append(time)
        tid = self.symbols.intern(task)
        self.task_ids.append(tid)
        bucket = self._buckets[code]
        if bucket is None:
            bucket = self._buckets[code] = _KindBucket(_SCHEMA_LIST[code])
        self.rows.append(len(bucket.indices))
        bucket.indices.append(i)
        intern_sym = self.symbols.intern
        for (name, typ), col, value in zip(bucket.schema, bucket.columns, values):
            if typ == STR:
                col.append(intern_sym(value))
            elif typ == INT:
                col.append(value)
            elif typ == OPT_INT:
                col.append(_NONE if value is None else value)
            elif typ == ADDR:
                col.append(self.addresses.intern(value))
            elif typ == BOOL:
                col.append(1 if value else 0)
            else:  # ENUM
                col.append(_BRANCH_INDEX[value])
        ops = self._task_ops.get(tid)
        if ops is None:
            ops = self._task_ops[tid] = array("i")
        ops.append(i)
        return i

    def adopt_batch(
        self,
        kinds: bytes,
        times: array,
        task_ids: array,
        bucket_columns: Dict[int, List[array]],
    ) -> None:
        """Bulk-append one decoded column batch (the v3 reader's path).

        ``kinds`` holds local kind codes, ``times``/``task_ids`` are
        typed arrays of the same length, and ``bucket_columns`` maps a
        kind code to its payload columns (store typecodes, raw interned
        ids) covering exactly the batch's rows of that kind, in order.
        The caller guarantees the symbol/address tables already contain
        every id referenced — the decoder interns side-table frames in
        lockstep — so the columns are adopted wholesale and only the
        derived indices (``rows``, bucket index arrays, the per-task
        index) are computed here, in one scatter pass.
        """
        base = len(self.kinds)
        self.kinds.frombytes(kinds)
        self.times.extend(times)
        self.task_ids.extend(task_ids)
        buckets = self._buckets
        task_ops = self._task_ops
        rows_append = self.rows.append
        cursor: Dict[int, list] = {}
        i = base
        for code, tid in zip(kinds, task_ids):
            ent = cursor.get(code)
            if ent is None:
                bucket = buckets[code]
                if bucket is None:
                    bucket = buckets[code] = _KindBucket(_SCHEMA_LIST[code])
                ent = cursor[code] = [len(bucket.indices), bucket.indices.append]
            row = ent[0]
            ent[0] = row + 1
            rows_append(row)
            ent[1](i)
            ops = task_ops.get(tid)
            if ops is None:
                ops = task_ops[tid] = array("i")
            ops.append(i)
            i += 1
        for code, columns in bucket_columns.items():
            bucket = buckets[code]
            if bucket is None:
                bucket = buckets[code] = _KindBucket(_SCHEMA_LIST[code])
            for col, extra in zip(bucket.columns, columns):
                col.extend(extra)

    # -- materialization --------------------------------------------------

    def op(self, i: int) -> Operation:
        """Materialize operation ``i`` as its frozen dataclass,
        value-identical to what was appended."""
        code = self.kinds[i]
        bucket = self._buckets[code]
        row = self.rows[i]
        args: List[Any] = [self.symbols.value(self.task_ids[i]), self.times[i]]
        if bucket is not None and bucket.schema:
            sym_value = self.symbols.value
            for (name, typ), col in zip(bucket.schema, bucket.columns):
                raw = col[row]
                if typ == STR:
                    args.append(sym_value(raw))
                elif typ == INT:
                    args.append(raw)
                elif typ == OPT_INT:
                    args.append(None if raw == _NONE else raw)
                elif typ == ADDR:
                    args.append(self.addresses.value(raw))
                elif typ == BOOL:
                    args.append(bool(raw))
                else:  # ENUM
                    args.append(_BRANCH_KINDS[raw])
        return _CLASS_LIST[code](*args)

    def kind_of(self, i: int) -> OpKind:
        return KIND_LIST[self.kinds[i]]

    def task_of(self, i: int) -> str:
        return self.symbols.value(self.task_ids[i])

    def time_of(self, i: int) -> int:
        return self.times[i]

    def column(self, kind: OpKind, field: str) -> Tuple[array, array]:
        """(bucket index array, raw column array) for one kind's field.

        Raw symbol/address ids are returned as stored; callers decode
        through :attr:`symbols` / :attr:`addresses`.  Empty arrays when
        the kind never occurred.
        """
        bucket = self._buckets[KIND_CODES[kind]]
        if bucket is None:
            return array("i"), array("i")
        for (name, _typ), col in zip(bucket.schema, bucket.columns):
            if name == field:
                return bucket.indices, col
        raise KeyError(f"{kind} has no column {field!r}")

    def field_of(self, i: int, field: str, default: Any = None) -> Any:
        """Decoded payload field ``field`` of op ``i``, or ``default``
        when op ``i``'s kind has no such field — one-off column access
        without materializing the operation."""
        code = self.kinds[i]
        bucket = self._buckets[code]
        if bucket is None:
            return default
        for (name, typ), col in zip(bucket.schema, bucket.columns):
            if name != field:
                continue
            raw = col[self.rows[i]]
            if typ == STR:
                return self.symbols.value(raw)
            if typ == OPT_INT:
                return None if raw == _NONE else raw
            if typ == ADDR:
                return self.addresses.value(raw)
            if typ == BOOL:
                return bool(raw)
            if typ == ENUM:
                return _BRANCH_KINDS[raw]
            return raw
        return default

    # -- index views ------------------------------------------------------

    def ops_of(self, task: str) -> List[int]:
        """Ascending indices of ``task``'s operations — O(1) lookup."""
        tid = self.symbols.id_of(task)
        if tid is None:
            return []
        ops = self._task_ops.get(tid)
        return list(ops) if ops is not None else []

    def by_kind(self, kind: OpKind) -> List[int]:
        """Ascending indices of one kind's operations — O(1) lookup."""
        bucket = self._buckets[KIND_CODES[kind]]
        return list(bucket.indices) if bucket is not None else []

    def indices_of(self, *kinds: OpKind) -> List[int]:
        """Ascending merged indices of several kinds' operations."""
        runs = []
        for kind in kinds:
            bucket = self._buckets[KIND_CODES[kind]]
            if bucket is not None and bucket.indices:
                runs.append(bucket.indices)
        if not runs:
            return []
        if len(runs) == 1:
            return list(runs[0])
        return list(merge(*runs))

    def iter_meta(self) -> Iterator[Tuple[int, OpKind, str, int]]:
        """Yield ``(index, kind, task, time)`` without materializing
        payloads (the validator's fast path)."""
        sym_value = self.symbols.value
        kind_list = KIND_LIST
        for i, (code, tid, time) in enumerate(
            zip(self.kinds, self.task_ids, self.times)
        ):
            yield i, kind_list[code], sym_value(tid), time

    def rows_encoded(self) -> Iterator[Tuple[int, int, str, List[Any]]]:
        """Yield ``(kind code, time, task, payload values)`` per op in
        trace order — the serializer's path around materialization."""
        sym_value = self.symbols.value
        addr_value = self.addresses.value
        buckets = self._buckets
        for i, (code, tid, time, row) in enumerate(
            zip(self.kinds, self.task_ids, self.times, self.rows)
        ):
            bucket = buckets[code]
            values: List[Any] = []
            if bucket is not None and bucket.schema:
                for (_name, typ), col in zip(bucket.schema, bucket.columns):
                    raw = col[row]
                    if typ == STR:
                        values.append(sym_value(raw))
                    elif typ == INT:
                        values.append(raw)
                    elif typ == OPT_INT:
                        values.append(None if raw == _NONE else raw)
                    elif typ == ADDR:
                        values.append(addr_value(raw))
                    elif typ == BOOL:
                        values.append(bool(raw))
                    else:  # ENUM
                        values.append(_BRANCH_KINDS[raw])
            yield code, time, sym_value(tid), values

    # -- accounting -------------------------------------------------------

    def memory_bytes(self) -> int:
        """Bytes held by the columns and side tables (interned strings
        and address tuples included)."""
        total = (
            sys.getsizeof(self.kinds)
            + sys.getsizeof(self.times)
            + sys.getsizeof(self.task_ids)
            + sys.getsizeof(self.rows)
            + self.symbols.memory_bytes()
            + self.addresses.memory_bytes()
        )
        for bucket in self._buckets:
            if bucket is not None:
                total += bucket.memory_bytes()
        total += sys.getsizeof(self._task_ops)
        for ops in self._task_ops.values():
            total += sys.getsizeof(ops)
        return total


@dataclass(frozen=True)
class DecodeStats:
    """Per-format decode counters of one load, surfaced by
    ``python -m repro stats`` next to the size profile.

    The text formats (v1/v2) count lines as frames and decode every op
    row by row; the binary v3 format counts real frames and reports how
    many ops were adopted wholesale by column ``frombytes`` versus
    decoded row by row, plus — for column-sparse :class:`SegmentReader`
    scans — how many payload bytes were never read at all.
    """

    #: trace format version the stream declared
    version: int
    #: frames read (v3) or lines consumed (v1/v2)
    frames: int = 0
    #: logical records decoded (ops + interning defs + task infos)
    records: int = 0
    #: v3 op batches decoded
    batches: int = 0
    #: ops loaded by one-shot column adoption (``array.frombytes``)
    ops_adopted: int = 0
    #: ops decoded row by row (text formats, or the v3 fallback path)
    ops_decoded: int = 0
    #: columns adopted or mmapped without row-by-row decode
    columns_adopted: int = 0
    #: stream bytes consumed by the decode
    bytes_read: int = 0
    #: file bytes skipped entirely (column-sparse scans only)
    bytes_skipped: int = 0

    def format(self) -> str:
        lines = [
            f"decode [v{self.version}]: {self.frames} frames, "
            f"{self.records} records, {self.batches} batches",
            f"  ops adopted {self.ops_adopted} "
            f"(columns {self.columns_adopted}), "
            f"row-decoded {self.ops_decoded}",
            f"  bytes read {self.bytes_read}, skipped {self.bytes_skipped}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class TraceProfile:
    """Size report of one trace's in-memory representation, surfaced by
    ``python -m repro stats`` and the trace-store benchmarks."""

    #: "columnar" or "object"
    backend: str
    ops: int
    tasks: int
    #: interned strings (0 for the object backend)
    symbols: int
    #: interned address tuples (0 for the object backend)
    addresses: int
    #: bytes held in memory by the operation storage
    memory_bytes: int
    #: serialized size of the file the trace came from / went to, if known
    disk_bytes: Optional[int] = None
    #: counters of the decode that produced the trace, if it was loaded
    decode: Optional[DecodeStats] = None

    @property
    def bytes_per_op(self) -> float:
        return self.memory_bytes / max(self.ops, 1)

    def format(self) -> str:
        lines = [
            f"trace store [{self.backend}]: {self.ops} ops, "
            f"{self.tasks} tasks, {self.symbols} interned symbols, "
            f"{self.addresses} interned addresses",
            f"memory: {self.memory_bytes} bytes "
            f"({self.bytes_per_op:.1f} bytes/op)",
        ]
        if self.disk_bytes is not None:
            lines.append(f"on disk: {self.disk_bytes} bytes")
        if self.decode is not None:
            lines.append(self.decode.format())
        return "\n".join(lines)


def trace_profile(trace, disk_bytes: Optional[int] = None) -> TraceProfile:
    """Measure a trace's in-memory operation storage.

    For the columnar backend the count is exact column + side-table
    bytes; for the legacy object backend it is the per-instance cost
    (object header + ``__dict__``) of every operation, *excluding* the
    payload objects the fields reference — a deliberate undercount, so
    columnar-vs-object comparisons favor the object path.
    """
    store = getattr(trace, "store", None)
    decode = getattr(trace, "decode_stats", None)
    if store is not None:
        return TraceProfile(
            backend="columnar",
            ops=len(store),
            tasks=len(trace.tasks),
            symbols=len(store.symbols),
            addresses=len(store.addresses),
            memory_bytes=store.memory_bytes(),
            disk_bytes=disk_bytes,
            decode=decode,
        )
    ops = trace.ops
    total = sys.getsizeof(ops)
    for op in ops:
        total += sys.getsizeof(op) + sys.getsizeof(op.__dict__)
    return TraceProfile(
        backend="object",
        ops=len(ops),
        tasks=len(trace.tasks),
        symbols=0,
        addresses=0,
        memory_bytes=total,
        disk_bytes=disk_bytes,
        decode=decode,
    )
