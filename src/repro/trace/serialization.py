"""JSONL (de)serialization of traces — versioned, streaming, gzip-able.

The on-device CAFA prototype streams trace records through a kernel
logger device and reads them back over ADB (Section 5.1).  Our stand-in
is a line-oriented JSON format in two versions:

* **v1** (legacy): a header line, one ``{"task_info": ...}`` line per
  task, then one self-describing ``{"op": {...}}`` dict per operation.
  Verbose but diff-friendly; still fully readable and writable.
* **v2** (default): the same header/task lines, then positional array
  records.  ``["s", text]`` defines the next string symbol id,
  ``["a", [scope, owner, field]]`` the next address id, and
  ``["o", kind, time, task_sym, payload...]`` one operation whose
  payload layout is the kind's column schema
  (:data:`repro.trace.store.SCHEMAS`).  The header carries the kind
  code table, so a reader never guesses at positional meanings.

Both writer and reader stream line by line in constant memory (the
reader's live state is the interning tables, which grow with the
number of *distinct* symbols, not with trace length), and both
versions are transparently gzip-compressed when the file path ends in
``.gz``.  ``load_trace`` auto-negotiates the version from the header;
``dump_trace(..., version=1)`` keeps writing the legacy format.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import IO, Any, List, Optional, Union

from .operations import BranchKind, OpKind, operation_from_dict
from .store import (
    ADDR,
    BOOL,
    ENUM,
    KIND_CODES,
    KIND_LIST,
    SCHEMAS,
    STR,
)
from .trace import TaskInfo, Trace, TraceError

FORMAT_NAME = "cafa-trace"
#: the version new files are written in
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

_SCHEMA_LIST = tuple(SCHEMAS[kind] for kind in KIND_LIST)


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def dump_trace(trace: Trace, fp: IO[str], version: int = FORMAT_VERSION) -> None:
    """Write ``trace`` to a text stream in JSONL format.

    ``version`` selects the on-disk format; both versions stream one
    line at a time and never hold the serialized trace in memory.
    """
    if version not in SUPPORTED_VERSIONS:
        raise TraceError(f"cannot write trace version {version!r}")
    header = {
        "format": FORMAT_NAME,
        "version": version,
        "tasks": len(trace.tasks),
        "ops": len(trace),
    }
    if version == 2:
        header["kinds"] = [kind.value for kind in KIND_LIST]
    fp.write(json.dumps(header) + "\n")
    for info in trace.tasks.values():
        fp.write(json.dumps({"task_info": info.to_dict()}) + "\n")
    if version == 1:
        for op in trace.ops:
            fp.write(json.dumps({"op": op.to_dict()}) + "\n")
        return
    _dump_ops_v2(trace, fp)


def _iter_encoded_rows(trace: Trace):
    """``(kind code, time, task, payload values)`` per op, backend-agnostic."""
    store = trace.store
    if store is not None:
        yield from store.rows_encoded()
        return
    for op in trace.ops:
        code = KIND_CODES[op.kind]
        values = [getattr(op, name) for name, _typ in _SCHEMA_LIST[code]]
        yield code, op.time, op.task, values


def _dump_ops_v2(trace: Trace, fp: IO[str]) -> None:
    compact = json.JSONEncoder(separators=(",", ":")).encode
    sym_ids: dict = {}
    addr_ids: dict = {}

    def sym(value: str) -> int:
        sid = sym_ids.get(value)
        if sid is None:
            sid = sym_ids[value] = len(sym_ids)
            fp.write(compact(["s", value]) + "\n")
        return sid

    def addr(value) -> int:
        key = tuple(value)
        aid = addr_ids.get(key)
        if aid is None:
            aid = addr_ids[key] = len(addr_ids)
            fp.write(compact(["a", list(key)]) + "\n")
        return aid

    for code, time, task, values in _iter_encoded_rows(trace):
        rec: List[Any] = ["o", code, time, sym(task)]
        for (_name, typ), value in zip(_SCHEMA_LIST[code], values):
            if typ == STR:
                rec.append(sym(value))
            elif typ == ADDR:
                rec.append(addr(value))
            elif typ == BOOL:
                rec.append(1 if value else 0)
            elif typ == ENUM:
                rec.append(sym(value.value))
            else:  # INT / OPT_INT: ints and None pass through as JSON
                rec.append(value)
        fp.write(compact(rec) + "\n")


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def load_trace(
    fp: IO[str],
    expect_version: Optional[int] = None,
    columnar: bool = True,
) -> Trace:
    """Read a trace previously written by :func:`dump_trace`.

    The format version is negotiated from the header; pass
    ``expect_version`` to *require* a specific one (the CLI's
    ``--format`` flag).  ``columnar`` selects the backend of the
    returned :class:`Trace`.
    """
    header_line = fp.readline()
    if not header_line:
        raise TraceError("empty trace stream")
    header = json.loads(header_line)
    if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
        raise TraceError(f"not a {FORMAT_NAME} stream: {header!r}")
    version = header.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise TraceError(f"unsupported trace version {version!r}")
    if expect_version is not None and version != expect_version:
        raise TraceError(
            f"expected trace version {expect_version}, stream is version {version}"
        )
    trace = Trace(columnar=columnar)
    if version == 1:
        _load_body_v1(trace, fp)
    else:
        _load_body_v2(trace, fp, header)
    expected_tasks = header.get("tasks")
    if expected_tasks is not None and expected_tasks != len(trace.tasks):
        raise TraceError(
            f"task count mismatch: header says {expected_tasks}, "
            f"stream has {len(trace.tasks)}"
        )
    expected_ops = header.get("ops")
    if expected_ops is not None and expected_ops != len(trace):
        raise TraceError(
            f"op count mismatch: header says {expected_ops}, "
            f"stream has {len(trace)}"
        )
    return trace


def _load_body_v1(trace: Trace, fp: IO[str]) -> None:
    for line in fp:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "task_info" in record:
            trace.add_task(TaskInfo.from_dict(record["task_info"]))
        elif "op" in record:
            trace.append(operation_from_dict(record["op"]))
        else:
            raise TraceError(f"unrecognized trace record: {record!r}")


def _load_body_v2(trace: Trace, fp: IO[str], header: dict) -> None:
    # Version negotiation: positions in the header's kind table define
    # the wire codes, so a file written under a different (e.g. future,
    # reordered) vocabulary still decodes — or fails loudly on a kind
    # this reader does not know.
    kind_names = header.get("kinds")
    if not isinstance(kind_names, list) or not kind_names:
        raise TraceError("v2 stream header lacks its kind table")
    codes: List[int] = []
    schemas: List[tuple] = []
    for name in kind_names:
        try:
            kind = OpKind(name)
        except ValueError:
            raise TraceError(f"unknown operation kind {name!r} in header") from None
        codes.append(KIND_CODES[kind])
        schemas.append(_SCHEMA_LIST[KIND_CODES[kind]])
    symbols: List[str] = []
    addresses: List[tuple] = []
    append_decoded = trace._append_decoded
    for line in fp:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if isinstance(record, list):
            tag = record[0]
            if tag == "o":
                try:
                    schema = schemas[record[1]]
                    code = codes[record[1]]
                except (IndexError, TypeError):
                    raise TraceError(
                        f"op record with undeclared kind code: {record!r}"
                    ) from None
                if len(record) != 4 + len(schema):
                    raise TraceError(f"malformed op record: {record!r}")
                values: List[Any] = []
                for (_name, typ), raw in zip(schema, record[4:]):
                    if typ == STR:
                        values.append(symbols[raw])
                    elif typ == ADDR:
                        values.append(addresses[raw])
                    elif typ == BOOL:
                        values.append(bool(raw))
                    elif typ == ENUM:
                        values.append(BranchKind(symbols[raw]))
                    else:  # INT / OPT_INT
                        values.append(raw)
                append_decoded(code, record[2], symbols[record[3]], values)
            elif tag == "s":
                symbols.append(record[1])
            elif tag == "a":
                addresses.append(tuple(record[1]))
            else:
                raise TraceError(f"unrecognized trace record: {record!r}")
        elif isinstance(record, dict) and "task_info" in record:
            trace.add_task(TaskInfo.from_dict(record["task_info"]))
        else:
            raise TraceError(f"unrecognized trace record: {record!r}")


# ---------------------------------------------------------------------------
# File and string entry points
# ---------------------------------------------------------------------------


def _open_for(path: Union[str, Path], mode: str) -> IO[str]:
    """Text stream for ``path``; transparently gzip on a ``.gz`` suffix."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trace_file(
    trace: Trace, path: Union[str, Path], version: int = FORMAT_VERSION
) -> None:
    """Save a trace to ``path`` (overwrites; gzip when it ends in .gz)."""
    with _open_for(path, "w") as fp:
        dump_trace(trace, fp, version=version)


def load_trace_file(
    path: Union[str, Path],
    expect_version: Optional[int] = None,
    columnar: bool = True,
) -> Trace:
    """Load a trace from ``path`` (gzip when it ends in .gz)."""
    with _open_for(path, "r") as fp:
        return load_trace(fp, expect_version=expect_version, columnar=columnar)


def dumps_trace(trace: Trace, version: int = FORMAT_VERSION) -> str:
    """Serialize a trace to a string."""
    buf = io.StringIO()
    dump_trace(trace, buf, version=version)
    return buf.getvalue()


def loads_trace(
    text: str, expect_version: Optional[int] = None, columnar: bool = True
) -> Trace:
    """Deserialize a trace from a string."""
    return load_trace(
        io.StringIO(text), expect_version=expect_version, columnar=columnar
    )
