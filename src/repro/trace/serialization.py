"""JSONL (de)serialization of traces.

The on-device CAFA prototype streams trace records through a kernel
logger device and reads them back over ADB (Section 5.1).  Our stand-in
is a line-oriented JSON format: a header line describing the format
version, one line per task-table entry, then one line per operation.
The format round-trips exactly and is diff-friendly, which the test
suite relies on.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import IO, Union

from .operations import operation_from_dict
from .trace import TaskInfo, Trace, TraceError

FORMAT_NAME = "cafa-trace"
FORMAT_VERSION = 1


def dump_trace(trace: Trace, fp: IO[str]) -> None:
    """Write ``trace`` to a text stream in JSONL format."""
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "tasks": len(trace.tasks),
        "ops": len(trace.ops),
    }
    fp.write(json.dumps(header) + "\n")
    for info in trace.tasks.values():
        fp.write(json.dumps({"task_info": info.to_dict()}) + "\n")
    for op in trace.ops:
        fp.write(json.dumps({"op": op.to_dict()}) + "\n")


def load_trace(fp: IO[str]) -> Trace:
    """Read a trace previously written by :func:`dump_trace`."""
    header_line = fp.readline()
    if not header_line:
        raise TraceError("empty trace stream")
    header = json.loads(header_line)
    if header.get("format") != FORMAT_NAME:
        raise TraceError(f"not a {FORMAT_NAME} stream: {header!r}")
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(f"unsupported trace version {header.get('version')!r}")
    trace = Trace()
    for line in fp:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "task_info" in record:
            trace.add_task(TaskInfo.from_dict(record["task_info"]))
        elif "op" in record:
            trace.append(operation_from_dict(record["op"]))
        else:
            raise TraceError(f"unrecognized trace record: {record!r}")
    expected_tasks = header.get("tasks")
    if expected_tasks is not None and expected_tasks != len(trace.tasks):
        raise TraceError(
            f"task count mismatch: header says {expected_tasks}, "
            f"stream has {len(trace.tasks)}"
        )
    expected_ops = header.get("ops")
    if expected_ops is not None and expected_ops != len(trace.ops):
        raise TraceError(
            f"op count mismatch: header says {expected_ops}, "
            f"stream has {len(trace.ops)}"
        )
    return trace


def save_trace_file(trace: Trace, path: Union[str, Path]) -> None:
    """Save a trace to ``path`` (overwrites)."""
    with open(path, "w", encoding="utf-8") as fp:
        dump_trace(trace, fp)


def load_trace_file(path: Union[str, Path]) -> Trace:
    """Load a trace from ``path``."""
    with open(path, "r", encoding="utf-8") as fp:
        return load_trace(fp)


def dumps_trace(trace: Trace) -> str:
    """Serialize a trace to a string."""
    buf = io.StringIO()
    dump_trace(trace, buf)
    return buf.getvalue()


def loads_trace(text: str) -> Trace:
    """Deserialize a trace from a string."""
    return load_trace(io.StringIO(text))
