"""Trace (de)serialization — versioned, streaming, gzip-able.

The on-device CAFA prototype streams trace records through a kernel
logger device and reads them back over ADB (Section 5.1).  Our stand-in
comes in three versions:

* **v1** (legacy JSONL): a header line, one ``{"task_info": ...}`` line
  per task, then one self-describing ``{"op": {...}}`` dict per
  operation.  Verbose but diff-friendly; still readable and writable.
* **v2** (default JSONL): the same header/task lines, then positional
  array records.  ``["s", text]`` defines the next string symbol id,
  ``["a", [scope, owner, field]]`` the next address id, and
  ``["o", kind, time, task_sym, payload...]`` one operation whose
  payload layout is the kind's column schema
  (:data:`repro.trace.store.SCHEMAS`).  The header carries the kind
  code table, so a reader never guesses at positional meanings.
* **v3** (binary, :mod:`repro.trace.binary`): the same header and
  interning model as v2, but length-prefixed binary frames whose op
  batches are on-disk columnar segments — ``array.frombytes`` loading
  and mmap column-sparse scans.  Written/read through the same entry
  points here (``save_trace_file(..., version=3)`` and plain
  ``load_trace_file``, which sniffs text vs binary from the first
  byte).

All writers and readers stream in constant transient memory (live
state is the interning tables, which grow with the number of
*distinct* symbols, not with trace length), and every version is
transparently gzip-compressed when the file path ends in ``.gz``.
``load_trace`` auto-negotiates the version from the header;
:func:`convert_trace_file` transcodes any version to any other,
streaming.
"""

from __future__ import annotations

import codecs
import gzip
import io
import json
import zlib
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

from ..obs.spans import span
from .operations import BranchKind, OpKind, operation_from_dict
from .store import (
    ADDR,
    BOOL,
    ENUM,
    KIND_CODES,
    KIND_LIST,
    SCHEMAS,
    STR,
    DecodeStats,
)
from .trace import TaskInfo, Trace, TraceError, TraceFormatError

FORMAT_NAME = "cafa-trace"
#: the version new files are written in
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2, 3)
#: the line-oriented JSON subset of :data:`SUPPORTED_VERSIONS`
TEXT_VERSIONS = (1, 2)

_SCHEMA_LIST = tuple(SCHEMAS[kind] for kind in KIND_LIST)


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


class _V1Writer:
    """Streaming v1 writer, byte-identical to the original v1 dumper.

    Shares the sink-ish shape of :class:`repro.trace.binary.TraceWriterV3`
    (``write_task``/``write_row``/``finish``), which is what lets the
    transcoder drive every output format through one code path.
    """

    version = 1

    def __init__(self, fp: IO[str], tasks: int = 0, ops: int = 0) -> None:
        self._fp = fp
        fp.write(
            json.dumps(
                {
                    "format": FORMAT_NAME,
                    "version": 1,
                    "tasks": tasks,
                    "ops": ops,
                }
            )
            + "\n"
        )

    def write_task(self, info: Dict[str, Any]) -> None:
        self._fp.write(json.dumps({"task_info": info}) + "\n")

    def write_row(self, code: int, time: int, task: str, values) -> None:
        # Reproduce Operation.to_dict key order exactly: kind, then the
        # dataclass fields (task/time first, payload in schema order —
        # store._check_schemas pins schema order to declaration order).
        out: Dict[str, Any] = {
            "kind": KIND_LIST[code].value,
            "task": task,
            "time": time,
        }
        for (name, typ), value in zip(_SCHEMA_LIST[code], values):
            if typ == ENUM:
                value = value.value
            elif typ == ADDR:
                value = list(value)
            out[name] = value
        self._fp.write(json.dumps({"op": out}) + "\n")

    def finish(self) -> None:
        pass


class _V2Writer:
    """Streaming v2 writer, byte-identical to the original v2 dumper."""

    version = 2

    def __init__(self, fp: IO[str], tasks: int = 0, ops: int = 0) -> None:
        self._fp = fp
        self._compact = json.JSONEncoder(separators=(",", ":")).encode
        self._sym_ids: dict = {}
        self._addr_ids: dict = {}
        fp.write(
            json.dumps(
                {
                    "format": FORMAT_NAME,
                    "version": 2,
                    "tasks": tasks,
                    "ops": ops,
                    "kinds": [kind.value for kind in KIND_LIST],
                }
            )
            + "\n"
        )

    def _sym(self, value: str) -> int:
        sid = self._sym_ids.get(value)
        if sid is None:
            sid = self._sym_ids[value] = len(self._sym_ids)
            self._fp.write(self._compact(["s", value]) + "\n")
        return sid

    def _addr(self, value) -> int:
        key = tuple(value)
        aid = self._addr_ids.get(key)
        if aid is None:
            aid = self._addr_ids[key] = len(self._addr_ids)
            self._fp.write(self._compact(["a", list(key)]) + "\n")
        return aid

    def write_task(self, info: Dict[str, Any]) -> None:
        self._fp.write(json.dumps({"task_info": info}) + "\n")

    def write_row(self, code: int, time: int, task: str, values) -> None:
        rec: List[Any] = ["o", code, time, self._sym(task)]
        for (_name, typ), value in zip(_SCHEMA_LIST[code], values):
            if typ == STR:
                rec.append(self._sym(value))
            elif typ == ADDR:
                rec.append(self._addr(value))
            elif typ == BOOL:
                rec.append(1 if value else 0)
            elif typ == ENUM:
                rec.append(self._sym(value.value))
            else:  # INT / OPT_INT: ints and None pass through as JSON
                rec.append(value)
        self._fp.write(self._compact(rec) + "\n")

    def finish(self) -> None:
        pass


def _iter_encoded_rows(trace: Trace):
    """``(kind code, time, task, payload values)`` per op, backend-agnostic."""
    store = trace.store
    if store is not None:
        yield from store.rows_encoded()
        return
    for op in trace.ops:
        code = KIND_CODES[op.kind]
        values = [getattr(op, name) for name, _typ in _SCHEMA_LIST[code]]
        yield code, op.time, op.task, values


def _make_writer(fp, version: int, tasks: int, ops: int):
    """A streaming writer (text or binary ``fp`` to match ``version``)."""
    if version == 1:
        return _V1Writer(fp, tasks=tasks, ops=ops)
    if version == 2:
        return _V2Writer(fp, tasks=tasks, ops=ops)
    if version == 3:
        from .binary import TraceWriterV3

        return TraceWriterV3(fp, tasks=tasks, ops=ops)
    raise TraceError(f"cannot write trace version {version!r}")


def _dump_via_writer(trace: Trace, writer) -> None:
    for info in trace.tasks.values():
        writer.write_task(info.to_dict())
    for code, time, task, values in _iter_encoded_rows(trace):
        writer.write_row(code, time, task, values)
    writer.finish()


def dump_trace(trace: Trace, fp: IO[str], version: int = FORMAT_VERSION) -> None:
    """Write ``trace`` to a *text* stream in JSONL format (v1/v2).

    ``version`` selects the on-disk format; both text versions stream
    one line at a time and never hold the serialized trace in memory.
    Version 3 is binary — use :func:`dump_trace_binary` or
    :func:`save_trace_file`, which dispatches on version.
    """
    if version == 3:
        raise TraceError(
            "cannot write trace version 3 to a text stream; "
            "use dump_trace_binary or save_trace_file"
        )
    if version not in TEXT_VERSIONS:
        raise TraceError(f"cannot write trace version {version!r}")
    writer = _make_writer(fp, version, tasks=len(trace.tasks), ops=len(trace))
    _dump_via_writer(trace, writer)


def dump_trace_binary(trace: Trace, fp: IO[bytes]) -> None:
    """Write ``trace`` to a binary stream in the v3 framed format."""
    writer = _make_writer(fp, 3, tasks=len(trace.tasks), ops=len(trace))
    _dump_via_writer(trace, writer)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


#: decompression/decoding failures that signal a physically truncated
#: or corrupted stream rather than a logically malformed record
_STREAM_DAMAGE = (EOFError, UnicodeDecodeError, gzip.BadGzipFile, zlib.error)


class TraceStreamDecoder:
    """Push-based incremental decoder for the JSONL trace formats.

    Feed raw text as it arrives (:meth:`feed`) or one complete line at
    a time (:meth:`feed_line`); records decode straight into
    :attr:`trace`, which is live and readable at any point between
    feeds — this is what the streaming service tails files with.  Call
    :meth:`finish` at end of input to flush a buffered partial final
    line and run the header count checks.

    ``strict`` selects the failure mode for damaged input.  Under
    ``strict=True`` (the default) any malformed, corrupted, or
    truncated record raises :class:`TraceFormatError` naming the line
    number.  Under ``strict=False`` — the degraded path for
    crash-truncated sessions — decoding stops at the first damaged
    record instead: the error is recorded on :attr:`error`,
    :attr:`degraded` flips true, later feeds are ignored, and
    :attr:`trace` holds the valid prefix.  Header problems (missing,
    foreign format, unsupported version) always raise, even in salvage
    mode: without a header there is no prefix worth keeping.

    A ``sink`` (``on_header(dict)``/``on_task(dict)``/
    ``on_row(code, time, task, values)``) replaces the trace entirely:
    records are decoded and handed over without being stored — the
    constant-memory transcoding path.
    """

    def __init__(
        self,
        expect_version: Optional[int] = None,
        columnar: bool = True,
        strict: bool = True,
        trace: Optional[Trace] = None,
        sink=None,
    ):
        self.trace = trace if trace is not None else Trace(columnar=columnar)
        self.expect_version = expect_version
        self.strict = strict
        self.sink = sink
        self.header: Optional[dict] = None
        self.error: Optional[TraceFormatError] = None
        #: body records decoded so far (ops + interning defs + task infos)
        self.records = 0
        self._version = 0
        self._lineno = 0
        self._buffer = ""
        self._chars_fed = 0
        self._ops_seen = 0
        self._tasks_seen = 0
        self._codes: List[int] = []
        self._schemas: List[tuple] = []
        self._symbols: List[str] = []
        self._addresses: List[tuple] = []

    @property
    def degraded(self) -> bool:
        """True once salvage mode has stopped at a damaged record."""
        return self.error is not None

    def decode_stats(self) -> DecodeStats:
        return DecodeStats(
            version=self._version,
            frames=self._lineno,
            records=self.records,
            ops_decoded=self._ops_seen,
            bytes_read=self._chars_fed,
        )

    def feed(self, chunk: str) -> int:
        """Buffer ``chunk`` and decode every complete line in it.

        Returns the number of operations appended to :attr:`trace`.
        A trailing partial line stays buffered until the next feed (or
        :meth:`finish`).
        """
        appended = 0
        self._chars_fed += len(chunk)
        self._buffer += chunk
        while True:
            cut = self._buffer.find("\n")
            if cut < 0:
                return appended
            line = self._buffer[:cut]
            self._buffer = self._buffer[cut + 1 :]
            appended += self._feed_line(line)

    def feed_line(self, line: str) -> int:
        """Decode one complete line; returns the ops appended (0 or 1).

        The line is taken to be complete — a caller reading from input
        that may end mid-line (a crash-truncated file, a live tail)
        should use :meth:`feed`, which buffers an unterminated tail
        for :meth:`flush`/:meth:`finish` to rule on.

        Raises :class:`TraceFormatError` on damage when ``strict``,
        otherwise records it and turns every later feed into a no-op.
        """
        self._chars_fed += len(line) + 1
        return self._feed_line(line)

    def _feed_line(self, line: str) -> int:
        if self.error is not None:
            return 0
        self._lineno += 1
        stripped = line.strip()
        if not stripped:
            return 0
        before = self._ops_seen
        try:
            self._decode_line(stripped)
        except TraceFormatError as exc:
            if self.strict or self.header is None:
                raise
            self.error = exc
            return 0
        return self._ops_seen - before

    def flush(self) -> int:
        """Rule on a buffered trailing line that never got its newline.

        The writer terminates every line, so input that ends mid-line
        is truncation evidence — and a byte cut through a record's
        trailing number can still parse as *valid* JSON with a
        corrupted value, which the header count checks cannot always
        catch.  An unterminated trailing line therefore raises
        :class:`TraceFormatError` under ``strict`` and is discarded
        (marking the decoder degraded) in salvage mode.  Returns the
        ops appended, which is always 0; kept for symmetry with
        :meth:`feed`.

        :meth:`finish` calls this, but a long-running consumer that
        never reaches a definite end of input (the streaming service
        tailing a live file) can flush explicitly without triggering
        the header count checks.
        """
        if not self._buffer:
            return 0
        self._buffer = ""
        error = TraceFormatError(
            "stream ends mid-line; the unterminated final record "
            "cannot be trusted",
            line=self._lineno + 1,
        )
        if self.strict:
            raise error
        if self.error is None:
            self.error = error
        return 0

    def finish(self) -> Trace:
        """Flush any buffered partial line, check counts, return the trace."""
        self.flush()
        if self.header is None:
            raise TraceError("empty trace stream")
        if self.strict:
            expected_tasks = self.header.get("tasks")
            if expected_tasks is not None and expected_tasks != self._tasks_seen:
                raise TraceFormatError(
                    f"task count mismatch: header says {expected_tasks}, "
                    f"stream has {self._tasks_seen}"
                )
            expected_ops = self.header.get("ops")
            if expected_ops is not None and expected_ops != self._ops_seen:
                raise TraceFormatError(
                    f"op count mismatch: header says {expected_ops}, "
                    f"stream has {self._ops_seen}"
                )
        self.trace.decode_stats = self.decode_stats()
        return self.trace

    def mark_damaged(self, exc: Exception) -> None:
        """Record out-of-band stream damage (e.g. a truncated gzip
        member noticed by the decompressor, not by any line)."""
        error = TraceFormatError(f"damaged trace stream: {exc}")
        if self.strict:
            raise error from None
        if self.error is None:
            self.error = error

    # -- internals ----------------------------------------------------

    def _decode_line(self, line: str) -> None:
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TraceFormatError(f"invalid JSON: {exc}", line=self._lineno) from None
        if self.header is None:
            self._take_header(record)
            return
        self.records += 1
        try:
            if self._version == 1:
                self._decode_v1(record)
            else:
                self._decode_v2(record)
        except TraceFormatError:
            raise
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"corrupt trace record {record!r} "
                f"({exc.__class__.__name__}: {exc})",
                line=self._lineno,
            ) from None

    def _take_header(self, record: Any) -> None:
        if not isinstance(record, dict) or record.get("format") != FORMAT_NAME:
            raise TraceError(f"not a {FORMAT_NAME} stream: {record!r}")
        version = record.get("version")
        if version == 3:
            raise TraceError(
                "trace version 3 is binary, but this is a text stream; "
                "the file was probably re-encoded or damaged"
            )
        if version not in TEXT_VERSIONS:
            raise TraceError(f"unsupported trace version {version!r}")
        if self.expect_version is not None and version != self.expect_version:
            raise TraceError(
                f"expected trace version {self.expect_version}, "
                f"stream is version {version}"
            )
        if version == 2:
            # Version negotiation: positions in the header's kind table
            # define the wire codes, so a file written under a different
            # (e.g. future, reordered) vocabulary still decodes — or
            # fails loudly on a kind this reader does not know.
            kind_names = record.get("kinds")
            if not isinstance(kind_names, list) or not kind_names:
                raise TraceError("v2 stream header lacks its kind table")
            for name in kind_names:
                try:
                    kind = OpKind(name)
                except ValueError:
                    raise TraceError(
                        f"unknown operation kind {name!r} in header"
                    ) from None
                self._codes.append(KIND_CODES[kind])
                self._schemas.append(_SCHEMA_LIST[KIND_CODES[kind]])
        self._version = version
        self.header = record
        if self.sink is not None:
            self.sink.on_header(record)

    def _add_task(self, info: Dict[str, Any]) -> None:
        if self.sink is not None:
            self.sink.on_task(info)
        else:
            self.trace.add_task(TaskInfo.from_dict(info))
        self._tasks_seen += 1

    def _decode_v1(self, record: Any) -> None:
        if isinstance(record, dict) and "task_info" in record:
            self._add_task(record["task_info"])
        elif isinstance(record, dict) and "op" in record:
            op = operation_from_dict(record["op"])
            if self.sink is not None:
                code = KIND_CODES[op.kind]
                values = [
                    getattr(op, name) for name, _typ in _SCHEMA_LIST[code]
                ]
                self.sink.on_row(code, op.time, op.task, values)
            else:
                self.trace.append(op)
            self._ops_seen += 1
        else:
            raise TraceFormatError(
                f"unrecognized trace record: {record!r}", line=self._lineno
            )

    def _decode_v2(self, record: Any) -> None:
        if isinstance(record, list) and record:
            tag = record[0]
            if tag == "o":
                try:
                    schema = self._schemas[record[1]]
                    code = self._codes[record[1]]
                except (IndexError, TypeError):
                    raise TraceFormatError(
                        f"op record with undeclared kind code: {record!r}",
                        line=self._lineno,
                    ) from None
                if len(record) != 4 + len(schema):
                    raise TraceFormatError(
                        f"malformed op record: {record!r}", line=self._lineno
                    )
                symbols = self._symbols
                values: List[Any] = []
                for (_name, typ), raw in zip(schema, record[4:]):
                    if typ == STR:
                        values.append(symbols[raw])
                    elif typ == ADDR:
                        values.append(self._addresses[raw])
                    elif typ == BOOL:
                        values.append(bool(raw))
                    elif typ == ENUM:
                        values.append(BranchKind(symbols[raw]))
                    else:  # INT / OPT_INT
                        values.append(raw)
                if self.sink is not None:
                    self.sink.on_row(code, record[2], symbols[record[3]], values)
                else:
                    self.trace._append_decoded(
                        code, record[2], symbols[record[3]], values
                    )
                self._ops_seen += 1
            elif tag == "s":
                self._symbols.append(record[1])
            elif tag == "a":
                self._addresses.append(tuple(record[1]))
            else:
                raise TraceFormatError(
                    f"unrecognized trace record: {record!r}", line=self._lineno
                )
        elif isinstance(record, dict) and "task_info" in record:
            self._add_task(record["task_info"])
        else:
            raise TraceFormatError(
                f"unrecognized trace record: {record!r}", line=self._lineno
            )


class AnyTraceDecoder:
    """Format-sniffing push decoder: text v1/v2, binary v3, or a
    single-session mux envelope — one API.

    The first payload byte decides: ``0x93`` (the v3 magic's first
    byte, invalid as UTF-8 and as JSON) selects the binary decoder,
    ``0x9e`` (the session-envelope magic, :mod:`repro.trace.envelope`)
    selects the envelope adapter — which unwraps a *single* session's
    frames transparently and errors on a multiplexed stream, pointing
    at ``repro serve`` — and anything else the text decoder.  Callers
    therefore tail files and pipes without knowing what was recorded
    into them.  :meth:`feed` accepts ``bytes`` (sniffed; text is
    decoded incrementally as UTF-8) or ``str`` (text formats only,
    e.g. a line-mode stdin); :meth:`feed_line` is text-only.

    The facade owns :attr:`trace` from construction — before the first
    byte arrives there is already a live (empty) trace to attach
    analyses to, which is what the streaming service does.  Assigning
    ``decoder.trace`` (the service's epoch GC) forwards to the inner
    decoder.
    """

    def __init__(
        self,
        expect_version: Optional[int] = None,
        columnar: bool = True,
        strict: bool = True,
        sink=None,
    ):
        self._trace = Trace(columnar=columnar)
        self._expect_version = expect_version
        self._columnar = columnar
        self._strict = strict
        self._sink = sink
        self._inner = None
        self._utf8 = None  # incremental decoder once sniffed as text

    # -- inner construction -------------------------------------------

    def _make_inner(self, binary: bool):
        if binary:
            from .binary import BinaryTraceDecoder

            self._inner = BinaryTraceDecoder(
                expect_version=self._expect_version,
                strict=self._strict,
                trace=self._trace,
                sink=self._sink,
            )
        else:
            self._utf8 = codecs.getincrementaldecoder("utf-8")()
            self._inner = TraceStreamDecoder(
                expect_version=self._expect_version,
                strict=self._strict,
                trace=self._trace,
                sink=self._sink,
            )
        return self._inner

    def _make_mux_inner(self):
        """A single-session envelope adapter over a nested facade."""
        from .envelope import SingleSessionMuxAdapter

        nested = AnyTraceDecoder(
            expect_version=self._expect_version,
            columnar=self._columnar,
            strict=self._strict,
            sink=self._sink,
        )
        nested.trace = self._trace
        self._inner = SingleSessionMuxAdapter(nested, strict=self._strict)
        return self._inner

    def _text_inner(self):
        inner = self._inner
        if inner is None:
            inner = self._make_inner(binary=False)
        elif self._utf8 is None:
            raise TraceError(
                "cannot feed text into a binary (v3 or enveloped) "
                "trace stream"
            )
        return inner

    # -- decoder surface ----------------------------------------------

    @property
    def trace(self) -> Trace:
        return self._inner.trace if self._inner is not None else self._trace

    @trace.setter
    def trace(self, value: Trace) -> None:
        self._trace = value
        if self._inner is not None:
            self._inner.trace = value

    @property
    def strict(self) -> bool:
        return self._strict

    @property
    def header(self) -> Optional[dict]:
        return self._inner.header if self._inner is not None else None

    @property
    def error(self) -> Optional[TraceFormatError]:
        return self._inner.error if self._inner is not None else None

    @property
    def degraded(self) -> bool:
        return self._inner.degraded if self._inner is not None else False

    @property
    def records(self) -> int:
        return self._inner.records if self._inner is not None else 0

    @property
    def binary(self) -> Optional[bool]:
        """True/False once sniffed; None before the first byte."""
        if self._inner is None:
            return None
        return self._utf8 is None

    @property
    def multiplexed(self) -> bool:
        """True once sniffed as a session-envelope (mux) stream."""
        from .envelope import SingleSessionMuxAdapter

        return isinstance(self._inner, SingleSessionMuxAdapter)

    @property
    def session(self) -> Optional[str]:
        """The envelope's session id (mux streams only, once seen)."""
        return getattr(self._inner, "session", None)

    def decode_stats(self) -> Optional[DecodeStats]:
        return self._inner.decode_stats() if self._inner is not None else None

    def feed(self, chunk: Union[bytes, bytearray, str]) -> int:
        """Sniff (on first data) and decode; returns ops appended."""
        with span("trace.decode", bytes=len(chunk)):
            if isinstance(chunk, str):
                if not chunk:
                    return 0
                return self._text_inner().feed(chunk)
            if not chunk:
                return 0
            inner = self._inner
            if inner is None:
                first = chunk[:1]
                if first == b"\x9e":  # session envelope (repro.trace.envelope)
                    inner = self._make_mux_inner()
                else:
                    inner = self._make_inner(binary=first == b"\x93")
            if self._utf8 is None:
                return inner.feed(bytes(chunk))
            return inner.feed(self._utf8.decode(bytes(chunk)))

    def feed_line(self, line: str) -> int:
        """Decode one complete text line (text formats only)."""
        return self._text_inner().feed_line(line)

    def flush(self) -> int:
        if self._inner is None:
            return 0
        return self._inner.flush()

    def finish(self) -> Trace:
        if self._inner is None:
            raise TraceError("empty trace stream")
        if self._utf8 is not None:
            try:
                tail = self._utf8.decode(b"", final=True)
            except UnicodeDecodeError as exc:
                self._inner.mark_damaged(exc)
            else:
                if tail:
                    self._inner.feed(tail)
        return self._inner.finish()

    def mark_damaged(self, exc: Exception) -> None:
        inner = self._inner
        if inner is None:
            inner = self._make_inner(binary=False)
        inner.mark_damaged(exc)


def load_trace(
    fp,
    expect_version: Optional[int] = None,
    columnar: bool = True,
    strict: bool = True,
) -> Trace:
    """Read a trace previously written by :func:`dump_trace` /
    :func:`dump_trace_binary`.

    ``fp`` may be a text or a binary stream; the format version is
    negotiated from the first bytes (pass ``expect_version`` to
    *require* one — the CLI's ``--format`` flag).  ``columnar`` selects
    the backend of the returned :class:`Trace`.

    Damaged input — truncated files (including one that merely ends
    mid-line or mid-frame: the writers terminate every record, so a
    missing terminator is truncation evidence), mid-record corruption,
    a gzip member cut short — raises :class:`TraceFormatError`.  Pass
    ``strict=False`` to *salvage* instead: decoding stops at the first
    damaged record and the valid prefix is returned (crash-truncated
    sessions still analyze, just on fewer events).  Header problems
    always raise.
    """
    decoder = AnyTraceDecoder(
        expect_version=expect_version, columnar=columnar, strict=strict
    )
    is_text = isinstance(fp, io.TextIOBase) or isinstance(
        getattr(fp, "read", lambda *_a: "")(0), str
    )
    try:
        if is_text:
            for line in fp:
                # feed(), not feed_line(): a crash-truncated file's last
                # line has no newline, and only the buffer path lets
                # finish() tell a complete final record from a cut one.
                decoder.feed(line)
                if decoder.degraded:
                    break
        else:
            # read1 (one underlying read per call) rather than read:
            # BufferedReader.read over a truncated gzip member raises
            # EOFError *inside* the fill loop, losing the decompressed
            # prefix it had accumulated — read1 hands each piece over
            # before the damage surfaces, so salvage sees the prefix.
            read = getattr(fp, "read1", fp.read)
            while True:
                chunk = read(1 << 16)
                if not chunk:
                    break
                decoder.feed(chunk)
                if decoder.degraded:
                    break
    except _STREAM_DAMAGE as exc:
        decoder.mark_damaged(exc)
    return decoder.finish()


# ---------------------------------------------------------------------------
# File and string entry points
# ---------------------------------------------------------------------------


def _open_for(path: Union[str, Path], mode: str) -> IO[str]:
    """Text stream for ``path``; transparently gzip on a ``.gz`` suffix."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _open_binary_for(path: Union[str, Path], mode: str) -> IO[bytes]:
    """Binary stream for ``path``; transparently gzip on a ``.gz`` suffix."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "b")
    return open(path, mode + "b")


def save_trace_file(
    trace: Trace, path: Union[str, Path], version: int = FORMAT_VERSION
) -> None:
    """Save a trace to ``path`` (overwrites; gzip when it ends in .gz).

    ``version`` dispatches between the text formats (1/2) and the
    binary v3 format.
    """
    if version == 3:
        with _open_binary_for(path, "w") as fp:
            dump_trace_binary(trace, fp)
        return
    with _open_for(path, "w") as fp:
        dump_trace(trace, fp, version=version)


def load_trace_file(
    path: Union[str, Path],
    expect_version: Optional[int] = None,
    columnar: bool = True,
    strict: bool = True,
) -> Trace:
    """Load a trace from ``path`` (gzip when it ends in .gz).

    Text v1/v2 and binary v3 are sniffed automatically.
    ``strict=False`` salvages the valid prefix of a damaged file; see
    :func:`load_trace`.
    """
    with _open_binary_for(path, "r") as fp:
        return load_trace(
            fp, expect_version=expect_version, columnar=columnar, strict=strict
        )


def dumps_trace(trace: Trace, version: int = FORMAT_VERSION) -> str:
    """Serialize a trace to a string (text formats only)."""
    buf = io.StringIO()
    dump_trace(trace, buf, version=version)
    return buf.getvalue()


def dumps_trace_bytes(trace: Trace, version: int = FORMAT_VERSION) -> bytes:
    """Serialize a trace to bytes (any version; text is UTF-8)."""
    if version == 3:
        buf = io.BytesIO()
        dump_trace_binary(trace, buf)
        return buf.getvalue()
    return dumps_trace(trace, version=version).encode("utf-8")


def loads_trace(
    data: Union[str, bytes],
    expect_version: Optional[int] = None,
    columnar: bool = True,
    strict: bool = True,
) -> Trace:
    """Deserialize a trace from a string or bytes.

    ``strict=False`` salvages the valid prefix of a damaged stream; see
    :func:`load_trace`.
    """
    if isinstance(data, str):
        return load_trace(
            io.StringIO(data),
            expect_version=expect_version,
            columnar=columnar,
            strict=strict,
        )
    return load_trace(
        io.BytesIO(data),
        expect_version=expect_version,
        columnar=columnar,
        strict=strict,
    )


# ---------------------------------------------------------------------------
# Transcoding
# ---------------------------------------------------------------------------


class ConvertStats:
    """What :func:`convert_trace_file` did (surfaced by ``repro convert``)."""

    __slots__ = (
        "source_version", "target_version", "tasks", "ops", "salvaged", "error"
    )

    def __init__(self) -> None:
        self.source_version = 0
        self.target_version = 0
        self.tasks = 0
        self.ops = 0
        self.salvaged = False
        self.error: Optional[str] = None


class _CountingSink:
    """First salvage pass: count what survives, build nothing."""

    def __init__(self) -> None:
        self.tasks = 0
        self.ops = 0
        self.version = 0

    def on_header(self, header: dict) -> None:
        self.version = header.get("version", 0)

    def on_task(self, info: Dict[str, Any]) -> None:
        self.tasks += 1

    def on_row(self, code: int, time: int, task: str, values) -> None:
        self.ops += 1


class _TranscodeSink:
    """Bridges a decoder's sink protocol onto a streaming writer."""

    def __init__(self, make_writer, counts=None):
        self._make_writer = make_writer
        self._counts = counts  # (tasks, ops) override for salvage
        self.writer = None
        self.version = 0
        self.tasks = 0
        self.ops = 0

    def on_header(self, header: dict) -> None:
        self.version = header.get("version", 0)
        if self._counts is not None:
            tasks, ops = self._counts
        else:
            tasks = header.get("tasks", 0)
            ops = header.get("ops", 0)
        self.writer = self._make_writer(tasks, ops)

    def on_task(self, info: Dict[str, Any]) -> None:
        self.writer.write_task(info)
        self.tasks += 1

    def on_row(self, code: int, time: int, task: str, values) -> None:
        self.writer.write_row(code, time, task, values)
        self.ops += 1


def _pump(path, sink, strict: bool):
    """One streaming decode pass of ``path`` into ``sink``."""
    decoder = AnyTraceDecoder(strict=strict, sink=sink)
    with _open_binary_for(path, "r") as fp:
        try:
            read = getattr(fp, "read1", fp.read)
            while True:
                chunk = read(1 << 16)
                if not chunk:
                    break
                decoder.feed(chunk)
                if decoder.degraded:
                    break
        except _STREAM_DAMAGE as exc:
            decoder.mark_damaged(exc)
        decoder.finish()
    return decoder


def convert_trace_file(
    src: Union[str, Path],
    dst: Union[str, Path],
    version: int = FORMAT_VERSION,
    strict: bool = True,
) -> ConvertStats:
    """Transcode ``src`` (any readable version, ``.gz`` or plain) into
    ``dst`` at ``version`` — streaming, with constant transient memory.

    The trace is never held in RAM: each decoded record goes straight
    to the destination writer, so corpus-scale files convert in the
    interning tables' footprint.  Rows keep their order, so interning
    ids are assigned identically and the output is byte-identical to a
    direct ``save_trace_file`` of the same trace at the same version.

    ``strict=False`` salvages a damaged source: the valid prefix is
    converted (a first counting pass sizes the salvaged prefix so the
    output header carries *correct* counts and loads strictly).
    """
    if version not in SUPPORTED_VERSIONS:
        raise TraceError(f"cannot write trace version {version!r}")
    stats = ConvertStats()
    stats.target_version = version
    counts = None
    if not strict:
        counting = _CountingSink()
        probe = _pump(src, counting, strict=False)
        counts = (counting.tasks, counting.ops)
        if probe.error is not None:
            stats.salvaged = True
            stats.error = str(probe.error)

    opener = _open_binary_for if version == 3 else _open_for
    with opener(dst, "w") as out:
        sink = _TranscodeSink(
            lambda tasks, ops: _make_writer(out, version, tasks, ops),
            counts=counts,
        )
        decoder = _pump(src, sink, strict=strict)
        if sink.writer is not None:
            sink.writer.finish()
    stats.source_version = sink.version
    stats.tasks = sink.tasks
    stats.ops = sink.ops
    if decoder.error is not None:
        stats.salvaged = True
        stats.error = str(stats.error or decoder.error)
    return stats
