"""JSONL (de)serialization of traces — versioned, streaming, gzip-able.

The on-device CAFA prototype streams trace records through a kernel
logger device and reads them back over ADB (Section 5.1).  Our stand-in
is a line-oriented JSON format in two versions:

* **v1** (legacy): a header line, one ``{"task_info": ...}`` line per
  task, then one self-describing ``{"op": {...}}`` dict per operation.
  Verbose but diff-friendly; still fully readable and writable.
* **v2** (default): the same header/task lines, then positional array
  records.  ``["s", text]`` defines the next string symbol id,
  ``["a", [scope, owner, field]]`` the next address id, and
  ``["o", kind, time, task_sym, payload...]`` one operation whose
  payload layout is the kind's column schema
  (:data:`repro.trace.store.SCHEMAS`).  The header carries the kind
  code table, so a reader never guesses at positional meanings.

Both writer and reader stream line by line in constant memory (the
reader's live state is the interning tables, which grow with the
number of *distinct* symbols, not with trace length), and both
versions are transparently gzip-compressed when the file path ends in
``.gz``.  ``load_trace`` auto-negotiates the version from the header;
``dump_trace(..., version=1)`` keeps writing the legacy format.
"""

from __future__ import annotations

import gzip
import io
import json
import zlib
from pathlib import Path
from typing import IO, Any, List, Optional, Union

from .operations import BranchKind, OpKind, operation_from_dict
from .store import (
    ADDR,
    BOOL,
    ENUM,
    KIND_CODES,
    KIND_LIST,
    SCHEMAS,
    STR,
)
from .trace import TaskInfo, Trace, TraceError

FORMAT_NAME = "cafa-trace"
#: the version new files are written in
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

_SCHEMA_LIST = tuple(SCHEMAS[kind] for kind in KIND_LIST)


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def dump_trace(trace: Trace, fp: IO[str], version: int = FORMAT_VERSION) -> None:
    """Write ``trace`` to a text stream in JSONL format.

    ``version`` selects the on-disk format; both versions stream one
    line at a time and never hold the serialized trace in memory.
    """
    if version not in SUPPORTED_VERSIONS:
        raise TraceError(f"cannot write trace version {version!r}")
    header = {
        "format": FORMAT_NAME,
        "version": version,
        "tasks": len(trace.tasks),
        "ops": len(trace),
    }
    if version == 2:
        header["kinds"] = [kind.value for kind in KIND_LIST]
    fp.write(json.dumps(header) + "\n")
    for info in trace.tasks.values():
        fp.write(json.dumps({"task_info": info.to_dict()}) + "\n")
    if version == 1:
        for op in trace.ops:
            fp.write(json.dumps({"op": op.to_dict()}) + "\n")
        return
    _dump_ops_v2(trace, fp)


def _iter_encoded_rows(trace: Trace):
    """``(kind code, time, task, payload values)`` per op, backend-agnostic."""
    store = trace.store
    if store is not None:
        yield from store.rows_encoded()
        return
    for op in trace.ops:
        code = KIND_CODES[op.kind]
        values = [getattr(op, name) for name, _typ in _SCHEMA_LIST[code]]
        yield code, op.time, op.task, values


def _dump_ops_v2(trace: Trace, fp: IO[str]) -> None:
    compact = json.JSONEncoder(separators=(",", ":")).encode
    sym_ids: dict = {}
    addr_ids: dict = {}

    def sym(value: str) -> int:
        sid = sym_ids.get(value)
        if sid is None:
            sid = sym_ids[value] = len(sym_ids)
            fp.write(compact(["s", value]) + "\n")
        return sid

    def addr(value) -> int:
        key = tuple(value)
        aid = addr_ids.get(key)
        if aid is None:
            aid = addr_ids[key] = len(addr_ids)
            fp.write(compact(["a", list(key)]) + "\n")
        return aid

    for code, time, task, values in _iter_encoded_rows(trace):
        rec: List[Any] = ["o", code, time, sym(task)]
        for (_name, typ), value in zip(_SCHEMA_LIST[code], values):
            if typ == STR:
                rec.append(sym(value))
            elif typ == ADDR:
                rec.append(addr(value))
            elif typ == BOOL:
                rec.append(1 if value else 0)
            elif typ == ENUM:
                rec.append(sym(value.value))
            else:  # INT / OPT_INT: ints and None pass through as JSON
                rec.append(value)
        fp.write(compact(rec) + "\n")


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class TraceFormatError(TraceError):
    """A malformed, corrupted, or truncated trace stream.

    ``line`` is the 1-based line number of the offending record, or
    ``None`` when the damage is not attributable to a single line
    (a header/stream count mismatch noticed at EOF, or a compressed
    stream that ended mid-member).
    """

    def __init__(self, message: str, line: Optional[int] = None):
        super().__init__(message if line is None else f"line {line}: {message}")
        self.line = line


#: decompression/decoding failures that signal a physically truncated
#: or corrupted stream rather than a logically malformed record
_STREAM_DAMAGE = (EOFError, UnicodeDecodeError, gzip.BadGzipFile, zlib.error)


class TraceStreamDecoder:
    """Push-based incremental decoder for the JSONL trace formats.

    Feed raw text as it arrives (:meth:`feed`) or one complete line at
    a time (:meth:`feed_line`); records decode straight into
    :attr:`trace`, which is live and readable at any point between
    feeds — this is what the streaming service tails files with.  Call
    :meth:`finish` at end of input to flush a buffered partial final
    line and run the header count checks.

    ``strict`` selects the failure mode for damaged input.  Under
    ``strict=True`` (the default) any malformed, corrupted, or
    truncated record raises :class:`TraceFormatError` naming the line
    number.  Under ``strict=False`` — the degraded path for
    crash-truncated sessions — decoding stops at the first damaged
    record instead: the error is recorded on :attr:`error`,
    :attr:`degraded` flips true, later feeds are ignored, and
    :attr:`trace` holds the valid prefix.  Header problems (missing,
    foreign format, unsupported version) always raise, even in salvage
    mode: without a header there is no prefix worth keeping.
    """

    def __init__(
        self,
        expect_version: Optional[int] = None,
        columnar: bool = True,
        strict: bool = True,
    ):
        self.trace = Trace(columnar=columnar)
        self.expect_version = expect_version
        self.strict = strict
        self.header: Optional[dict] = None
        self.error: Optional[TraceFormatError] = None
        #: body records decoded so far (ops + interning defs + task infos)
        self.records = 0
        self._version = 0
        self._lineno = 0
        self._buffer = ""
        self._codes: List[int] = []
        self._schemas: List[tuple] = []
        self._symbols: List[str] = []
        self._addresses: List[tuple] = []

    @property
    def degraded(self) -> bool:
        """True once salvage mode has stopped at a damaged record."""
        return self.error is not None

    def feed(self, chunk: str) -> int:
        """Buffer ``chunk`` and decode every complete line in it.

        Returns the number of operations appended to :attr:`trace`.
        A trailing partial line stays buffered until the next feed (or
        :meth:`finish`).
        """
        appended = 0
        self._buffer += chunk
        while True:
            cut = self._buffer.find("\n")
            if cut < 0:
                return appended
            line = self._buffer[:cut]
            self._buffer = self._buffer[cut + 1 :]
            appended += self.feed_line(line)

    def feed_line(self, line: str) -> int:
        """Decode one complete line; returns the ops appended (0 or 1).

        The line is taken to be complete — a caller reading from input
        that may end mid-line (a crash-truncated file, a live tail)
        should use :meth:`feed`, which buffers an unterminated tail
        for :meth:`flush`/:meth:`finish` to rule on.

        Raises :class:`TraceFormatError` on damage when ``strict``,
        otherwise records it and turns every later feed into a no-op.
        """
        if self.error is not None:
            return 0
        self._lineno += 1
        stripped = line.strip()
        if not stripped:
            return 0
        before = len(self.trace)
        try:
            self._decode_line(stripped)
        except TraceFormatError as exc:
            if self.strict or self.header is None:
                raise
            self.error = exc
            return 0
        return len(self.trace) - before

    def flush(self) -> int:
        """Rule on a buffered trailing line that never got its newline.

        The writer terminates every line, so input that ends mid-line
        is truncation evidence — and a byte cut through a record's
        trailing number can still parse as *valid* JSON with a
        corrupted value, which the header count checks cannot always
        catch.  An unterminated trailing line therefore raises
        :class:`TraceFormatError` under ``strict`` and is discarded
        (marking the decoder degraded) in salvage mode.  Returns the
        ops appended, which is always 0; kept for symmetry with
        :meth:`feed`.

        :meth:`finish` calls this, but a long-running consumer that
        never reaches a definite end of input (the streaming service
        tailing a live file) can flush explicitly without triggering
        the header count checks.
        """
        if not self._buffer:
            return 0
        self._buffer = ""
        error = TraceFormatError(
            "stream ends mid-line; the unterminated final record "
            "cannot be trusted",
            line=self._lineno + 1,
        )
        if self.strict:
            raise error
        if self.error is None:
            self.error = error
        return 0

    def finish(self) -> Trace:
        """Flush any buffered partial line, check counts, return the trace."""
        self.flush()
        if self.header is None:
            raise TraceError("empty trace stream")
        if self.strict:
            expected_tasks = self.header.get("tasks")
            if expected_tasks is not None and expected_tasks != len(self.trace.tasks):
                raise TraceFormatError(
                    f"task count mismatch: header says {expected_tasks}, "
                    f"stream has {len(self.trace.tasks)}"
                )
            expected_ops = self.header.get("ops")
            if expected_ops is not None and expected_ops != len(self.trace):
                raise TraceFormatError(
                    f"op count mismatch: header says {expected_ops}, "
                    f"stream has {len(self.trace)}"
                )
        return self.trace

    def mark_damaged(self, exc: Exception) -> None:
        """Record out-of-band stream damage (e.g. a truncated gzip
        member noticed by the decompressor, not by any line)."""
        error = TraceFormatError(f"damaged trace stream: {exc}")
        if self.strict:
            raise error from None
        if self.error is None:
            self.error = error

    # -- internals ----------------------------------------------------

    def _decode_line(self, line: str) -> None:
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TraceFormatError(f"invalid JSON: {exc}", line=self._lineno) from None
        if self.header is None:
            self._take_header(record)
            return
        self.records += 1
        try:
            if self._version == 1:
                self._decode_v1(record)
            else:
                self._decode_v2(record)
        except TraceFormatError:
            raise
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"corrupt trace record {record!r} "
                f"({exc.__class__.__name__}: {exc})",
                line=self._lineno,
            ) from None

    def _take_header(self, record: Any) -> None:
        if not isinstance(record, dict) or record.get("format") != FORMAT_NAME:
            raise TraceError(f"not a {FORMAT_NAME} stream: {record!r}")
        version = record.get("version")
        if version not in SUPPORTED_VERSIONS:
            raise TraceError(f"unsupported trace version {version!r}")
        if self.expect_version is not None and version != self.expect_version:
            raise TraceError(
                f"expected trace version {self.expect_version}, "
                f"stream is version {version}"
            )
        if version == 2:
            # Version negotiation: positions in the header's kind table
            # define the wire codes, so a file written under a different
            # (e.g. future, reordered) vocabulary still decodes — or
            # fails loudly on a kind this reader does not know.
            kind_names = record.get("kinds")
            if not isinstance(kind_names, list) or not kind_names:
                raise TraceError("v2 stream header lacks its kind table")
            for name in kind_names:
                try:
                    kind = OpKind(name)
                except ValueError:
                    raise TraceError(
                        f"unknown operation kind {name!r} in header"
                    ) from None
                self._codes.append(KIND_CODES[kind])
                self._schemas.append(_SCHEMA_LIST[KIND_CODES[kind]])
        self._version = version
        self.header = record

    def _decode_v1(self, record: Any) -> None:
        if isinstance(record, dict) and "task_info" in record:
            self.trace.add_task(TaskInfo.from_dict(record["task_info"]))
        elif isinstance(record, dict) and "op" in record:
            self.trace.append(operation_from_dict(record["op"]))
        else:
            raise TraceFormatError(
                f"unrecognized trace record: {record!r}", line=self._lineno
            )

    def _decode_v2(self, record: Any) -> None:
        if isinstance(record, list) and record:
            tag = record[0]
            if tag == "o":
                try:
                    schema = self._schemas[record[1]]
                    code = self._codes[record[1]]
                except (IndexError, TypeError):
                    raise TraceFormatError(
                        f"op record with undeclared kind code: {record!r}",
                        line=self._lineno,
                    ) from None
                if len(record) != 4 + len(schema):
                    raise TraceFormatError(
                        f"malformed op record: {record!r}", line=self._lineno
                    )
                symbols = self._symbols
                values: List[Any] = []
                for (_name, typ), raw in zip(schema, record[4:]):
                    if typ == STR:
                        values.append(symbols[raw])
                    elif typ == ADDR:
                        values.append(self._addresses[raw])
                    elif typ == BOOL:
                        values.append(bool(raw))
                    elif typ == ENUM:
                        values.append(BranchKind(symbols[raw]))
                    else:  # INT / OPT_INT
                        values.append(raw)
                self.trace._append_decoded(
                    code, record[2], symbols[record[3]], values
                )
            elif tag == "s":
                self._symbols.append(record[1])
            elif tag == "a":
                self._addresses.append(tuple(record[1]))
            else:
                raise TraceFormatError(
                    f"unrecognized trace record: {record!r}", line=self._lineno
                )
        elif isinstance(record, dict) and "task_info" in record:
            self.trace.add_task(TaskInfo.from_dict(record["task_info"]))
        else:
            raise TraceFormatError(
                f"unrecognized trace record: {record!r}", line=self._lineno
            )


def load_trace(
    fp: IO[str],
    expect_version: Optional[int] = None,
    columnar: bool = True,
    strict: bool = True,
) -> Trace:
    """Read a trace previously written by :func:`dump_trace`.

    The format version is negotiated from the header; pass
    ``expect_version`` to *require* a specific one (the CLI's
    ``--format`` flag).  ``columnar`` selects the backend of the
    returned :class:`Trace`.

    Damaged input — truncated files (including one that merely ends
    mid-line: the writer terminates every record, so a missing final
    newline is truncation evidence), mid-record corruption, a gzip
    member cut short — raises :class:`TraceFormatError` naming the
    offending line.  Pass ``strict=False`` to *salvage* instead:
    decoding stops at the first damaged record and the valid prefix is
    returned (crash-truncated sessions still analyze, just on fewer
    events).  Header problems always raise.
    """
    decoder = TraceStreamDecoder(
        expect_version=expect_version, columnar=columnar, strict=strict
    )
    try:
        for line in fp:
            # feed(), not feed_line(): a crash-truncated file's last
            # line has no newline, and only the buffer path lets
            # finish() tell a complete final record from a cut one.
            decoder.feed(line)
            if decoder.degraded:
                break
    except _STREAM_DAMAGE as exc:
        decoder.mark_damaged(exc)
    return decoder.finish()


# ---------------------------------------------------------------------------
# File and string entry points
# ---------------------------------------------------------------------------


def _open_for(path: Union[str, Path], mode: str) -> IO[str]:
    """Text stream for ``path``; transparently gzip on a ``.gz`` suffix."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trace_file(
    trace: Trace, path: Union[str, Path], version: int = FORMAT_VERSION
) -> None:
    """Save a trace to ``path`` (overwrites; gzip when it ends in .gz)."""
    with _open_for(path, "w") as fp:
        dump_trace(trace, fp, version=version)


def load_trace_file(
    path: Union[str, Path],
    expect_version: Optional[int] = None,
    columnar: bool = True,
    strict: bool = True,
) -> Trace:
    """Load a trace from ``path`` (gzip when it ends in .gz).

    ``strict=False`` salvages the valid prefix of a damaged file; see
    :func:`load_trace`.
    """
    with _open_for(path, "r") as fp:
        return load_trace(
            fp, expect_version=expect_version, columnar=columnar, strict=strict
        )


def dumps_trace(trace: Trace, version: int = FORMAT_VERSION) -> str:
    """Serialize a trace to a string."""
    buf = io.StringIO()
    dump_trace(trace, buf, version=version)
    return buf.getvalue()


def loads_trace(
    text: str,
    expect_version: Optional[int] = None,
    columnar: bool = True,
    strict: bool = True,
) -> Trace:
    """Deserialize a trace from a string.

    ``strict=False`` salvages the valid prefix of a damaged stream; see
    :func:`load_trace`.
    """
    return load_trace(
        io.StringIO(text),
        expect_version=expect_version,
        columnar=columnar,
        strict=strict,
    )
