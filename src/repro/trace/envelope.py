"""The session-frame envelope: many trace streams over one pipe.

A device fleet does not open one connection per session — records from
many concurrent sessions arrive interleaved on whatever transport is
available (a socket, a spooled file, stdin).  The *mux* envelope makes
that interleaving explicit and loss-free: the byte stream is a header
followed by self-delimiting frames, each tagging an opaque chunk of
one session's ordinary trace stream (v1/v2 text or v3 binary — the
envelope never looks inside the payload).

Wire format (``cafa-mux`` version 1)::

    MAGIC (12 bytes)   "\\x9eCAFA-MX\\r\\n\\x1a\\x00"
    frame*             tag:u8  body...

    tag 1  DATA    sid_len:uvarint  sid[sid_len]  n:uvarint  payload[n]
    tag 2  END     sid_len:uvarint  sid[sid_len]
    tag 3  FINISH  (empty body — end of the whole mux stream)

``sid`` is the session id (UTF-8).  ``uvarint`` is LEB128, shared with
the v3 binary trace format.  The first magic byte ``0x9e`` is invalid
both as UTF-8 lead byte and as JSON, and distinct from the v3 magic's
``0x93`` — so :class:`~repro.trace.serialization.AnyTraceDecoder` can
sniff plain-text v1/v2, binary v3, and enveloped streams from one
byte.

* **DATA** carries the next ``payload`` bytes of session ``sid``'s
  trace stream.  Per-session byte order is the session's stream
  order; frames of different sessions interleave freely.
* **END** declares session ``sid``'s stream complete: a consumer can
  run its end-of-stream checks and emit authoritative results while
  other sessions continue.
* **FINISH** declares the whole mux stream complete (the daemon's
  graceful-drain trigger).  Bytes after FINISH are an error.

:class:`MuxDecoder` is the push-parser for the envelope;
:class:`SessionDemuxer` stacks per-session
:class:`~repro.trace.serialization.AnyTraceDecoder` instances on top
of it, turning one interleaved stream back into per-session traces —
exactly what a separate decode of each session's bytes would produce.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .binary import _read_uvarint, _Truncated, _write_uvarint
from .trace import Trace, TraceError, TraceFormatError

MUX_MAGIC = b"\x9eCAFA-MX\r\n\x1a\x00"
#: the sniffable first byte of an enveloped stream
MUX_FIRST_BYTE = MUX_MAGIC[:1]

FRAME_DATA = 1
FRAME_END = 2
FRAME_FINISH = 3

#: session ids longer than this are evidence of a desynchronized or
#: corrupt stream, not a plausible identifier
MAX_SESSION_ID_BYTES = 4096
#: single-frame payload cap — a frame claiming more is corruption
#: (writers chunk large streams into many frames)
MAX_FRAME_PAYLOAD = 1 << 31


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def encode_mux_header() -> bytes:
    """The stream header every enveloped stream must start with."""
    return MUX_MAGIC


def _encode_sid(out: bytearray, session: str) -> None:
    sid = session.encode("utf-8")
    if not sid:
        raise TraceError("session id must be non-empty")
    if len(sid) > MAX_SESSION_ID_BYTES:
        raise TraceError(
            f"session id is {len(sid)} bytes "
            f"(limit {MAX_SESSION_ID_BYTES})"
        )
    _write_uvarint(out, len(sid))
    out += sid


def encode_data_frame(session: str, payload: bytes) -> bytes:
    """One DATA frame: the next ``payload`` bytes of ``session``."""
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise TraceError("frame payload too large; chunk it")
    out = bytearray([FRAME_DATA])
    _encode_sid(out, session)
    _write_uvarint(out, len(payload))
    out += payload
    return bytes(out)


def encode_end_frame(session: str) -> bytes:
    """One END frame: ``session``'s trace stream is complete."""
    out = bytearray([FRAME_END])
    _encode_sid(out, session)
    return bytes(out)


def encode_finish_frame() -> bytes:
    """The FINISH frame: the whole mux stream is complete."""
    return bytes([FRAME_FINISH])


def encode_session(
    session: str, stream: bytes, chunk_size: int = 1 << 16
) -> List[bytes]:
    """``stream`` (one session's complete trace bytes) as a DATA-frame
    list followed by its END frame — the building block tests and the
    synthetic workload use to compose interleaved mux streams."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    frames = [
        encode_data_frame(session, stream[i : i + chunk_size])
        for i in range(0, len(stream), chunk_size)
    ]
    frames.append(encode_end_frame(session))
    return frames


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


#: decoded frame events: ("data", sid, payload) / ("end", sid) / ("finish",)
MuxEvent = Tuple


class MuxDecoder:
    """Push-parser for the envelope: bytes in, frame events out.

    :meth:`feed` accepts arbitrary chunking — frames may be split at
    any byte boundary.  ``strict`` selects the failure mode exactly as
    in the trace decoders: raise :class:`TraceFormatError` on damage,
    or record it (:attr:`error`/:attr:`degraded`) and ignore the rest
    of the stream.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.error: Optional[TraceFormatError] = None
        self.frames = 0
        self.bytes_fed = 0
        self.finished = False
        self._buf = bytearray()
        self._magic_ok = False

    @property
    def degraded(self) -> bool:
        return self.error is not None

    @property
    def buffered(self) -> int:
        """Bytes of an incomplete trailing frame awaiting more input."""
        return len(self._buf)

    def _damage(self, message: str) -> None:
        error = TraceFormatError(message)
        if self.strict:
            raise error
        if self.error is None:
            self.error = error

    def feed(self, chunk) -> List[MuxEvent]:
        """Decode every complete frame in ``buffer + chunk``."""
        events: List[MuxEvent] = []
        if self.error is not None:
            return events
        self.bytes_fed += len(chunk)
        self._buf += chunk
        buf = self._buf
        pos = 0
        limit = len(buf)
        while pos < limit:
            if self.finished:
                self._damage(
                    f"{limit - pos} bytes after the mux FINISH frame"
                )
                return events
            if not self._magic_ok:
                if limit - pos < len(MUX_MAGIC):
                    break
                if bytes(buf[pos : pos + len(MUX_MAGIC)]) != MUX_MAGIC:
                    # Header damage leaves nothing salvageable.
                    raise TraceError(
                        "not a cafa-mux stream (bad envelope magic)"
                    )
                pos += len(MUX_MAGIC)
                self._magic_ok = True
                continue
            try:
                event, pos = self._frame(buf, pos, limit)
            except _Truncated:
                break
            except TraceFormatError as exc:
                if self.strict:
                    del self._buf[:pos]
                    raise
                self.error = exc
                del self._buf[:]
                return events
            if event[0] == "finish":
                self.finished = True
            self.frames += 1
            events.append(event)
        del self._buf[:pos]
        return events

    def _frame(self, buf, pos: int, limit: int) -> Tuple[MuxEvent, int]:
        tag = buf[pos]
        pos += 1
        if tag == FRAME_FINISH:
            return ("finish",), pos
        if tag not in (FRAME_DATA, FRAME_END):
            raise TraceFormatError(f"unknown mux frame tag {tag}")
        sid_len, pos = _read_uvarint(buf, pos, limit)
        if sid_len == 0 or sid_len > MAX_SESSION_ID_BYTES:
            raise TraceFormatError(
                f"implausible mux session-id length {sid_len}"
            )
        if limit - pos < sid_len:
            raise _Truncated
        try:
            sid = bytes(buf[pos : pos + sid_len]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"mux session id is not UTF-8: {exc}")
        pos += sid_len
        if tag == FRAME_END:
            return ("end", sid), pos
        n, pos = _read_uvarint(buf, pos, limit)
        if n > MAX_FRAME_PAYLOAD:
            raise TraceFormatError(f"implausible mux frame length {n}")
        if limit - pos < n:
            raise _Truncated
        payload = bytes(buf[pos : pos + n])
        return ("data", sid, payload), pos + n

    def flush(self) -> None:
        """Rule on trailing bytes: an incomplete frame is truncation."""
        if self._buf and self.error is None:
            held = len(self._buf)
            del self._buf[:]
            self._damage(
                f"mux stream ends inside a frame ({held} dangling bytes)"
            )


class SessionDemuxer:
    """Per-session trace decoding over one enveloped stream.

    Every DATA frame's payload is fed to that session's own
    :class:`AnyTraceDecoder` (created on first sight, sniffing its
    format independently — sessions in one mux stream may mix v1, v2,
    and v3).  An END frame finalizes the session: its decoder runs the
    usual end-of-stream checks and the finished :class:`Trace` moves
    to :attr:`traces`.  :meth:`finish` closes everything still open.

    The per-session traces are **identical to separate decodes** of
    each session's bytes — the property the router's shard workers and
    the envelope test-suite rely on.
    """

    def __init__(
        self,
        strict: bool = True,
        columnar: bool = True,
        expect_version: Optional[int] = None,
    ) -> None:
        from .serialization import AnyTraceDecoder

        self._make_decoder = lambda: AnyTraceDecoder(
            expect_version=expect_version, columnar=columnar, strict=strict
        )
        self.mux = MuxDecoder(strict=strict)
        self.decoders: Dict[str, "AnyTraceDecoder"] = {}
        self.traces: Dict[str, Trace] = {}
        self.ops_decoded = 0

    @property
    def finished(self) -> bool:
        return self.mux.finished

    def _decoder(self, sid: str):
        if sid in self.traces:
            raise TraceFormatError(
                f"mux frame for session {sid!r} after its END frame"
            )
        decoder = self.decoders.get(sid)
        if decoder is None:
            decoder = self.decoders[sid] = self._make_decoder()
        return decoder

    def feed(self, chunk) -> int:
        """Ingest envelope bytes; returns ops appended (all sessions)."""
        appended = 0
        for event in self.mux.feed(chunk):
            if event[0] == "data":
                appended += self._decoder(event[1]).feed(event[2])
            elif event[0] == "end":
                self.end_session(event[1])
        self.ops_decoded += appended
        return appended

    def end_session(self, sid: str) -> Trace:
        """Finalize one session (END frame or explicit call)."""
        decoder = self._decoder(sid)
        del self.decoders[sid]
        trace = decoder.finish()
        self.traces[sid] = trace
        return trace

    def finish(self) -> Dict[str, Trace]:
        """Close the envelope and every still-open session."""
        self.mux.flush()
        for sid in sorted(self.decoders):
            decoder = self.decoders.pop(sid)
            self.traces[sid] = decoder.finish()
        return self.traces


class SingleSessionMuxAdapter:
    """Lets :class:`AnyTraceDecoder` read *single-session* enveloped
    streams transparently (a spooled per-device file, say).

    Implements the inner-decoder surface the facade expects.  A second
    session id in the stream is a hard error pointing at the tools
    that do handle multiplexed input (``repro serve`` and
    :class:`~repro.stream.SessionRouter`).
    """

    def __init__(self, nested, strict: bool = True) -> None:
        self._nested = nested  # an AnyTraceDecoder
        self._mux = MuxDecoder(strict=strict)
        self._sid: Optional[str] = None
        self.session_ended = False

    # -- facade surface ------------------------------------------------

    @property
    def trace(self) -> Trace:
        return self._nested.trace

    @trace.setter
    def trace(self, value: Trace) -> None:
        self._nested.trace = value

    @property
    def header(self) -> Optional[dict]:
        return self._nested.header

    @property
    def error(self) -> Optional[TraceFormatError]:
        return self._nested.error or self._mux.error

    @property
    def degraded(self) -> bool:
        return self._nested.degraded or self._mux.degraded

    @property
    def records(self) -> int:
        return self._nested.records

    @property
    def session(self) -> Optional[str]:
        """The stream's (single) session id, once seen."""
        return self._sid

    def decode_stats(self):
        return self._nested.decode_stats()

    def _take(self, sid: str) -> None:
        if self._sid is None:
            self._sid = sid
        elif sid != self._sid:
            raise TraceError(
                f"multiplexed trace stream carries multiple sessions "
                f"({self._sid!r} and {sid!r}); a single-trace reader "
                "cannot demultiplex it — use 'repro serve' or "
                "repro.stream.SessionRouter"
            )

    def feed(self, chunk) -> int:
        appended = 0
        for event in self._mux.feed(chunk):
            if event[0] == "data":
                self._take(event[1])
                appended += self._nested.feed(event[2])
            elif event[0] == "end":
                self._take(event[1])
                self.session_ended = True
        return appended

    def flush(self) -> int:
        return self._nested.flush()

    def finish(self) -> Trace:
        self._mux.flush()
        if self._mux.error is not None and not self._nested.degraded:
            self._nested.mark_damaged(self._mux.error)
        return self._nested.finish()

    def mark_damaged(self, exc: Exception) -> None:
        self._nested.mark_damaged(exc)
