"""Trace format v3: length-prefixed binary frames + columnar segments.

The text formats pay full JSON parsing for every record on every scan.
v3 keeps the same logical model as v2 — a negotiated header, incremental
symbol/address interning, positional payloads laid out by the kind
schemas (:data:`repro.trace.store.SCHEMAS`) — but stores it as binary
*frames*, and stores the operations themselves as *columnar batches*
whose per-column blocks are contiguous on disk:

* a reader reloads :class:`~repro.trace.store.TraceStore` columns with
  ``array.frombytes`` in one shot per column per batch instead of
  decoding records one by one, and
* a column-sparse consumer (:class:`SegmentReader`) can ``mmap`` the
  file and read exactly the columns it needs, skipping every other
  byte — corpus triage without full deserialization.

Wire layout
-----------

::

    MAGIC (12 bytes)  "\\x93CAFA-T3\\r\\n\\x1a\\x00"
    frame*            tag:u8  length:uvarint  payload[length]
    trailer (16B)     footer_offset:u64le  "CAFA3FT\\n"

Frame tags: 1 header (JSON), 2 task (JSON), 3 symbol (raw UTF-8),
4 address (JSON list), 5 op batch, 6 footer (JSON).  ``uvarint`` is
LEB128 (7 data bits per byte, high bit = continuation).  The first
payload byte of the file is ``0x93`` — never a printable character, so
readers sniff text vs binary from one byte.

A batch payload is a mini segment: op count, a section directory
(``key:uvarint enc:u8 count:uvarint bytes:uvarint`` per section), then
the sections' data blocks back to back.  Section keys 0/1/2 are the
global kind/time/task-id columns; key ``16 + kind_code*16 + field_index``
is one payload column of one kind.  Rows of a kind appear in trace
order, so the global index/bucket-row structures are *derived* on load
and never stored.  Integer columns use adaptive-width little-endian raw
encodings (``enc`` 0-7 = u8/u16/u32/u64/i8/i16/i32/i64, the narrowest
that fits the batch), except optional-int columns, which are always
i64 so the ``None`` sentinel passes through verbatim.

The header is the v2 header plus a ``branch_kinds`` vocabulary (the
enum column's wire values are indices into it), and version negotiation
works exactly as in v2: positions in the header tables define the wire
codes, a reader remaps them to its own vocabulary or fails loudly.
The footer records frame offsets of every batch and side-table frame,
and the trailer points back at the footer — so :class:`SegmentReader`
reaches any column in O(1) seeks, and a byte cut *anywhere* is
detectable: strict loads require the footer+trailer and the header
count checks, salvage loads analyze the longest valid frame prefix.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import IO, Any, Dict, List, Optional, Tuple, Union

from .operations import BranchKind, OpKind
from .store import (
    ADDR,
    BOOL,
    ENUM,
    KIND_CODES,
    KIND_LIST,
    OPT_INT,
    SCHEMAS,
    STR,
    DecodeStats,
    _ARRAY_TYPE,
    _BRANCH_INDEX,
    _BRANCH_KINDS,
    _NONE,
    _SCHEMA_LIST,
)
from .trace import TaskInfo, Trace, TraceError, TraceFormatError

#: first bytes of every v3 file; byte 0 (0x93) is invalid UTF-8 *and*
#: invalid JSON, so text-format readers reject v3 input immediately and
#: the sniffing facade needs exactly one byte
MAGIC_V3 = b"\x93CAFA-T3\r\n\x1a\x00"
#: end of every complete v3 file: u64le footer offset + this marker
TRAILER_MAGIC = b"CAFA3FT\n"
TRAILER_LEN = 8 + len(TRAILER_MAGIC)

# Frame tags.
TAG_HEADER = 1
TAG_TASK = 2
TAG_SYM = 3
TAG_ADDR = 4
TAG_BATCH = 5
TAG_FOOTER = 6

# Global section keys inside a batch; payload columns use
# _column_key(kind_code, field_index).
SEC_KINDS = 0
SEC_TIMES = 1
SEC_TASK_IDS = 2
_SEC_COLUMN_BASE = 16
_SEC_COLUMN_STRIDE = 16

#: ops buffered per batch by the streaming writer — small enough for
#: constant transient memory, large enough that per-batch overhead
#: (directory + adoption scatter) amortizes away
DEFAULT_BATCH_OPS = 4096

#: sanity cap on a single frame (a corrupt length must not allocate)
_MAX_FRAME = 1 << 31

_BIG_ENDIAN = sys.byteorder == "big"


def _column_key(code: int, field_index: int) -> int:
    return _SEC_COLUMN_BASE + code * _SEC_COLUMN_STRIDE + field_index


def _typecode_of(size: int, signed: bool) -> str:
    for tc in "bhilq" if signed else "BHILQ":
        if array(tc).itemsize == size:
            return tc
    raise RuntimeError(f"no array typecode of width {size}")  # pragma: no cover


#: enc value 0-7 -> (width, signed) and a matching array typecode
_ENC_SPECS = ((1, False), (2, False), (4, False), (8, False),
              (1, True), (2, True), (4, True), (8, True))
_ENC_TYPECODES = tuple(_typecode_of(w, s) for w, s in _ENC_SPECS)


class _Truncated(Exception):
    """Internal: the buffer ends inside a varint/frame (need more bytes)."""


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        low = value & 0x7F
        value >>= 7
        if value:
            out.append(low | 0x80)
        else:
            out.append(low)
            return


def _read_uvarint(buf, pos: int, limit: int) -> Tuple[int, int]:
    """Decode one LEB128 varint from ``buf[pos:limit]``.

    Returns ``(value, next_pos)``; raises :class:`_Truncated` when the
    window ends mid-varint and ``ValueError`` on an over-long encoding.
    """
    result = 0
    shift = 0
    while True:
        if pos >= limit:
            raise _Truncated
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("over-long varint")


def _encode_ints(values, enc: Optional[int] = None) -> Tuple[int, bytes]:
    """Pack ``values`` at the narrowest width that fits (or force ``enc``)."""
    if enc is None:
        if len(values) == 0:
            enc = 0
        else:
            lo, hi = min(values), max(values)
            if lo >= 0:
                enc = (0 if hi < (1 << 8) else 1 if hi < (1 << 16)
                       else 2 if hi < (1 << 32) else 3)
            else:
                enc = (4 if lo >= -(1 << 7) and hi < (1 << 7)
                       else 5 if lo >= -(1 << 15) and hi < (1 << 15)
                       else 6 if lo >= -(1 << 31) and hi < (1 << 31) else 7)
    packed = array(_ENC_TYPECODES[enc], values)
    if _BIG_ENDIAN and packed.itemsize > 1:
        packed.byteswap()
    return enc, packed.tobytes()


def _decode_ints(data, enc: int, count: int, typecode: str) -> array:
    """Unpack a little-endian column into an ``array(typecode)``.

    One ``frombytes`` when the wire width matches the store typecode;
    otherwise a single C-level widening copy.  Raises ``ValueError`` on
    a width/count mismatch and ``OverflowError`` when a (corrupt) value
    does not fit the target typecode.
    """
    if not 0 <= enc < 8:
        raise ValueError(f"unknown column encoding {enc}")
    src = array(_ENC_TYPECODES[enc])
    src.frombytes(bytes(data))
    if len(src) != count:
        raise ValueError(
            f"column holds {len(src)} values, directory says {count}"
        )
    if _BIG_ENDIAN and src.itemsize > 1:
        src.byteswap()
    if src.typecode == typecode:
        return src
    return array(typecode, src)


def _json_bytes(obj) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


class _Vocabulary:
    """Negotiated wire->local mappings from one v3 header."""

    __slots__ = ("codes", "schemas", "kind_map", "branches", "branch_map")

    def __init__(self) -> None:
        self.codes: List[int] = []
        self.schemas: List[tuple] = []
        #: 256-byte translate table, or None when wire codes == local
        self.kind_map: Optional[bytes] = None
        self.branches: List[int] = []
        self.branch_map: Optional[bytes] = None


def _negotiate_header(record: Any, expect_version: Optional[int]) -> _Vocabulary:
    """Validate a v3 header record; raises :class:`TraceError` (header
    problems are fatal even in salvage mode)."""
    from .serialization import FORMAT_NAME  # value only; no import cycle at call time

    if not isinstance(record, dict) or record.get("format") != FORMAT_NAME:
        raise TraceError(f"not a {FORMAT_NAME} stream: {record!r}")
    version = record.get("version")
    if version != 3:
        raise TraceError(
            f"unsupported trace version {version!r} in a v3 binary stream"
        )
    if expect_version is not None and version != expect_version:
        raise TraceError(
            f"expected trace version {expect_version}, "
            f"stream is version {version}"
        )
    vocab = _Vocabulary()
    kind_names = record.get("kinds")
    if not isinstance(kind_names, list) or not kind_names:
        raise TraceError("v3 stream header lacks its kind table")
    for name in kind_names:
        try:
            kind = OpKind(name)
        except ValueError:
            raise TraceError(f"unknown operation kind {name!r} in header") from None
        vocab.codes.append(KIND_CODES[kind])
        vocab.schemas.append(_SCHEMA_LIST[KIND_CODES[kind]])
    if any(code != wire for wire, code in enumerate(vocab.codes)):
        table = bytearray(256)
        for wire, code in enumerate(vocab.codes):
            table[wire] = code
        vocab.kind_map = bytes(table)
    branch_names = record.get("branch_kinds")
    if not isinstance(branch_names, list) or not branch_names:
        raise TraceError("v3 stream header lacks its branch-kind table")
    for name in branch_names:
        try:
            branch = BranchKind(name)
        except ValueError:
            raise TraceError(f"unknown branch kind {name!r} in header") from None
        vocab.branches.append(_BRANCH_INDEX[branch])
    if any(local != wire for wire, local in enumerate(vocab.branches)):
        table = bytearray(256)
        for wire, local in enumerate(vocab.branches):
            table[wire] = local
        vocab.branch_map = bytes(table)
    return vocab


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


class TraceWriterV3:
    """Streaming v3 writer: rows in, framed columnar batches out.

    Rows arrive pre-decomposed (``write_row(code, time, task, values)``
    with decoded payload values, exactly what the v2 serializer
    consumes) and are buffered up to ``batch_ops`` before one BATCH
    frame is emitted, so transient memory is constant in trace length.
    Symbols and addresses are interned on first use, each as its own
    frame *before* the batch that references it.  ``finish`` flushes
    the final partial batch and writes the footer directory + trailer.
    """

    def __init__(
        self,
        fp: IO[bytes],
        tasks: int = 0,
        ops: int = 0,
        batch_ops: int = DEFAULT_BATCH_OPS,
    ) -> None:
        from .serialization import FORMAT_NAME

        if batch_ops < 1:
            raise ValueError("batch_ops must be >= 1")
        self._fp = fp
        self._batch_ops = batch_ops
        fp.write(MAGIC_V3)
        self._offset = len(MAGIC_V3)
        self._sym_ids: Dict[str, int] = {}
        self._addr_ids: Dict[tuple, int] = {}
        self._sym_offsets: List[int] = []
        self._addr_offsets: List[int] = []
        self._task_offsets: List[int] = []
        self._batches: List[Tuple[int, int]] = []
        self._ops_written = 0
        self._tasks_written = 0
        self._finished = False
        # batch buffers
        self._b_kinds = bytearray()
        self._b_times: List[int] = []
        self._b_tids: List[int] = []
        self._b_cols: Dict[int, List[List[int]]] = {}
        header = {
            "format": FORMAT_NAME,
            "version": 3,
            "tasks": tasks,
            "ops": ops,
            "kinds": [kind.value for kind in KIND_LIST],
            "branch_kinds": [branch.value for branch in _BRANCH_KINDS],
        }
        self._frame(TAG_HEADER, _json_bytes(header))

    def _frame(self, tag: int, payload: bytes) -> int:
        """Write one frame; returns the absolute offset of its tag byte."""
        head = bytearray((tag,))
        _write_uvarint(head, len(payload))
        offset = self._offset
        self._fp.write(bytes(head))
        self._fp.write(payload)
        self._offset = offset + len(head) + len(payload)
        return offset

    def _sym(self, value: str) -> int:
        sid = self._sym_ids.get(value)
        if sid is None:
            sid = self._sym_ids[value] = len(self._sym_ids)
            self._sym_offsets.append(
                self._frame(TAG_SYM, value.encode("utf-8"))
            )
        return sid

    def _addr(self, value) -> int:
        key = tuple(value)
        aid = self._addr_ids.get(key)
        if aid is None:
            aid = self._addr_ids[key] = len(self._addr_ids)
            self._addr_offsets.append(
                self._frame(TAG_ADDR, _json_bytes(list(key)))
            )
        return aid

    def write_task(self, info: Dict[str, Any]) -> None:
        """Emit one task-info frame (a :meth:`TaskInfo.to_dict` dict)."""
        self._task_offsets.append(self._frame(TAG_TASK, _json_bytes(info)))
        self._tasks_written += 1

    def write_row(self, code: int, time: int, task: str, values) -> None:
        """Buffer one op row (decoded payload values, schema order)."""
        self._b_kinds.append(code)
        self._b_times.append(time)
        self._b_tids.append(self._sym(task))
        schema = _SCHEMA_LIST[code]
        columns = self._b_cols.get(code)
        if columns is None:
            columns = self._b_cols[code] = [[] for _ in schema]
        for (_name, typ), column, value in zip(schema, columns, values):
            if typ == STR:
                column.append(self._sym(value))
            elif typ == OPT_INT:
                column.append(_NONE if value is None else value)
            elif typ == ADDR:
                column.append(self._addr(value))
            elif typ == BOOL:
                column.append(1 if value else 0)
            elif typ == ENUM:
                column.append(_BRANCH_INDEX[value])
            else:  # INT
                column.append(value)
        self._ops_written += 1
        if len(self._b_kinds) >= self._batch_ops:
            self._flush_batch()

    def _flush_batch(self) -> None:
        n = len(self._b_kinds)
        if not n:
            return
        sections: List[Tuple[int, int, int, bytes]] = [
            (SEC_KINDS, 0, n, bytes(self._b_kinds))
        ]
        enc, data = _encode_ints(self._b_times)
        sections.append((SEC_TIMES, enc, n, data))
        enc, data = _encode_ints(self._b_tids)
        sections.append((SEC_TASK_IDS, enc, n, data))
        for code in sorted(self._b_cols):
            schema = _SCHEMA_LIST[code]
            for field_index, ((_name, typ), column) in enumerate(
                zip(schema, self._b_cols[code])
            ):
                if typ == OPT_INT:
                    enc, data = _encode_ints(column, enc=7)
                elif typ in (BOOL, ENUM):
                    enc, data = _encode_ints(column, enc=0)
                else:
                    enc, data = _encode_ints(column)
                sections.append(
                    (_column_key(code, field_index), enc, len(column), data)
                )
        payload = bytearray()
        _write_uvarint(payload, n)
        _write_uvarint(payload, len(sections))
        for key, enc, count, data in sections:
            _write_uvarint(payload, key)
            payload.append(enc)
            _write_uvarint(payload, count)
            _write_uvarint(payload, len(data))
        for _key, _enc, _count, data in sections:
            payload += data
        self._batches.append((self._frame(TAG_BATCH, bytes(payload)), n))
        self._b_kinds = bytearray()
        self._b_times = []
        self._b_tids = []
        self._b_cols = {}

    def finish(self) -> None:
        """Flush the final batch, write the footer frame and trailer."""
        if self._finished:
            return
        self._finished = True
        self._flush_batch()
        footer = {
            "ops": self._ops_written,
            "tasks": self._tasks_written,
            "batches": [[offset, n] for offset, n in self._batches],
            "symbol_frames": self._sym_offsets,
            "address_frames": self._addr_offsets,
            "task_frames": self._task_offsets,
        }
        footer_offset = self._frame(TAG_FOOTER, _json_bytes(footer))
        self._fp.write(struct.pack("<Q", footer_offset) + TRAILER_MAGIC)
        self._offset += TRAILER_LEN


# ---------------------------------------------------------------------------
# Reading (push decoder)
# ---------------------------------------------------------------------------


class BinaryTraceDecoder:
    """Push-based incremental decoder for the binary v3 format.

    The surface mirrors :class:`~repro.trace.serialization.TraceStreamDecoder`
    (``feed``/``flush``/``finish``/``mark_damaged``, ``trace``,
    ``header``, ``error``, ``degraded``, ``records``, ``strict``) so the
    streaming service and the load entry points drive both identically —
    except :meth:`feed` takes *bytes*.

    Two decode paths.  The fast path *adopts* whole batches: every
    column lands via ``frombytes``/one widening copy straight into the
    trace's :class:`~repro.trace.store.TraceStore`, whose symbol/address
    tables are kept id-identical to the stream's by interning side-table
    frames in lockstep.  That requires the store to stay in sync with
    the stream; if the trace is swapped mid-stream (the streaming
    service's epoch GC) or mutated out of band, adoption is disabled
    permanently and rows fall back to per-row ``_append_decoded`` —
    byte-identical results, just slower.  A ``sink`` (``on_header``/
    ``on_task``/``on_row``) replaces the trace entirely (the transcoder
    path).

    Salvage semantics match the text decoder: under ``strict=False``
    the first damaged frame stops decoding, the error lands on
    :attr:`error`, and everything decoded before it remains valid; a
    stream that ends mid-frame — or before the footer+trailer — is
    truncation evidence that :meth:`flush`/:meth:`finish` rule on.
    Header problems always raise.
    """

    def __init__(
        self,
        expect_version: Optional[int] = None,
        columnar: bool = True,
        strict: bool = True,
        trace: Optional[Trace] = None,
        sink=None,
    ) -> None:
        self.trace = trace if trace is not None else Trace(columnar=columnar)
        self.expect_version = expect_version
        self.strict = strict
        self.sink = sink
        self.header: Optional[dict] = None
        self.error: Optional[TraceFormatError] = None
        self.records = 0
        self._buffer = bytearray()
        self._base = 0  # absolute stream offset of _buffer[0]
        self._magic_ok = False
        self._vocab: Optional[_Vocabulary] = None
        self._footer: Optional[dict] = None
        self._footer_offset: Optional[int] = None
        self._trailer_ok = False
        self._symbols: List[str] = []
        self._addresses: List[tuple] = []
        self._ops_seen = 0
        self._tasks_seen = 0
        # adoption bookkeeping
        self._adopt_trace = (
            self.trace
            if sink is None and self.trace.store is not None
            else None
        )
        self._adopt_ok = self._adopt_trace is not None
        self._adopted_syms = 0
        self._adopted_addrs = 0
        self._adopted_store_ops = 0
        # decode counters
        self._frames = 0
        self._batches = 0
        self._ops_adopted = 0
        self._ops_rowwise = 0
        self._columns_adopted = 0
        self._bytes_fed = 0

    @property
    def degraded(self) -> bool:
        """True once salvage mode has stopped at a damaged frame."""
        return self.error is not None

    def decode_stats(self) -> DecodeStats:
        return DecodeStats(
            version=3,
            frames=self._frames,
            records=self.records,
            batches=self._batches,
            ops_adopted=self._ops_adopted,
            ops_decoded=self._ops_rowwise,
            columns_adopted=self._columns_adopted,
            bytes_read=self._bytes_fed,
        )

    # -- feeding -------------------------------------------------------

    def feed(self, chunk: bytes) -> int:
        """Buffer ``chunk`` and decode every complete frame in it.

        Returns the number of operations decoded.  A trailing partial
        frame stays buffered until the next feed (or :meth:`finish`).
        """
        if self.error is not None or not chunk:
            return 0
        self._bytes_fed += len(chunk)
        self._buffer += chunk
        before = self._ops_seen
        try:
            self._parse()
        except TraceFormatError as exc:
            if self.strict or self.header is None:
                raise
            self.error = exc
            self._buffer.clear()
        return self._ops_seen - before

    def flush(self) -> int:
        """Rule on buffered bytes that never completed a frame.

        Every frame is written atomically, so input that ends mid-frame
        is truncation evidence: raises under ``strict``, marks the
        decoder degraded in salvage mode.  Returns 0 (symmetry with
        :meth:`feed`).
        """
        if not self._buffer:
            return 0
        at = self._base
        self._buffer.clear()
        error = TraceFormatError(
            f"stream ends mid-frame at byte {at}; the unterminated "
            "final frame cannot be trusted"
        )
        if self.strict:
            raise error
        if self.error is None:
            self.error = error
        return 0

    def finish(self) -> Trace:
        """Flush, require the footer+trailer and counts (strict), return
        the trace."""
        self.flush()
        if self.header is None:
            raise TraceError("empty trace stream")
        if self.strict:
            if not self._trailer_ok:
                raise TraceFormatError(
                    "stream ends before the v3 footer and trailer; "
                    "the file is truncated"
                )
            tasks_seen = (
                self._tasks_seen if self.sink is not None
                else len(self.trace.tasks)
            )
            ops_seen = (
                self._ops_seen if self.sink is not None else len(self.trace)
            )
            expected_tasks = self.header.get("tasks")
            if expected_tasks is not None and expected_tasks != tasks_seen:
                raise TraceFormatError(
                    f"task count mismatch: header says {expected_tasks}, "
                    f"stream has {tasks_seen}"
                )
            expected_ops = self.header.get("ops")
            if expected_ops is not None and expected_ops != ops_seen:
                raise TraceFormatError(
                    f"op count mismatch: header says {expected_ops}, "
                    f"stream has {ops_seen}"
                )
            footer_ops = self._footer.get("ops") if self._footer else None
            if footer_ops is not None and footer_ops != self._ops_seen:
                raise TraceFormatError(
                    f"op count mismatch: footer says {footer_ops}, "
                    f"stream has {self._ops_seen}"
                )
        self.trace.decode_stats = self.decode_stats()
        return self.trace

    def mark_damaged(self, exc: Exception) -> None:
        """Record out-of-band stream damage (e.g. a truncated gzip
        member noticed by the decompressor, not by any frame)."""
        error = TraceFormatError(f"damaged trace stream: {exc}")
        if self.strict:
            raise error from None
        if self.error is None:
            self.error = error

    # -- frame loop ----------------------------------------------------

    def _parse(self) -> None:
        buf = self._buffer
        end = len(buf)
        pos = 0
        try:
            while True:
                if not self._magic_ok:
                    if end - pos < len(MAGIC_V3):
                        return
                    if bytes(buf[pos:pos + len(MAGIC_V3)]) != MAGIC_V3:
                        raise TraceError("not a cafa-trace v3 binary stream")
                    pos += len(MAGIC_V3)
                    self._magic_ok = True
                    continue
                if self._footer is not None and not self._trailer_ok:
                    if end - pos < TRAILER_LEN:
                        return
                    self._take_trailer(bytes(buf[pos:pos + TRAILER_LEN]))
                    pos += TRAILER_LEN
                    self._trailer_ok = True
                    continue
                if self._trailer_ok:
                    if pos < end:
                        raise TraceFormatError(
                            f"{end - pos} bytes of data after the v3 trailer"
                        )
                    return
                if pos >= end:
                    return
                tag = buf[pos]
                try:
                    length, body = _read_uvarint(buf, pos + 1, end)
                except _Truncated:
                    return
                except ValueError as exc:
                    raise TraceFormatError(
                        f"frame at byte {self._base + pos}: {exc}"
                    ) from None
                if length > _MAX_FRAME:
                    raise TraceFormatError(
                        f"frame at byte {self._base + pos} declares an "
                        f"implausible length {length}"
                    )
                if end - body < length:
                    return
                frame_offset = self._base + pos
                payload = bytes(buf[body:body + length])
                pos = body + length
                self._handle_frame(tag, payload, frame_offset)
        finally:
            if pos:
                del buf[:pos]
                self._base += pos

    def _handle_frame(self, tag: int, payload: bytes, offset: int) -> None:
        self._frames += 1
        if self.header is None:
            if tag != TAG_HEADER:
                raise TraceError("v3 stream does not start with a header frame")
            self._take_header(payload)
            return
        if tag == TAG_TASK:
            self._take_task(payload, offset)
        elif tag == TAG_SYM:
            self._take_sym(payload, offset)
        elif tag == TAG_ADDR:
            self._take_addr(payload, offset)
        elif tag == TAG_BATCH:
            self._take_batch(payload, offset)
        elif tag == TAG_FOOTER:
            self._take_footer(payload, offset)
        elif tag == TAG_HEADER:
            raise TraceFormatError(f"duplicate header frame at byte {offset}")
        else:
            raise TraceFormatError(
                f"unknown frame tag {tag} at byte {offset}"
            )

    def _take_header(self, payload: bytes) -> None:
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise TraceError("unreadable v3 header frame") from None
        self._vocab = _negotiate_header(record, self.expect_version)
        self.header = record
        if self.sink is not None:
            self.sink.on_header(record)

    def _take_task(self, payload: bytes, offset: int) -> None:
        try:
            record = json.loads(payload.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("task frame is not an object")
            if self.sink is not None:
                self.sink.on_task(record)
            else:
                self.trace.add_task(TaskInfo.from_dict(record))
        except TraceFormatError:
            raise
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise TraceFormatError(
                f"corrupt task frame at byte {offset} "
                f"({exc.__class__.__name__}: {exc})"
            ) from None
        self._tasks_seen += 1
        self.records += 1

    def _take_sym(self, payload: bytes, offset: int) -> None:
        try:
            value = payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                f"corrupt symbol frame at byte {offset} ({exc})"
            ) from None
        if self._adoptable():
            store = self.trace.store
            if store.symbols.intern(value) == self._adopted_syms:
                self._adopted_syms += 1
            else:  # pragma: no cover - length checks make this unreachable
                self._adopt_ok = False
        self._symbols.append(value)
        self.records += 1

    def _take_addr(self, payload: bytes, offset: int) -> None:
        try:
            record = json.loads(payload.decode("utf-8"))
            if not isinstance(record, list) or len(record) != 3:
                raise ValueError("address frame is not a 3-element list")
            value = tuple(record)
        except (ValueError, UnicodeDecodeError) as exc:
            raise TraceFormatError(
                f"corrupt address frame at byte {offset} ({exc})"
            ) from None
        if self._adoptable():
            store = self.trace.store
            if store.addresses.intern(value) == self._adopted_addrs:
                self._adopted_addrs += 1
            else:  # pragma: no cover - length checks make this unreachable
                self._adopt_ok = False
        self._addresses.append(value)
        self.records += 1

    def _take_footer(self, payload: bytes, offset: int) -> None:
        try:
            record = json.loads(payload.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("footer frame is not an object")
        except (ValueError, UnicodeDecodeError) as exc:
            raise TraceFormatError(
                f"corrupt footer frame at byte {offset} ({exc})"
            ) from None
        self._footer = record
        self._footer_offset = offset

    def _take_trailer(self, raw: bytes) -> None:
        if raw[8:] != TRAILER_MAGIC:
            raise TraceFormatError("damaged v3 trailer magic")
        (footer_offset,) = struct.unpack("<Q", raw[:8])
        if footer_offset != self._footer_offset:
            raise TraceFormatError(
                f"trailer points at byte {footer_offset}, but the footer "
                f"frame is at byte {self._footer_offset}"
            )

    # -- batch decoding ------------------------------------------------

    def _adoptable(self) -> bool:
        """Is the one-shot column adoption path still valid?

        Permanently disabled the moment the trace was swapped (epoch
        GC) or its store/tables were touched out of band — interning
        ids would no longer line up with the stream's.
        """
        if not self._adopt_ok:
            return False
        trace = self.trace
        if trace is not self._adopt_trace:
            self._adopt_ok = False
            return False
        store = trace.store
        if (
            store is None
            or len(store) != self._adopted_store_ops
            or len(store.symbols) != self._adopted_syms
            or len(store.addresses) != self._adopted_addrs
        ):
            self._adopt_ok = False
            return False
        return True

    def _take_batch(self, payload: bytes, offset: int) -> None:
        try:
            n, local_kinds, times, tids, columns = self._decode_batch(payload)
        except TraceFormatError:
            raise
        except (ValueError, OverflowError, KeyError, IndexError,
                TypeError, _Truncated) as exc:
            raise TraceFormatError(
                f"corrupt batch frame at byte {offset} "
                f"({exc.__class__.__name__}: {exc})"
            ) from None
        if self.sink is not None:
            self._emit_rows(n, local_kinds, times, tids, columns, sink=True)
        elif self._adoptable():
            self.trace.store.adopt_batch(local_kinds, times, tids, columns)
            self._adopted_store_ops += n
            self._ops_adopted += n
            self._columns_adopted += 3 + sum(
                len(cols) for cols in columns.values()
            )
        else:
            self._emit_rows(n, local_kinds, times, tids, columns, sink=False)
        self._ops_seen += n
        self._batches += 1
        self.records += n

    def _decode_batch(self, payload: bytes):
        vocab = self._vocab
        limit = len(payload)
        n, pos = _read_uvarint(payload, 0, limit)
        n_sections, pos = _read_uvarint(payload, pos, limit)
        directory = []
        for _ in range(n_sections):
            key, pos = _read_uvarint(payload, pos, limit)
            if pos >= limit:
                raise _Truncated
            enc = payload[pos]
            pos += 1
            count, pos = _read_uvarint(payload, pos, limit)
            nbytes, pos = _read_uvarint(payload, pos, limit)
            directory.append((key, enc, count, nbytes))
        sections: Dict[int, Tuple[int, int, bytes]] = {}
        for key, enc, count, nbytes in directory:
            if key in sections:
                raise ValueError(f"duplicate section key {key}")
            blob = payload[pos:pos + nbytes]
            if len(blob) != nbytes:
                raise _Truncated
            sections[key] = (enc, count, blob)
            pos += nbytes
        if pos != limit:
            raise ValueError(f"{limit - pos} stray bytes after the sections")
        required = (SEC_KINDS, SEC_TIMES, SEC_TASK_IDS)
        for key in required:
            if key not in sections:
                raise ValueError(f"missing global section {key}")
            if sections[key][1] != n:
                raise ValueError(
                    f"global section {key} covers {sections[key][1]} "
                    f"of {n} ops"
                )
        enc, _count, blob = sections.pop(SEC_KINDS)
        wire_kinds = bytes(_decode_ints(blob, enc, n, "B"))
        if wire_kinds and max(wire_kinds) >= len(vocab.codes):
            raise ValueError("undeclared kind code in batch")
        local_kinds = (
            wire_kinds.translate(vocab.kind_map)
            if vocab.kind_map is not None
            else wire_kinds
        )
        enc, _count, blob = sections.pop(SEC_TIMES)
        times = _decode_ints(blob, enc, n, "q")
        enc, _count, blob = sections.pop(SEC_TASK_IDS)
        tids = _decode_ints(blob, enc, n, "i")
        if tids and max(tids) >= len(self._symbols):
            raise ValueError("task symbol id out of range")
        columns: Dict[int, List[array]] = {}
        for wire in sorted(set(wire_kinds)):
            schema = vocab.schemas[wire]
            local = vocab.codes[wire]
            occurrences = wire_kinds.count(wire)
            decoded: List[array] = []
            for field_index, (name, typ) in enumerate(schema):
                entry = sections.pop(_column_key(wire, field_index), None)
                if entry is None:
                    raise ValueError(
                        f"missing column {name!r} of kind code {wire}"
                    )
                enc, count, blob = entry
                if count != occurrences:
                    raise ValueError(
                        f"column {name!r} covers {count} of "
                        f"{occurrences} rows"
                    )
                column = _decode_ints(blob, enc, count, _ARRAY_TYPE[typ])
                if typ == STR:
                    if column and max(column) >= len(self._symbols):
                        raise ValueError("symbol id out of range")
                elif typ == ADDR:
                    if column and max(column) >= len(self._addresses):
                        raise ValueError("address id out of range")
                elif typ == ENUM:
                    if column and max(column) >= len(vocab.branches):
                        raise ValueError("undeclared branch kind in batch")
                    if vocab.branch_map is not None:
                        column = array(
                            "B", column.tobytes().translate(vocab.branch_map)
                        )
                decoded.append(column)
            columns[local] = decoded
        if sections:
            raise ValueError(
                f"unexpected section keys {sorted(sections)} in batch"
            )
        return n, local_kinds, times, tids, columns

    def _emit_rows(self, n, local_kinds, times, tids, columns, sink) -> None:
        """Row-by-row delivery: the sink path and the post-GC fallback."""
        symbols = self._symbols
        addresses = self._addresses
        cursors: Dict[int, int] = {}
        on_row = self.sink.on_row if sink else None
        append = None if sink else self.trace._append_decoded
        for i in range(n):
            code = local_kinds[i]
            schema = _SCHEMA_LIST[code]
            row = cursors.get(code, 0)
            cursors[code] = row + 1
            values: List[Any] = []
            if schema:
                for (_name, typ), column in zip(schema, columns[code]):
                    raw = column[row]
                    if typ == STR:
                        values.append(symbols[raw])
                    elif typ == OPT_INT:
                        values.append(None if raw == _NONE else raw)
                    elif typ == ADDR:
                        values.append(addresses[raw])
                    elif typ == BOOL:
                        values.append(bool(raw))
                    elif typ == ENUM:
                        values.append(_BRANCH_KINDS[raw])
                    else:  # INT
                        values.append(raw)
            task = symbols[tids[i]]
            if sink:
                on_row(code, times[i], task, values)
            else:
                append(code, times[i], task, values)
        self._ops_rowwise += n


# ---------------------------------------------------------------------------
# Column-sparse segment access (mmap)
# ---------------------------------------------------------------------------


class SegmentReader:
    """Column-sparse random access to one v3 file via ``mmap``.

    Opens the file, validates magic + trailer, and parses only the
    footer, header, and (lazily, per batch) the section directories —
    a few KiB regardless of trace size.  :meth:`column` then reads
    exactly one kind's one field across all batches; everything else
    is never touched, which is the point: a corpus bigger than RAM can
    be triaged by scanning two columns of each file.

    ``bytes_read`` / ``bytes_skipped`` / ``columns_mapped`` account for
    the sparseness (surfaced by ``repro stats --sparse``).  Only plain
    (non-gzip) files can be mapped.
    """

    def __init__(self, path) -> None:
        import mmap as _mmap

        self._fh = open(path, "rb")
        try:
            try:
                self._mm = _mmap.mmap(
                    self._fh.fileno(), 0, access=_mmap.ACCESS_READ
                )
            except ValueError:
                raise TraceError(f"{path}: empty file is not a v3 trace") from None
            mm = self._mm
            self.file_bytes = len(mm)
            self.bytes_read = 0
            self.columns_mapped = 0
            self._frames_read = 0
            self._dirs: Dict[int, tuple] = {}
            if mm[:2] == b"\x1f\x8b":
                raise TraceError(
                    f"{path}: gzip-compressed traces cannot be mmapped; "
                    "decompress first (repro convert) or load normally"
                )
            if (
                self.file_bytes < len(MAGIC_V3) + TRAILER_LEN
                or mm[:len(MAGIC_V3)] != MAGIC_V3
            ):
                raise TraceError(f"{path}: not a cafa-trace v3 file")
            self.bytes_read += len(MAGIC_V3)
            trailer = mm[self.file_bytes - TRAILER_LEN:]
            if trailer[8:] != TRAILER_MAGIC:
                raise TraceFormatError(
                    "v3 trailer missing or damaged (truncated file?)"
                )
            (footer_offset,) = struct.unpack("<Q", trailer[:8])
            self.bytes_read += TRAILER_LEN
            tag, payload = self._frame_at(footer_offset)
            if tag != TAG_FOOTER:
                raise TraceFormatError(
                    "trailer does not point at a footer frame"
                )
            self.footer = self._json(payload, "footer")
            tag, payload = self._frame_at(len(MAGIC_V3))
            if tag != TAG_HEADER:
                raise TraceError("v3 file does not start with a header frame")
            self.header = self._json(payload, "header")
            self._vocab = _negotiate_header(self.header, None)
            self._wire_of_local = {
                code: wire for wire, code in enumerate(self._vocab.codes)
            }
        except BaseException:
            self.close()
            raise

    # -- plumbing ------------------------------------------------------

    def close(self) -> None:
        mm = getattr(self, "_mm", None)
        if mm is not None:
            mm.close()
            self._mm = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @staticmethod
    def _json(payload: bytes, what: str):
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise TraceFormatError(f"corrupt v3 {what} frame ({exc})") from None
        return record

    def _frame_at(self, offset: int) -> Tuple[int, bytes]:
        mm = self._mm
        if not 0 <= offset < self.file_bytes:
            raise TraceFormatError(f"frame offset {offset} outside the file")
        tag = mm[offset]
        try:
            length, body = _read_uvarint(mm, offset + 1, self.file_bytes)
        except (_Truncated, ValueError) as exc:
            raise TraceFormatError(
                f"damaged frame at byte {offset}: {exc}"
            ) from None
        if body + length > self.file_bytes:
            raise TraceFormatError(
                f"frame at byte {offset} runs past the end of the file"
            )
        self._frames_read += 1
        self.bytes_read += (body - offset) + length
        return tag, mm[body:body + length]

    def _batch_dir(self, offset: int) -> tuple:
        """Parse (and cache) one batch's section directory without
        touching its data blocks; returns ``(n_ops, sections)`` with
        ``sections[key] = (enc, count, absolute_offset, nbytes)``."""
        cached = self._dirs.get(offset)
        if cached is not None:
            return cached
        mm = self._mm
        if mm[offset] != TAG_BATCH:
            raise TraceFormatError(
                f"footer batch entry at byte {offset} is not a batch frame"
            )
        try:
            length, body = _read_uvarint(mm, offset + 1, self.file_bytes)
            limit = body + length
            if limit > self.file_bytes:
                raise ValueError("frame runs past the end of the file")
            n, pos = _read_uvarint(mm, body, limit)
            n_sections, pos = _read_uvarint(mm, pos, limit)
            directory = []
            for _ in range(n_sections):
                key, pos = _read_uvarint(mm, pos, limit)
                if pos >= limit:
                    raise _Truncated
                enc = mm[pos]
                pos += 1
                count, pos = _read_uvarint(mm, pos, limit)
                nbytes, pos = _read_uvarint(mm, pos, limit)
                directory.append((key, enc, count, nbytes))
            sections: Dict[int, Tuple[int, int, int, int]] = {}
            for key, enc, count, nbytes in directory:
                if key in sections or pos + nbytes > limit:
                    raise ValueError(f"damaged section {key}")
                sections[key] = (enc, count, pos, nbytes)
                pos += nbytes
            if pos != limit:
                raise ValueError("stray bytes after the sections")
        except (_Truncated, ValueError) as exc:
            raise TraceFormatError(
                f"corrupt batch frame at byte {offset} ({exc})"
            ) from None
        self._frames_read += 1
        # the frame head plus the directory itself count as read; the
        # data blocks only count when a column is actually mapped
        first_data = min(s[2] for s in sections.values()) if sections else limit
        self.bytes_read += (body - offset) + (first_data - body)
        entry = (n, sections)
        self._dirs[offset] = entry
        return entry

    # -- the sparse reads ----------------------------------------------

    @property
    def n_ops(self) -> int:
        return self.footer.get("ops", 0)

    def batches(self) -> List[Tuple[int, int]]:
        return [(offset, n) for offset, n in self.footer.get("batches", [])]

    def _read_section(self, sections, key: int, count: int, typecode: str):
        entry = sections.get(key)
        if entry is None:
            return None
        enc, declared, data_offset, nbytes = entry
        if declared != count:
            raise TraceFormatError(
                f"section {key} covers {declared} of {count} expected rows"
            )
        blob = self._mm[data_offset:data_offset + nbytes]
        self.bytes_read += nbytes
        self.columns_mapped += 1
        try:
            return _decode_ints(blob, enc, count, typecode)
        except (ValueError, OverflowError) as exc:
            raise TraceFormatError(f"corrupt column section {key} ({exc})") from None

    def global_column(self, name: str) -> array:
        """One of the global columns (``"kinds"``/``"times"``/
        ``"task_ids"``) concatenated across all batches; kind codes are
        remapped to the local vocabulary."""
        spec = {
            "kinds": (SEC_KINDS, "B"),
            "times": (SEC_TIMES, "q"),
            "task_ids": (SEC_TASK_IDS, "i"),
        }.get(name)
        if spec is None:
            raise KeyError(f"unknown global column {name!r}")
        key, typecode = spec
        out = array(typecode)
        for offset, _n in self.batches():
            n, sections = self._batch_dir(offset)
            part = self._read_section(sections, key, n, typecode)
            if part is None:
                raise TraceFormatError(
                    f"batch at byte {offset} lacks global section {key}"
                )
            if key == SEC_KINDS:
                raw = part.tobytes()
                if raw and max(raw) >= len(self._vocab.codes):
                    raise TraceFormatError("undeclared kind code in batch")
                if self._vocab.kind_map is not None:
                    raw = raw.translate(self._vocab.kind_map)
                part = array("B", raw)
            out += part
        return out

    def column(self, kind: OpKind, field: str) -> array:
        """One kind's one payload column across all batches, raw
        (interned ids as stored); decode through :meth:`symbols` /
        :meth:`addresses`.  Only this column's blocks are read."""
        code = KIND_CODES[kind]
        wire = self._wire_of_local.get(code)
        schema = SCHEMAS[kind]
        for field_index, (name, typ) in enumerate(schema):
            if name == field:
                break
        else:
            raise KeyError(f"{kind} has no column {field!r}")
        out = array(_ARRAY_TYPE[typ])
        if wire is None:  # the writer's vocabulary lacks this kind
            return out
        key = _column_key(wire, field_index)
        for offset, _n in self.batches():
            _ops, sections = self._batch_dir(offset)
            entry = sections.get(key)
            if entry is None:
                continue  # no rows of this kind in the batch
            part = self._read_section(
                sections, key, entry[1], _ARRAY_TYPE[typ]
            )
            if typ == ENUM:
                raw = part.tobytes()
                if raw and max(raw) >= len(self._vocab.branches):
                    raise TraceFormatError("undeclared branch kind in batch")
                if self._vocab.branch_map is not None:
                    raw = raw.translate(self._vocab.branch_map)
                part = array("B", raw)
            out += part
        return out

    def symbols(self) -> List[str]:
        """The interned string table, by side-table frame offsets."""
        out = []
        for offset in self.footer.get("symbol_frames", []):
            tag, payload = self._frame_at(offset)
            if tag != TAG_SYM:
                raise TraceFormatError(
                    f"footer symbol entry at byte {offset} is not a "
                    "symbol frame"
                )
            out.append(payload.decode("utf-8"))
        return out

    def addresses(self) -> List[tuple]:
        out = []
        for offset in self.footer.get("address_frames", []):
            tag, payload = self._frame_at(offset)
            if tag != TAG_ADDR:
                raise TraceFormatError(
                    f"footer address entry at byte {offset} is not an "
                    "address frame"
                )
            out.append(tuple(self._json(payload, "address")))
        return out

    def tasks(self) -> List[TaskInfo]:
        out = []
        for offset in self.footer.get("task_frames", []):
            tag, payload = self._frame_at(offset)
            if tag != TAG_TASK:
                raise TraceFormatError(
                    f"footer task entry at byte {offset} is not a task frame"
                )
            out.append(TaskInfo.from_dict(self._json(payload, "task")))
        return out

    @property
    def bytes_skipped(self) -> int:
        return max(0, self.file_bytes - self.bytes_read)

    def stats(self) -> DecodeStats:
        return DecodeStats(
            version=3,
            frames=self._frames_read,
            batches=len(self._dirs),
            columns_adopted=self.columns_mapped,
            bytes_read=self.bytes_read,
            bytes_skipped=self.bytes_skipped,
        )
