"""Trace slicing utilities.

The paper's traces are large (§6.4: analysis takes up to a day on the
heaviest apps); practical workflows slice them — one process, one time
window, only the tasks that touch a suspect field — before analysis.
These helpers produce *self-consistent sub-traces*: whole tasks are
kept or dropped (never split), so the result still satisfies the trace
invariants and can be fed to the happens-before builder directly.

Dropping tasks deletes happens-before edges, which can only make the
analysis report *more* races, never hide an existing one between the
kept tasks — the direction of error a triage workflow wants.
"""

from __future__ import annotations

from typing import Callable, Iterable, Set

from .operations import PtrRead, PtrWrite
from .trace import TaskInfo, Trace


def filter_tasks(trace: Trace, keep: Callable[[TaskInfo], bool]) -> Trace:
    """A sub-trace containing exactly the tasks ``keep`` accepts."""
    kept = {task for task, info in trace.tasks.items() if keep(info)}
    return _subset(trace, kept)


def filter_process(trace: Trace, process: str) -> Trace:
    """Only the tasks of one process."""
    return filter_tasks(trace, lambda info: info.process == process)


def filter_time_window(trace: Trace, start: int, end: int) -> Trace:
    """Only tasks whose every operation falls within [start, end]."""
    bounds = {}
    for op in trace.ops:
        lo, hi = bounds.get(op.task, (op.time, op.time))
        bounds[op.task] = (min(lo, op.time), max(hi, op.time))
    kept = {
        task
        for task, (lo, hi) in bounds.items()
        if start <= lo and hi <= end
    }
    return _subset(trace, kept)


def tasks_touching_field(trace: Trace, field: str) -> Set[str]:
    """Tasks with a pointer access to any slot named ``field``."""
    out: Set[str] = set()
    for op in trace.ops:
        if isinstance(op, (PtrRead, PtrWrite)) and str(op.address[2]) == field:
            out.add(op.task)
    return out


def slice_for_field(trace: Trace, field: str) -> Trace:
    """Tasks touching ``field`` plus every synchronization-relevant
    task (all tasks are kept if none touches the field)."""
    touching = tasks_touching_field(trace, field)
    if not touching:
        return _subset(trace, set(trace.tasks))
    # Keep the touching tasks and every non-event task (threads and
    # loopers carry the synchronization structure between them).
    from .trace import TaskKind

    kept = set(touching)
    for task, info in trace.tasks.items():
        if info.task_kind is not TaskKind.EVENT:
            kept.add(task)
    return _subset(trace, kept)


def _subset(trace: Trace, kept: Iterable[str]) -> Trace:
    kept = set(kept)
    out = Trace()
    for task, info in trace.tasks.items():
        if task in kept:
            out.add_task(info)
    for op in trace.ops:
        if op.task in kept:
            out.append(op)
    return out
