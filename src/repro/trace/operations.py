"""Trace operations for event-driven programs.

This module defines the operation vocabulary of an execution trace.  The
first group mirrors Figure 3 of the paper exactly::

    Operation -> begin(t) | end(t) | rd(t, x) | wr(t, x) |
                 fork(t, u) | join(t, u) | wait(t, m) | notify(t, m) |
                 send(t, e, delay) | sendAtFront(t, e) |
                 register(t, l) | perform(t, l)

The second group extends the vocabulary with the low-level records that
CAFA's instrumented Dalvik interpreter emits (Section 5.3): pointer
reads, pointer writes (frees / allocations), dereferences, guarded
branch instructions, method enter/exit, lock acquire/release, and the
Binder IPC transaction records (Section 5.2).

Every operation belongs to a *task*.  A task is either a regular thread
or an event (``t in Thread | Event`` in the paper's notation); tasks are
identified by opaque string ids.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple, Type


class OpKind(enum.Enum):
    """Discriminator for every operation type in a trace."""

    # -- Figure 3 operations -------------------------------------------
    BEGIN = "begin"
    END = "end"
    READ = "rd"
    WRITE = "wr"
    FORK = "fork"
    JOIN = "join"
    WAIT = "wait"
    NOTIFY = "notify"
    SEND = "send"
    SEND_AT_FRONT = "sendAtFront"
    REGISTER = "register"
    PERFORM = "perform"
    # -- Section 5.3 low-level records ---------------------------------
    PTR_READ = "ptr_read"
    PTR_WRITE = "ptr_write"
    DEREF = "deref"
    BRANCH = "branch"
    ACQUIRE = "acquire"
    RELEASE = "release"
    METHOD_ENTER = "method_enter"
    METHOD_EXIT = "method_exit"
    # -- Section 5.2 IPC records ---------------------------------------
    IPC_CALL = "ipc_call"
    IPC_HANDLE = "ipc_handle"
    IPC_REPLY = "ipc_reply"
    IPC_RETURN = "ipc_return"


class BranchKind(enum.Enum):
    """The three guarded branch instructions logged for the if-guard check.

    Per Section 5.3, a trace entry is emitted for ``if-eqz`` only when
    the branch is *not* taken, and for ``if-nez`` / ``if-eq`` only when
    the branch *is* taken; in every logged case the tested pointer is
    guaranteed non-null on the path that follows.
    """

    IF_EQZ = "if-eqz"
    IF_NEZ = "if-nez"
    IF_EQ = "if-eq"


#: A pointer "address" is a fully-qualified field slot, e.g.
#: ``("obj", 17, "providerUtils")`` for an instance field of object #17 or
#: ``("static", "MyTracks", "instance")`` for a static field.
Address = Tuple[str, Any, str]

#: Object ids are integers assigned by the heap; ``None`` encodes null.
ObjectId = Optional[int]


@dataclass(frozen=True)
class Operation:
    """Base class for all trace operations.

    Attributes:
        task: id of the task (thread or event) executing this operation.
        time: virtual timestamp (milliseconds) at which it executed.
    """

    task: str
    time: int = 0

    kind: "OpKind" = field(init=False, repr=False, default=None)  # type: ignore[assignment]

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a flat dict (used by the JSONL trace format)."""
        out: Dict[str, Any] = {"kind": self.kind.value}
        for f in fields(self):
            if f.name == "kind":
                continue
            value = getattr(self, f.name)
            if isinstance(value, enum.Enum):
                value = value.value
            elif isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out


def _op(kind: OpKind):
    """Class decorator binding a concrete operation to its ``OpKind``."""

    def wrap(cls: Type[Operation]) -> Type[Operation]:
        cls.kind = kind
        _REGISTRY[kind] = cls
        return cls

    return wrap


_REGISTRY: Dict[OpKind, Type[Operation]] = {}


# ---------------------------------------------------------------------------
# Figure 3 operations
# ---------------------------------------------------------------------------


@_op(OpKind.BEGIN)
@dataclass(frozen=True)
class Begin(Operation):
    """``begin(t)`` — task *t* starts executing."""


@_op(OpKind.END)
@dataclass(frozen=True)
class End(Operation):
    """``end(t)`` — task *t* finishes executing."""


@_op(OpKind.READ)
@dataclass(frozen=True)
class Read(Operation):
    """``rd(t, x)`` — task *t* reads shared variable *x*.

    ``site`` identifies the static program location of the access so
    that dynamic races can be deduplicated into static reports.
    """

    var: str = ""
    site: str = ""


@_op(OpKind.WRITE)
@dataclass(frozen=True)
class Write(Operation):
    """``wr(t, x)`` — task *t* writes shared variable *x*."""

    var: str = ""
    site: str = ""


@_op(OpKind.FORK)
@dataclass(frozen=True)
class Fork(Operation):
    """``fork(t, u)`` — task *t* forks a new regular thread *u*."""

    child: str = ""


@_op(OpKind.JOIN)
@dataclass(frozen=True)
class Join(Operation):
    """``join(t, u)`` — task *t* blocks until thread *u* ends."""

    child: str = ""


@_op(OpKind.WAIT)
@dataclass(frozen=True)
class Wait(Operation):
    """``wait(t, m)`` — *t* resumed from a wait on monitor *m*.

    The record is emitted when the wait *returns*.  ``ticket`` names the
    ``notify`` that woke this wait so the signal-and-wait rule can pair
    them without guessing.
    """

    monitor: str = ""
    ticket: int = -1


@_op(OpKind.NOTIFY)
@dataclass(frozen=True)
class Notify(Operation):
    """``notify(t, m)`` — *t* signals monitor *m*.

    ``ticket`` is a fresh id copied into every :class:`Wait` this notify
    wakes up.
    """

    monitor: str = ""
    ticket: int = -1


@_op(OpKind.SEND)
@dataclass(frozen=True)
class Send(Operation):
    """``send(t, e, delay)`` — *t* enqueues event *e* at the queue tail.

    *e* becomes eligible to run ``delay`` ms after it is enqueued.
    """

    event: str = ""
    delay: int = 0
    queue: str = ""


@_op(OpKind.SEND_AT_FRONT)
@dataclass(frozen=True)
class SendAtFront(Operation):
    """``sendAtFront(t, e)`` — *t* enqueues *e* at the queue front.

    Android does not allow a delay with ``sendAtFront``; neither do we.
    """

    event: str = ""
    queue: str = ""


@_op(OpKind.REGISTER)
@dataclass(frozen=True)
class Register(Operation):
    """``register(t, l)`` — *t* registers event listener *l*."""

    listener: str = ""


@_op(OpKind.PERFORM)
@dataclass(frozen=True)
class Perform(Operation):
    """``perform(e, l)`` — listener *l* is performed inside event *e*."""

    listener: str = ""


# ---------------------------------------------------------------------------
# Section 5.3 low-level records
# ---------------------------------------------------------------------------


@_op(OpKind.PTR_READ)
@dataclass(frozen=True)
class PtrRead(Operation):
    """A pointer read (``iget-object`` et al.).

    Logs the address of the pointer slot and the id of the object it
    yields (``None`` for null).  The offline analyzer later matches a
    :class:`Deref` with its nearest previous ``PtrRead`` returning the
    same object id to recognize a *use* (Section 5.3).
    """

    address: Address = ("", "", "")
    object_id: ObjectId = None
    method: str = ""
    pc: int = -1


@_op(OpKind.PTR_WRITE)
@dataclass(frozen=True)
class PtrWrite(Operation):
    """A pointer write (``iput-object`` et al.).

    If ``value`` is ``None`` the write is a *free*; otherwise it is an
    *allocation* of ``address`` (Section 4.1 / 5.3).  ``container`` is
    the id of the object being dereferenced by the store, if any.
    """

    address: Address = ("", "", "")
    value: ObjectId = None
    container: ObjectId = None
    method: str = ""
    pc: int = -1

    @property
    def is_free(self) -> bool:
        return self.value is None


@_op(OpKind.DEREF)
@dataclass(frozen=True)
class Deref(Operation):
    """A dereference of ``object_id`` (field access or method invocation)."""

    object_id: ObjectId = None
    method: str = ""
    pc: int = -1


@_op(OpKind.BRANCH)
@dataclass(frozen=True)
class Branch(Operation):
    """A logged guarded branch (if-eqz / if-nez / if-eq on a pointer).

    Only the outcomes that guarantee the tested pointer is non-null are
    logged, so the record always certifies safety of a code region (the
    if-guard check, Section 4.3 and Figure 6).  ``pc`` and ``target``
    are the current and target addresses of the branch; ``object_id``
    is the id of the tested object.
    """

    branch_kind: BranchKind = BranchKind.IF_EQZ
    pc: int = -1
    target: int = -1
    object_id: ObjectId = None
    method: str = ""


@_op(OpKind.ACQUIRE)
@dataclass(frozen=True)
class Acquire(Operation):
    """Lock acquisition.  Used only for the lockset mutual-exclusion
    check — the model deliberately derives **no** happens-before edge
    from an unlock to a later lock (Section 3.1)."""

    lock: str = ""


@_op(OpKind.RELEASE)
@dataclass(frozen=True)
class Release(Operation):
    """Lock release (see :class:`Acquire`)."""

    lock: str = ""


@_op(OpKind.METHOD_ENTER)
@dataclass(frozen=True)
class MethodEnter(Operation):
    """Method invocation record (calling-context stack, Section 5.3)."""

    method: str = ""
    return_pc: int = -1


@_op(OpKind.METHOD_EXIT)
@dataclass(frozen=True)
class MethodExit(Operation):
    """Method return record; ``via_exception`` marks unwinding exits."""

    method: str = ""
    return_pc: int = -1
    via_exception: bool = False


# ---------------------------------------------------------------------------
# Section 5.2 IPC records
# ---------------------------------------------------------------------------


@_op(OpKind.IPC_CALL)
@dataclass(frozen=True)
class IpcCall(Operation):
    """Client side of a Binder transaction: the RPC is initiated.

    All records of one transaction share a unique ``txn`` id, which the
    offline analyzer correlates to derive cross-process causality.
    """

    txn: int = -1
    service: str = ""
    oneway: bool = False


@_op(OpKind.IPC_HANDLE)
@dataclass(frozen=True)
class IpcHandle(Operation):
    """Server side: the transaction starts being handled."""

    txn: int = -1
    service: str = ""


@_op(OpKind.IPC_REPLY)
@dataclass(frozen=True)
class IpcReply(Operation):
    """Server side: the reply for the transaction is sent."""

    txn: int = -1
    service: str = ""


@_op(OpKind.IPC_RETURN)
@dataclass(frozen=True)
class IpcReturn(Operation):
    """Client side: the RPC returns with the reply."""

    txn: int = -1
    service: str = ""


# ---------------------------------------------------------------------------
# Deserialization
# ---------------------------------------------------------------------------

_TUPLE_FIELDS = {"address"}
_ENUM_FIELDS = {"branch_kind": BranchKind}


def operation_from_dict(data: Dict[str, Any]) -> Operation:
    """Reconstruct an operation from :meth:`Operation.to_dict` output."""
    data = dict(data)
    kind = OpKind(data.pop("kind"))
    cls = _REGISTRY[kind]
    kwargs: Dict[str, Any] = {}
    for f in fields(cls):
        if f.name == "kind" or f.name not in data:
            continue
        value = data[f.name]
        if f.name in _TUPLE_FIELDS and isinstance(value, list):
            value = tuple(value)
        elif f.name in _ENUM_FIELDS and value is not None:
            value = _ENUM_FIELDS[f.name](value)
        kwargs[f.name] = value
    return cls(**kwargs)


#: Operation kinds that participate in cross-task happens-before edges.
#: All other kinds (memory accesses, pointer records, branches, locks)
#: never source or sink an HB edge, which is what makes the key-node
#: reachability index in :mod:`repro.hb` compact.
SYNC_KINDS = frozenset(
    {
        OpKind.BEGIN,
        OpKind.END,
        OpKind.FORK,
        OpKind.JOIN,
        OpKind.WAIT,
        OpKind.NOTIFY,
        OpKind.SEND,
        OpKind.SEND_AT_FRONT,
        OpKind.REGISTER,
        OpKind.PERFORM,
        OpKind.IPC_CALL,
        OpKind.IPC_HANDLE,
        OpKind.IPC_REPLY,
        OpKind.IPC_RETURN,
    }
)
