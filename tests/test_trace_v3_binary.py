"""The v3 binary columnar trace format: property-based round-trips
against v2 across every operation kind (and every payload type tag),
cross-format transcoding byte-identity, the mmap column-sparse
:class:`SegmentReader`, decode-counter surfacing, and the sniffing
:class:`AnyTraceDecoder` facade."""

import gzip
import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import ALL_APPS, make_app
from repro.detect import UseFreeDetector
from repro.trace import (
    AnyTraceDecoder,
    OpKind,
    SegmentReader,
    Trace,
    TraceError,
    TraceWriterV3,
    convert_trace_file,
    dump_trace_binary,
    dumps_trace,
    dumps_trace_bytes,
    load_trace_file,
    loads_trace,
    save_trace_file,
)
from repro.trace.operations import BranchKind, operation_from_dict
from repro.trace.serialization import _dump_via_writer
from repro.trace.store import KIND_LIST, SCHEMAS

# ---------------------------------------------------------------------------
# an all-kinds operation strategy, derived from the column schemas
# ---------------------------------------------------------------------------

_task_st = st.sampled_from(["t", "u", "ev1:handler"])


def _value_st(tag):
    """A strategy for one payload value of the given column type tag."""
    if tag == "s":  # STR
        return st.text(max_size=5)
    if tag == "a":  # ADDR
        return st.tuples(
            st.sampled_from(["obj", "static"]),
            st.integers(1, 9),
            st.text(max_size=3),
        )
    if tag == "i":  # INT — span every adaptive width incl. i64
        return st.integers(-(1 << 40), 1 << 40)
    if tag == "?":  # OPT_INT
        return st.one_of(st.none(), st.integers(-(1 << 33), 1 << 33))
    if tag == "b":  # BOOL
        return st.booleans()
    return st.sampled_from([b.value for b in BranchKind])  # ENUM


def _op_st(kind):
    fields = {
        "kind": st.just(kind.value),
        "task": _task_st,
        "time": st.integers(0, 1 << 45),
    }
    for name, tag in SCHEMAS[kind]:
        fields[name] = _value_st(tag)
    return st.fixed_dictionaries(fields).map(operation_from_dict)


#: every one of the 24 operation kinds, every payload type tag
any_kind_op_st = st.one_of([_op_st(kind) for kind in KIND_LIST])
ops_st = st.lists(any_kind_op_st, max_size=40)


def bare_trace(ops, columnar=True):
    trace = Trace(columnar=columnar)
    trace.extend(ops)
    return trace


def v3_bytes(trace):
    buf = io.BytesIO()
    dump_trace_binary(trace, buf)
    return buf.getvalue()


class TestPropertyRoundTrips:
    @settings(max_examples=200, deadline=None)
    @given(ops_st, st.booleans(), st.booleans())
    def test_v3_round_trips_any_ops(self, ops, write_columnar, read_columnar):
        trace = bare_trace(ops, columnar=write_columnar)
        back = loads_trace(v3_bytes(trace), columnar=read_columnar)
        assert list(back.ops) == ops
        assert back.columnar is read_columnar

    @settings(max_examples=100, deadline=None)
    @given(ops_st)
    def test_v2_and_v3_decode_identically(self, ops):
        trace = bare_trace(ops)
        via_v2 = loads_trace(dumps_trace(trace, version=2))
        via_v3 = loads_trace(v3_bytes(trace))
        assert list(via_v2.ops) == list(via_v3.ops) == ops

    @settings(max_examples=100, deadline=None)
    @given(ops_st)
    def test_v3_reserialization_is_stable(self, ops):
        # dump -> load -> dump must be byte-identical: the wire interning
        # order depends only on the op sequence.
        first = v3_bytes(bare_trace(ops))
        second = v3_bytes(loads_trace(first))
        assert first == second

    @settings(max_examples=100, deadline=None)
    @given(ops_st)
    def test_v3_through_v2_preserves_v2_bytes(self, ops):
        # v2 -> v3 -> v2 transcoding loses nothing the text format holds.
        trace = bare_trace(ops)
        v2_text = dumps_trace(trace, version=2)
        rehydrated = loads_trace(v3_bytes(loads_trace(v2_text)))
        assert dumps_trace(rehydrated, version=2) == v2_text

    @pytest.mark.parametrize("kind", KIND_LIST, ids=lambda k: k.value)
    def test_every_kind_hits_the_wire(self, kind):
        # deterministic floor under the property tests: each kind's
        # schema round-trips on its own
        ops = [
            operation_from_dict(
                {
                    "kind": kind.value,
                    "task": "t",
                    "time": i,
                    **{
                        name: _DEFAULTS[tag]
                        for name, tag in SCHEMAS[kind]
                    },
                }
            )
            for i in range(3)
        ]
        back = loads_trace(v3_bytes(bare_trace(ops)))
        assert list(back.ops) == ops


_DEFAULTS = {
    "s": "sym",
    "a": ("obj", 7, "f"),
    "i": -(1 << 39),
    "?": None,
    "b": True,
    "e": BranchKind.IF_NEZ.value,
}


class TestBatching:
    @settings(max_examples=40, deadline=None)
    @given(ops_st)
    def test_tiny_batches_round_trip(self, ops):
        # force many batches (and lazy interning frames between them)
        buf = io.BytesIO()
        writer = TraceWriterV3(buf, tasks=0, ops=len(ops), batch_ops=3)
        trace = bare_trace(ops)
        _dump_via_writer(trace, writer)
        back = loads_trace(buf.getvalue())
        assert list(back.ops) == ops

    def test_batch_size_does_not_change_decoded_trace(self):
        trace = make_app("connectbot", scale=0.05, seed=1).run().trace
        small = io.BytesIO()
        _dump_via_writer(
            trace,
            TraceWriterV3(
                small, tasks=len(trace.tasks), ops=len(trace), batch_ops=17
            ),
        )
        assert loads_trace(small.getvalue()).ops == trace.ops


class TestConvert:
    @pytest.fixture(scope="class")
    def app_trace(self):
        return make_app("connectbot", scale=0.05, seed=1).run().trace

    @pytest.mark.parametrize("src", [1, 2, 3])
    @pytest.mark.parametrize("dst", [1, 2, 3])
    def test_convert_matches_direct_dump(self, tmp_path, app_trace, src, dst):
        src_path = tmp_path / f"in.v{src}"
        dst_path = tmp_path / f"out.v{dst}"
        direct = tmp_path / f"direct.v{dst}"
        save_trace_file(app_trace, src_path, version=src)
        save_trace_file(app_trace, direct, version=dst)
        stats = convert_trace_file(src_path, dst_path, version=dst)
        assert (stats.source_version, stats.target_version) == (src, dst)
        assert stats.ops == len(app_trace)
        assert not stats.salvaged
        assert dst_path.read_bytes() == direct.read_bytes()

    def test_convert_through_gzip(self, tmp_path, app_trace):
        src = tmp_path / "in.v3.gz"
        dst = tmp_path / "out.v2.gz"
        save_trace_file(app_trace, src, version=3)
        convert_trace_file(src, dst, version=2)
        assert dst.read_bytes()[:2] == b"\x1f\x8b"
        assert load_trace_file(dst).ops == app_trace.ops

    def test_salvage_convert_keeps_valid_prefix(self, tmp_path, app_trace):
        src = tmp_path / "cut.v2"
        dst = tmp_path / "out.v3"
        text = dumps_trace(app_trace, version=2)
        src.write_text(text[: len(text) * 3 // 4])
        with pytest.raises(TraceError):
            convert_trace_file(src, dst, version=3)
        stats = convert_trace_file(src, dst, version=3, strict=False)
        assert stats.salvaged
        assert 0 < stats.ops < len(app_trace)
        # the salvage output is a *well-formed* v3 file: header counts
        # match the prefix, so a strict reload succeeds
        back = load_trace_file(dst)
        assert len(back) == stats.ops
        assert list(back.ops) == list(app_trace.ops[: stats.ops])


class TestSegmentReader:
    @pytest.fixture(scope="class")
    def segment(self, tmp_path_factory):
        trace = make_app("mytracks", scale=0.05, seed=1).run().trace
        path = tmp_path_factory.mktemp("seg") / "t.v3"
        save_trace_file(trace, path, version=3)
        return trace, path

    def test_global_columns_match_store(self, segment):
        trace, path = segment
        store = trace.store
        with SegmentReader(path) as reader:
            assert reader.n_ops == len(trace)
            assert bytes(reader.global_column("kinds")) == bytes(store.kinds)
            assert list(reader.global_column("times")) == list(store.times)
            assert list(reader.global_column("task_ids")) == list(
                store.task_ids
            )

    def test_per_kind_columns_match_store(self, segment):
        trace, path = segment
        store = trace.store
        with SegmentReader(path) as reader:
            for kind in KIND_LIST:
                for field, _tag in SCHEMAS[kind]:
                    _, expect = store.column(kind, field)
                    got = reader.column(kind, field)
                    assert list(got) == list(expect), (kind, field)

    def test_side_tables_match_store(self, segment):
        trace, path = segment
        store = trace.store
        with SegmentReader(path) as reader:
            assert reader.symbols() == [
                store.symbols.value(i) for i in range(len(store.symbols))
            ]
            assert reader.addresses() == [
                store.addresses.value(i) for i in range(len(store.addresses))
            ]
            assert {t.task for t in reader.tasks()} == set(trace.tasks)

    def test_sparse_scan_skips_most_bytes(self, segment):
        trace, path = segment
        with SegmentReader(path) as reader:
            reader.global_column("kinds")
            _, send_idx = trace.store.column(OpKind.SEND, "event")
            assert list(reader.column(OpKind.SEND, "event")) == list(send_idx)
            stats = reader.stats()
        total = path.stat().st_size
        assert stats.bytes_read + stats.bytes_skipped == total
        # touching two columns must leave the bulk of the file unread
        assert stats.bytes_skipped > total // 2
        assert stats.columns_adopted == 2

    def test_rejects_text_and_gzip_files(self, tmp_path, segment):
        trace, _path = segment
        text_path = tmp_path / "t.v2"
        save_trace_file(trace, text_path, version=2)
        with pytest.raises(TraceError, match="not a cafa-trace v3"):
            SegmentReader(text_path)
        gz_path = tmp_path / "t.v3.gz"
        save_trace_file(trace, gz_path, version=3)
        with pytest.raises(TraceError, match="repro convert"):
            SegmentReader(gz_path)


class TestDecodeStats:
    def test_v3_load_adopts_columns(self, tmp_path):
        trace = make_app("connectbot", scale=0.05, seed=1).run().trace
        path = tmp_path / "t.v3"
        save_trace_file(trace, path, version=3)
        back = load_trace_file(path)
        stats = back.decode_stats
        assert stats is not None and stats.version == 3
        assert stats.ops_adopted == len(trace)
        assert stats.ops_decoded == 0
        assert stats.batches >= 1 and stats.columns_adopted > 0
        assert stats.format() in back.profile().format()

    def test_v2_load_counts_rows(self):
        trace = make_app("connectbot", scale=0.05, seed=1).run().trace
        back = loads_trace(dumps_trace(trace, version=2))
        stats = back.decode_stats
        assert stats is not None and stats.version == 2
        assert stats.ops_decoded == len(trace)
        assert stats.ops_adopted == 0

    def test_legacy_backend_falls_back_to_rows(self, tmp_path):
        trace = make_app("connectbot", scale=0.05, seed=1).run().trace
        path = tmp_path / "t.v3"
        save_trace_file(trace, path, version=3)
        back = load_trace_file(path, columnar=False)
        assert back.ops == trace.ops
        assert back.decode_stats.ops_decoded == len(trace)
        assert back.decode_stats.ops_adopted == 0


class TestAnyTraceDecoder:
    def test_sniffs_binary_and_text(self):
        trace = make_app("connectbot", scale=0.05, seed=1).run().trace
        for blob, binary in [
            (dumps_trace_bytes(trace, version=3), True),
            (dumps_trace(trace, version=2).encode("utf-8"), False),
        ]:
            decoder = AnyTraceDecoder()
            assert decoder.binary is None
            for start in range(0, len(blob), 997):
                decoder.feed(blob[start : start + 997])
            assert decoder.binary is binary
            assert decoder.finish().ops == trace.ops

    def test_text_feed_into_binary_stream_rejected(self):
        trace = make_app("connectbot", scale=0.05, seed=1).run().trace
        decoder = AnyTraceDecoder()
        decoder.feed(dumps_trace_bytes(trace, version=3)[:64])
        with pytest.raises(TraceError, match="binary"):
            decoder.feed_line('{"op": {}}')

    def test_empty_stream_rejected(self):
        with pytest.raises(TraceError, match="empty trace stream"):
            AnyTraceDecoder().finish()

    def test_expect_version_rejects_v3_when_v2_required(self):
        trace = make_app("connectbot", scale=0.05, seed=1).run().trace
        blob = dumps_trace_bytes(trace, version=3)
        with pytest.raises(TraceError, match="expected trace version 2"):
            loads_trace(blob, expect_version=2)


class TestFormatsAgreeOnReports:
    """The acceptance bar: byte-identical race reports whichever
    on-disk format the trace passed through."""

    @pytest.mark.parametrize("name", [app.name for app in ALL_APPS])
    def test_reports_identical_across_formats(self, tmp_path, name):
        trace = make_app(name, scale=0.02, seed=1).run().trace
        expect = [str(r) for r in UseFreeDetector(trace).detect().reports]
        for version in (1, 2, 3):
            path = tmp_path / f"{name}.v{version}"
            save_trace_file(trace, path, version=version)
            back = load_trace_file(path)
            got = [str(r) for r in UseFreeDetector(back).detect().reports]
            assert got == expect, f"{name} v{version}"
