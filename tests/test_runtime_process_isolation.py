"""Tests for process isolation in the simulated system."""

import pytest

from repro.runtime import AndroidSystem


class TestProcessIsolation:
    def test_process_is_created_once(self):
        system = AndroidSystem()
        assert system.process("app") is system.process("app")

    def test_heaps_are_per_process(self):
        system = AndroidSystem()
        a = system.process("a")
        b = system.process("b")
        a.heap.new("X")
        assert a.heap.object_count == 1
        assert b.heap.object_count == 0

    def test_stores_are_per_process(self):
        system = AndroidSystem(seed=1)
        a = system.process("a")
        b = system.process("b")
        a.thread("t", lambda ctx: ctx.write("x", "from-a"))
        b.thread("t", lambda ctx: ctx.write("x", "from-b"))
        system.run()
        assert a.store["x"] == "from-a"
        assert b.store["x"] == "from-b"

    def test_variable_names_are_qualified_by_process(self):
        """Same-named variables in different processes never conflict
        in the trace, so no cross-process false races on names."""
        from repro.detect import detect_low_level_races

        system = AndroidSystem(seed=1)
        a = system.process("a")
        b = system.process("b")
        a.thread("t", lambda ctx: ctx.write("x", 1))
        b.thread("t", lambda ctx: ctx.write("x", 2))
        system.run()
        assert detect_low_level_races(system.trace()).race_count() == 0

    def test_listeners_are_per_process(self):
        system = AndroidSystem(seed=1)
        a = system.process("a")
        b = system.process("b")
        main_b = b.looper("main")
        performed = []

        def setup_a(ctx):
            ctx.register_listener("shared-name", lambda c: performed.append("a"))

        def setup_b(ctx):
            ctx.register_listener("shared-name", lambda c: performed.append("b"))
            ctx.fire_listener(main_b, "shared-name")

        a.thread("t", setup_a)
        b.thread("t", setup_b)
        system.run()
        assert performed == ["b"]

    def test_thread_ids_namespaced_by_process(self):
        system = AndroidSystem(seed=1)
        a = system.process("a")
        b = system.process("b")
        ta = a.thread("worker", lambda ctx: None)
        tb = b.thread("worker", lambda ctx: None)
        assert ta != tb
        assert ta == "a/worker" and tb == "b/worker"

    def test_dvm_programs_are_per_process(self):
        from repro.dvm import MethodBuilder

        system = AndroidSystem(seed=1)
        a = system.process("a")
        b = system.process("b")
        a.program.add_method(MethodBuilder("m").const(0, 1).return_value(0).build())
        assert a.program.has("m")
        assert not b.program.has("m")
