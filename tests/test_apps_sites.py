"""Unit tests for the race-site recipes, one category at a time."""

import pytest

from repro.apps import sites
from repro.detect import RaceClass, Verdict, detect_use_free_races
from repro.runtime import AndroidSystem


def run_site(installer, **kwargs):
    system = AndroidSystem(seed=5)
    proc = system.process("app")
    main = proc.looper("main")
    plan = installer(system, proc, main, "t0", **kwargs)
    system.run(max_ms=3000)
    trace = system.trace()
    trace.validate()
    return plan, detect_use_free_races(trace), system


class TestIntraThreadRecipe:
    def test_detected_and_classified_a(self):
        plan, result, system = run_site(
            sites.intra_thread_race, use_label="onUse", free_label="onFree", at_ms=50
        )
        (report,) = result.reports
        assert report.race_class is RaceClass.INTRA_THREAD
        assert plan.expected.matches(report.key)
        assert plan.expected.verdict is Verdict.HARMFUL

    def test_no_violation_in_the_recorded_order(self):
        _, _, system = run_site(
            sites.intra_thread_race, use_label="onUse", free_label="onFree", at_ms=50
        )
        assert system.violations == []


class TestInterThreadRecipe:
    def test_detected_and_classified_b(self):
        plan, result, _ = run_site(
            sites.inter_thread_race,
            use_label="onUse",
            free_thread="worker",
            at_ms=50,
        )
        (report,) = result.reports
        assert report.race_class is RaceClass.INTER_THREAD
        assert plan.expected.matches(report.key)

    def test_conventional_model_does_not_see_it(self):
        from repro.detect import DetectorOptions
        from repro.hb import CONVENTIONAL_MODEL
        from repro.runtime import AndroidSystem

        system = AndroidSystem(seed=5)
        proc = system.process("app")
        main = proc.looper("main")
        sites.inter_thread_race(system, proc, main, "t0", "onUse", "worker", 50)
        system.run(max_ms=3000)
        result = detect_use_free_races(
            system.trace(), DetectorOptions(model=CONVENTIONAL_MODEL)
        )
        assert result.report_count() == 0


class TestConventionalRecipe:
    def test_detected_and_classified_c(self):
        plan, result, _ = run_site(
            sites.conventional_race,
            use_thread="io",
            free_label="onFree",
            at_ms=50,
        )
        (report,) = result.reports
        assert report.race_class is RaceClass.CONVENTIONAL


class TestFalsePositiveRecipes:
    def test_untraced_listener_reported_despite_real_order(self):
        plan, result, _ = run_site(
            sites.fp_untraced_listener,
            use_label="onReg",
            free_label="onPerform",
            at_ms=50,
        )
        (report,) = result.reports
        assert plan.expected.verdict is Verdict.FP_TYPE_I

    def test_traced_listener_version_is_ordered(self):
        """With the register record present, the same structure is
        ordered by listener rule + atomicity and nothing is reported."""
        system = AndroidSystem(seed=5)
        proc = system.process("app")
        main = proc.looper("main")
        holder = proc.heap.new("Holder")
        holder.fields["ptr"] = proc.heap.new("Target")

        def free_handler(ctx):
            ctx.put_field(holder, "ptr", None)

        def register_and_use(ctx):
            ctx.register_listener("lst", free_handler, traced=True)
            ctx.use_field(holder, "ptr")

        def poster(ctx):
            yield from ctx.sleep_until(50)
            ctx.post(main, register_and_use, label="onReg")

        proc.thread("poster", poster)
        from repro.runtime import ExternalSource

        src = ExternalSource("src")
        src.at_listener(60, main, "lst", label="onPerform")
        src.attach(system, proc)
        system.run(max_ms=3000)
        result = detect_use_free_races(system.trace())
        assert result.report_count() == 0

    def test_boolean_guard_reported_as_fp2(self):
        plan, result, _ = run_site(
            sites.fp_boolean_guard, use_label="check", free_label="clear", at_ms=50
        )
        assert result.report_count() == 1
        assert plan.expected.verdict is Verdict.FP_TYPE_II

    def test_boolean_guard_actually_protects_at_runtime(self):
        """Run the same structure with the free first: the flag stops
        the use, so no NPE — demonstrating why it is a false positive."""
        system = AndroidSystem(seed=5)
        proc = system.process("app")
        main = proc.looper("main")
        holder = proc.heap.new("Holder")
        holder.fields["ptr"] = proc.heap.new("Target")
        proc.store["flag"] = True

        def use_handler(ctx):
            if ctx.read("flag"):
                ctx.use_field(holder, "ptr")

        def free_handler(ctx):
            ctx.write("flag", False)
            ctx.put_field(holder, "ptr", None)

        def driver(ctx):
            ctx.post(main, free_handler, label="clear")  # free FIRST
            ctx.post(main, use_handler, label="check")

        proc.thread("driver", driver)
        system.run(max_ms=3000)
        assert system.violations == []

    def test_deref_mismatch_reported_as_fp3(self):
        plan, result, _ = run_site(
            sites.fp_deref_mismatch, use_label="read", free_label="free", at_ms=50
        )
        assert result.report_count() == 1
        assert plan.expected.verdict is Verdict.FP_TYPE_III


class TestCommutativeRecipes:
    def test_guarded_use_is_filtered(self):
        plan, result, _ = run_site(
            sites.commutative_guarded_use,
            use_label="onFocus",
            free_label="onPause",
            at_ms=50,
        )
        assert result.report_count() == 0
        assert len(result.filtered_reports) == 1
        assert result.filtered_reports[0].witnesses[0].filtered_by == "if-guard"

    def test_realloc_use_is_filtered(self):
        plan, result, _ = run_site(
            sites.commutative_realloc_use,
            use_label="onResume",
            free_label="onPause",
            at_ms=50,
        )
        assert result.report_count() == 0
        assert (
            result.filtered_reports[0].witnesses[0].filtered_by
            == "intra-event-allocation"
        )

    def test_read_write_pattern_invisible_to_usefree_detector(self):
        plan, result, _ = run_site(
            sites.commutative_read_write,
            read_label="onLayout",
            write_label="onPause",
            at_ms=50,
        )
        assert result.report_count() == 0
        assert result.filtered_reports == []
