"""Crash-truncated trace robustness: cutting a v2 stream anywhere
yields either a clean :class:`TraceFormatError` (strict mode) or a
salvaged prefix whose detected races are a subset of the full trace's
(``strict=False``).

The cuts are driven by hypothesis over every stock app, at both
arbitrary byte offsets and exact line boundaries, plus deterministic
checks of the decoder's incremental ``feed``/``feed_line``/``flush``
surface and the gzip-level damage path.
"""

import gzip

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import ALL_APPS, make_app
from repro.detect import UseFreeDetector
from repro.trace import (
    TraceError,
    TraceFormatError,
    TraceStreamDecoder,
    dumps_trace,
    load_trace_file,
    loads_trace,
)

SCALE = 0.02
SEED = 1
APP_NAMES = [app.name for app in ALL_APPS]

#: app name -> (v2 stream text, frozenset of full-trace race keys)
_CACHE = {}


def app_stream(name):
    """The app's serialized v2 stream and its full-trace race keys."""
    if name not in _CACHE:
        trace = make_app(name, scale=SCALE, seed=SEED).run().trace
        text = dumps_trace(trace, version=2)
        keys = frozenset(
            str(r.key) for r in UseFreeDetector(trace).detect().reports
        )
        _CACHE[name] = (text, keys)
    return _CACHE[name]


def race_keys(trace):
    return frozenset(
        str(r.key) for r in UseFreeDetector(trace).detect().reports
    )


class TestArbitraryByteCuts:
    """Cut the stream at any byte: strict raises, salvage degrades."""

    @pytest.mark.parametrize("name", APP_NAMES)
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_cut_anywhere(self, name, data):
        text, full_keys = app_stream(name)
        cut = data.draw(
            st.integers(min_value=1, max_value=len(text) - 1), label="cut"
        )
        prefix = text[:cut]
        header_len = text.index("\n")

        # Strict mode: a truncated stream NEVER loads silently.  A
        # line-boundary cut is a count mismatch noticed at EOF; any
        # other cut leaves an unterminated (or unparseable) final
        # line, which is truncation evidence in its own right.
        with pytest.raises(TraceError):
            loads_trace(prefix)

        if cut <= header_len:
            # Header damage always raises, even in salvage mode: with
            # no (trustworthy) header there is no stream to speak of.
            with pytest.raises(TraceError):
                loads_trace(prefix, strict=False)
        else:
            salvaged = loads_trace(prefix, strict=False)
            assert race_keys(salvaged) <= full_keys

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_line_boundary_cuts(self, name):
        """Whole-line truncation salvages a monotone prefix of races."""
        text, full_keys = app_stream(name)
        lines = text.splitlines()
        # Sample a handful of prefixes, including the degenerate ones.
        picks = sorted({1, 2, len(lines) // 3, 2 * len(lines) // 3, len(lines) - 1})
        for n in picks:
            prefix = "\n".join(lines[:n]) + "\n"
            with pytest.raises(TraceFormatError):
                loads_trace(prefix)  # count mismatch at EOF
            salvaged = loads_trace(prefix, strict=False)
            assert len(salvaged) <= len(lines)
            assert race_keys(salvaged) <= full_keys

    def test_midline_cut_names_the_line(self):
        text, _ = app_stream("connectbot")
        lines = text.splitlines(keepends=True)
        damaged_line = len(lines) // 2
        prefix = "".join(lines[: damaged_line - 1])
        prefix += lines[damaged_line - 1][: len(lines[damaged_line - 1]) // 2]
        with pytest.raises(TraceFormatError) as excinfo:
            loads_trace(prefix)
        assert excinfo.value.line == damaged_line
        assert f"line {damaged_line}" in str(excinfo.value)

    def test_count_mismatch_reported_at_eof(self):
        text, _ = app_stream("connectbot")
        lines = text.splitlines()
        prefix = "\n".join(lines[:-3]) + "\n"
        with pytest.raises(TraceFormatError, match="count mismatch"):
            loads_trace(prefix)


class TestIncrementalDecoder:
    """feed() chunking, feed_line(), and flush() are equivalent."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_chunked_feed_roundtrips(self, data):
        text, _ = app_stream("connectbot")
        # Split the stream into arbitrary chunks and feed them.
        n_cuts = data.draw(st.integers(min_value=0, max_value=12), label="n")
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=len(text) - 1),
                    min_size=n_cuts,
                    max_size=n_cuts,
                ),
                label="cuts",
            )
        )
        decoder = TraceStreamDecoder()
        prev = 0
        for cut in cuts + [len(text)]:
            decoder.feed(text[prev:cut])
            prev = cut
        trace = decoder.finish()
        # Canonical re-encode is byte-identical: nothing lost or dup'd.
        assert dumps_trace(trace, version=2) == text

    def test_missing_trailing_newline_is_truncation_evidence(self):
        """A byte cut through the last record's trailing number can
        still parse as valid JSON with a corrupted value, so an
        unterminated final line must never be decoded on trust."""
        text, full_keys = app_stream("connectbot")
        assert text.endswith("\n")
        decoder = TraceStreamDecoder()
        decoder.feed(text[:-1])  # final newline missing
        with pytest.raises(TraceFormatError, match="mid-line"):
            decoder.finish()
        salvage = TraceStreamDecoder(strict=False)
        salvage.feed(text[:-1])
        trace = salvage.finish()
        assert salvage.degraded
        # The untrusted final record is dropped, nothing else.
        assert len(trace) == len(loads_trace(text)) - 1
        assert race_keys(trace) <= full_keys

    def test_feed_line_matches_feed(self):
        text, _ = app_stream("connectbot")
        by_line = TraceStreamDecoder()
        for line in text.splitlines():
            by_line.feed_line(line)
        whole = TraceStreamDecoder()
        whole.feed(text)
        a, b = by_line.finish(), whole.finish()
        assert dumps_trace(a, version=2) == dumps_trace(b, version=2) == text

    def test_salvage_decoder_reports_degraded(self):
        text, _ = app_stream("connectbot")
        decoder = TraceStreamDecoder(strict=False)
        decoder.feed(text[: len(text) // 2])
        decoder.feed("this is not json\n")
        assert decoder.degraded
        assert isinstance(decoder.error, TraceFormatError)
        # Further input is ignored once degraded.
        before = len(decoder.trace)
        decoder.feed(text[len(text) // 2 :])
        assert len(decoder.trace) == before


class TestDamagedFiles:
    """File-level entry points: byte truncation, gzip truncation."""

    def test_truncated_gzip_member(self, tmp_path):
        text, full_keys = app_stream("connectbot")
        path = tmp_path / "crash.trace.gz"
        blob = gzip.compress(text.encode("utf-8"))
        path.write_bytes(blob[: len(blob) // 2])  # cut the member short
        with pytest.raises(TraceFormatError, match="damaged"):
            load_trace_file(path)
        salvaged = load_trace_file(path, strict=False)
        assert len(salvaged) < len(loads_trace(text))
        assert race_keys(salvaged) <= full_keys

    def test_truncated_plain_file(self, tmp_path):
        text, full_keys = app_stream("connectbot")
        path = tmp_path / "crash.trace"
        path.write_text(text[: int(len(text) * 0.7)], encoding="utf-8")
        with pytest.raises(TraceFormatError):
            load_trace_file(path)
        salvaged = load_trace_file(path, strict=False)
        assert race_keys(salvaged) <= full_keys
